"""The ORB: object adapters, references, stubs, GIOP request brokering.

One ORB instance lives inside one PadicoTM process and is parameterised
by an :class:`~repro.corba.profiles.OrbProfile` (omniORB/Mico/ORBacus
cost model).  Wire path: generated stub → CDR → GIOP → VLink (PadicoTM
selects Myrinet/LAN/WAN transparently) → acceptor thread → POA dispatch
→ servant method.

Threading mirrors the products the paper ports: an acceptor thread per
ORB, one handler thread per inbound connection, and on the client side
one reader thread per outbound connection demultiplexing replies by
request id — any number of client threads share a connection with
requests in flight concurrently."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.corba import esiop, giop
from repro.corba.cdr import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    WireBuffer,
    decode_value,
    encode_value,
)
from repro.corba.idl.compiler import (
    CompiledIdl,
    InterfaceDef,
    OperationDef,
)
from repro.corba.idl.types import (
    AnyType,
    ObjRefType,
    PrimitiveType,
    SequenceType,
    StringType,
    StructType,
    UnionType,
    UnionValue,
    UserExceptionBase,
    VOID,
)
from repro.corba.ior import IOR
from repro.corba.profiles import OrbProfile, OrbModule
from repro.net.flows import TransferError
from repro.net.topology import NoRouteError
from repro.padicotm.abstraction.vlink import (
    ConnectionRefusedError as VLinkRefusedError,
    VLink,
    VLinkEndpoint,
)
from repro.sim.kernel import SimProcess
from repro.sim.sync import SimEvent, SimLock, SimTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

#: re-exported for user code
UserException = UserExceptionBase


class CorbaError(Exception):
    """Local CORBA usage error."""


class SystemException(CorbaError):
    """CORBA system exception (OBJECT_NOT_EXIST, COMM_FAILURE, ...)."""

    def __init__(self, minor: str, detail: str = ""):
        super().__init__(f"{minor}: {detail}" if detail else minor)
        self.minor = minor
        self.detail = detail


_IS_A_OP = OperationDef("_is_a", PrimitiveType("boolean"),
                        [("logical_type_id", "in", StringType())])
_NON_EXISTENT_OP = OperationDef("_non_existent", PrimitiveType("boolean"),
                                [])


class ObjectRef:
    """Client-side object reference; generated stubs subclass this."""

    _idef: InterfaceDef | None = None  # set on generated stub classes

    def __init__(self, orb: "Orb", ior: IOR):
        self._orb = orb
        self.ior = ior

    def _invoke(self, opdef: OperationDef, args: tuple) -> Any:
        return self._orb.invoke(self, opdef, args)

    def _is_a(self, repo_id: str) -> bool:
        """Remote type check (CORBA ``_is_a``)."""
        return self._orb.invoke(self, _IS_A_OP, (repo_id,))

    def _non_existent(self) -> bool:
        """CORBA ``_non_existent``: True when the servant is gone.

        Unlike a normal invocation on a destroyed object this never
        raises OBJECT_NOT_EXIST — it is the standard liveness probe."""
        return self._orb.invoke(self, _NON_EXISTENT_OP, ())

    def _narrow(self, interface_name: str) -> "ObjectRef":
        """Re-type this reference as ``interface_name`` (local check)."""
        return self._orb.narrow(self, interface_name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectRef) and other.ior == self.ior

    def __hash__(self) -> int:
        return hash(self.ior)

    def __repr__(self) -> str:
        return f"<ObjectRef {self.ior.stringify()}>"


class Servant:
    """Base class for object implementations.

    Subclass the result of :meth:`Orb.servant_base` so the POA knows the
    IDL interface the servant implements."""

    _idef: InterfaceDef | None = None


class POA:
    """Portable Object Adapter: the servant table of one ORB."""

    def __init__(self, orb: "Orb"):
        self.orb = orb
        self._servants: dict[str, Servant] = {}
        self._counter = 0

    def activate_object(self, servant: Servant, key: str | None = None,
                        type_id: str | None = None) -> ObjectRef:
        """Register ``servant``; returns a typed object reference.

        ``type_id`` overrides the repository id advertised in the IOR —
        used when a servant implements a *derived* interface but should
        present itself to clients as the base (GridCCM proxies)."""
        idef = servant._idef
        if idef is None:
            raise CorbaError(
                f"{type(servant).__name__} has no IDL interface; subclass "
                f"orb.servant_base(<interface>)")
        if key is None:
            self._counter += 1
            key = f"{idef.name.lower()}-{self._counter}"
        if key in self._servants:
            raise CorbaError(f"object key {key!r} already active")
        self._servants[key] = servant
        ior = IOR(type_id or idef.repo_id, self.orb.process.name,
                  self.orb.port, key)
        return self.orb.create_reference(ior)

    def deactivate_object(self, key: str) -> None:
        if key not in self._servants:
            raise CorbaError(f"no active object under key {key!r}")
        del self._servants[key]

    def lookup(self, key: str) -> Servant:
        try:
            return self._servants[key]
        except KeyError:
            raise SystemException("OBJECT_NOT_EXIST", key) from None


class _ClientConnection:
    """Cached outbound connection with multiplexed requests.

    A dedicated reader thread demultiplexes replies by request id, so
    any number of client threads can have invocations in flight on one
    connection concurrently (how omniORB drives a GIOP connection);
    only the *writes* are serialised."""

    def __init__(self, orb: "Orb", endpoint: VLinkEndpoint):
        self.orb = orb
        self.endpoint = endpoint
        kernel = orb.process.runtime.kernel
        self._kernel = kernel
        self.send_lock = SimLock(kernel)
        self._next_id = 0
        self._pending: dict[int, SimEvent] = {}
        self.dead: SystemException | None = None
        orb.process.spawn(self._read_loop, name="giop-reader", daemon=True)

    def next_request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def register(self, request_id: int) -> SimEvent:
        event = SimEvent(self._kernel)
        self._pending[request_id] = event
        return event

    def forget(self, request_id: int) -> None:
        self._pending.pop(request_id, None)

    # -- the demultiplexer ---------------------------------------------------
    def _read_loop(self, proc: SimProcess) -> None:
        wire = self.orb.wire
        while True:
            try:
                item = self.endpoint.recv(proc)
            except (TransferError, NoRouteError) as exc:
                self._fail(SystemException("COMM_FAILURE", str(exc)))
                return
            if item is None:
                self._fail(SystemException("COMM_FAILURE",
                                           "connection closed"))
                return
            (header, body), nbytes = item
            try:
                msg_type, _size, little, _ver = wire.parse_header(header)
            except CdrError:
                continue  # garbage frame: drop it
            if msg_type != wire.MSG_REPLY:
                continue
            inp = CdrInputStream(body, little)
            request_id, status = wire.read_reply(inp)
            event = self._pending.pop(request_id, None)
            if event is not None:
                event.set((status, inp, nbytes))
            # unmatched replies (e.g. for timed-out requests) are dropped

    def _fail(self, exc: SystemException) -> None:
        self.dead = exc
        self.endpoint.close()
        for event in list(self._pending.values()):
            event.set(exc)
        self._pending.clear()


class Orb:
    """One CORBA ORB inside one PadicoTM process."""

    def __init__(self, process: "PadicoProcess", profile: OrbProfile,
                 idl: CompiledIdl | None = None, port: str | None = None,
                 protocol: str = "giop", little_endian: bool = True):
        if protocol not in ("giop", "esiop"):
            raise CorbaError(f"unknown wire protocol {protocol!r}")
        self.process = process
        self.profile = profile
        #: byte order this ORB *sends* in; received messages are decoded
        #: per their header flag (CORBA receiver-makes-right)
        self.little_endian = little_endian
        #: pluggable wire protocol namespace (GIOP, or the PadicoTM
        #: environment-specific ESIOP with its leaner engine — §4.4)
        self.wire = giop if protocol == "giop" else esiop
        self._ovh = getattr(self.wire, "OVERHEAD_SCALE", 1.0)
        self.idl = idl or CompiledIdl()
        # no ':' in the port — it must survive corbaloc stringification;
        # the protocol is part of the endpoint identity
        self.port = port or f"{protocol}-{profile.key}"
        self.poa = POA(self)
        #: identity attached to every outgoing request (GIOP Principal);
        #: servants read the caller's via :meth:`caller_principal`
        self.credentials: str = ""
        #: request dispatch model: thread-per-request (True, default —
        #: how multithreaded ORBs behave) or serial per connection
        self.concurrent_dispatch: bool = True
        #: reply deadline in virtual seconds (None = wait forever); a
        #: timed-out invocation raises SystemException("TIMEOUT") and
        #: drops the connection (late replies must not mis-match)
        self.request_timeout: float | None = None
        self._listener = None
        self._connections: dict[tuple[str, str], _ClientConnection] = {}
        self._conn_lock = SimLock(process.runtime.kernel)
        self._stub_classes: dict[str, type] = {}
        module = OrbModule(profile)
        if not process.modules.is_loaded(module.name):
            process.modules.load(module)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind the GIOP listener and spawn the acceptor thread."""
        if self._listener is not None:
            return
        self._listener = VLink.listen(self.process, self.port)
        self.process.spawn(self._acceptor, name=f"orb-{self.profile.key}",
                           daemon=True)

    def _acceptor(self, proc: SimProcess) -> None:
        while True:
            endpoint = self._listener.accept(proc)
            self.process.spawn(self._serve_connection, endpoint,
                               name="giop-conn", daemon=True)

    def shutdown(self) -> None:
        """Stop accepting, drop the listener and every cached outbound
        connection (in-flight requests get COMM_FAILURE)."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for conn in list(self._connections.values()):
            conn._fail(SystemException("COMM_FAILURE", "ORB shut down"))
        self._connections.clear()

    # ------------------------------------------------------------------
    # current simulated thread
    # ------------------------------------------------------------------
    def _current(self) -> SimProcess:
        proc = self.process.runtime.kernel.current
        if proc is None:
            raise CorbaError("CORBA invocations must run inside a "
                             "simulated thread")
        owner = getattr(proc, "padico_process", None)
        if owner is not None and owner is not self.process:
            raise CorbaError(
                f"thread {proc.name!r} belongs to process {owner.name!r} "
                f"but drives a stub of {self.process.name!r}'s ORB — "
                f"object references do not cross OS processes")
        return proc

    # ------------------------------------------------------------------
    # references & stubs
    # ------------------------------------------------------------------
    def create_reference(self, ior: IOR) -> ObjectRef:
        """A reference, typed with a generated stub when the IDL knows
        the interface behind ``ior.type_id``."""
        idef = self._interface_for_repo_id(ior.type_id)
        if idef is None:
            return ObjectRef(self, ior)
        return self._stub_class(idef)(self, ior)

    def _interface_for_repo_id(self, type_id: str) -> InterfaceDef | None:
        for idef in self.idl.interfaces.values():
            if idef.repo_id == type_id:
                return idef
        return None

    def narrow(self, ref: ObjectRef, interface_name: str) -> ObjectRef:
        idef = self.idl.interface(interface_name)
        return self._stub_class(idef)(self, ref.ior)

    def adopt(self, ref: ObjectRef | None) -> ObjectRef | None:
        """Rebind a reference created by another ORB onto this one.

        Needed on collocated call paths where the caller hands over a
        stub bound to its own ORB; storing it as-is would let later
        invocations bypass this process's transport accounting."""
        if ref is None or ref._orb is self:
            return ref
        return self.create_reference(ref.ior)

    def object_to_string(self, ref: ObjectRef) -> str:
        return ref.ior.stringify()

    def string_to_object(self, text: str) -> ObjectRef:
        return self.create_reference(IOR.destringify(text))

    def _stub_class(self, idef: InterfaceDef) -> type:
        cls = self._stub_classes.get(idef.scoped_name)
        if cls is None:
            cls = _make_stub_class(idef)
            self._stub_classes[idef.scoped_name] = cls
        return cls

    def servant_base(self, interface_name: str) -> type:
        """A base class binding servants to ``interface_name``."""
        idef = self.idl.interface(interface_name)
        return type(f"{idef.name}Servant", (Servant,), {"_idef": idef})

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def invoke(self, ref: ObjectRef, opdef: OperationDef,
               args: tuple) -> Any:
        """Synchronous invocation of ``opdef`` on ``ref``."""
        proc = self._current()
        n_in = len(opdef.in_params)
        if len(args) != n_in:
            raise CorbaError(
                f"{opdef.name} takes {n_in} argument(s), got {len(args)}")
        mon = self.process.runtime.monitor
        if mon is not None:
            mon.on_span_start("corba.invoke", cat="middleware",
                              op=opdef.name, target=ref.ior.process,
                              oneway=opdef.oneway)
        try:
            if ref.ior.process == self.process.name:
                return self._invoke_collocated(proc, ref, opdef, args)
            try:
                conn = self._connection(proc, ref.ior.process, ref.ior.port)
            except (NoRouteError, VLinkRefusedError) as exc:
                raise SystemException("COMM_FAILURE", str(exc)) from exc
            try:
                return self._invoke_remote(proc, conn, ref, opdef, args)
            except (TransferError, NoRouteError, BrokenPipeError) as exc:
                # the wire died under us: drop the cached connection so
                # the next invocation re-routes/reconnects, surface
                # COMM_FAILURE
                conn._fail(SystemException("COMM_FAILURE", str(exc)))
                self._connections.pop((ref.ior.process, ref.ior.port), None)
                raise SystemException("COMM_FAILURE", str(exc)) from exc
        finally:
            if mon is not None:
                mon.on_span_end("corba.invoke")

    def _invoke_remote(self, proc: SimProcess, conn: _ClientConnection,
                       ref: ObjectRef, opdef: OperationDef,
                       args: tuple) -> Any:
        profile = self.profile
        request_id = conn.next_request_id()
        out = CdrOutputStream(little_endian=self.little_endian,
                              zero_copy=profile.zero_copy,
                              threshold=profile.rendezvous_threshold)
        self.wire.start_request(out, request_id, ref.ior.object_key,
                                opdef.name, not opdef.oneway,
                                principal=self.credentials)
        for (pname, ptype), value in zip(opdef.in_params, args):
            try:
                encode_value(out, ptype, value)
            except Exception as exc:
                raise SystemException(
                    "MARSHAL", f"{opdef.name} arg {pname!r}: {exc}") from exc
        # two-way bodies leave as segment lists: bulk args ride by
        # reference down to the NIC, safe because the caller blocks on
        # the reply while the server reads.  Oneway callers return
        # immediately, so their bodies are joined — rendezvous needs a
        # blocked sender.
        body = out.getvalue() if opdef.oneway else out.getbuffer()
        payload = self.wire.frame(self.wire.MSG_REQUEST, body,
                                  self.little_endian)
        mon = self.process.runtime.monitor
        if mon is not None:
            mon.on_counter("giop.requests")
            mon.on_counter("wire.copied_bytes.corba",
                           float(out.copied_bytes))
            mon.on_counter("wire.referenced_bytes.corba",
                           float(out.referenced_bytes))
        event = None if opdef.oneway else conn.register(request_id)
        conn.send_lock.acquire(proc)
        try:
            proc.sleep(profile.client_overhead * self._ovh +
                       profile.marshal_cost(out.copied_bytes))
            conn.endpoint.send(proc, payload,
                               self.wire.message_size(payload))
        except BaseException:
            conn.forget(request_id)
            raise
        finally:
            conn.send_lock.release(proc)
        if event is None:
            return None
        try:
            result = event.wait(proc, timeout=self.request_timeout)
        except SimTimeout as exc:
            # forget the slot: a late reply is dropped by the reader,
            # so the connection itself stays usable
            conn.forget(request_id)
            raise SystemException(
                "TIMEOUT", f"{opdef.name}: no reply within "
                f"{self.request_timeout} s") from exc
        if isinstance(result, SystemException):  # connection died
            self._connections.pop((ref.ior.process, ref.ior.port), None)
            raise result
        status, inp, rn = result
        if mon is not None:
            mon.on_counter("giop.replies")
        # reply-side client CPU: wake-up, demultiplex, unmarshal
        proc.sleep(profile.client_overhead * self._ovh +
                   profile.unmarshal_cost(rn))
        try:
            if status == self.wire.REPLY_NO_EXCEPTION:
                return self._decode_results(inp, opdef)
            if status == self.wire.REPLY_USER_EXCEPTION:
                raise self._decode_user_exception(inp, opdef)
            minor = inp.read_string()
            detail = inp.read_string()
            raise SystemException(minor, detail)
        finally:
            if mon is not None:
                mon.on_counter("wire.copied_bytes.corba",
                               float(inp.copied_bytes))
                mon.on_counter("wire.referenced_bytes.corba",
                               float(inp.referenced_bytes))

    def _decode_results(self, inp: CdrInputStream,
                        opdef: OperationDef) -> Any:
        results: list[Any] = []
        if not isinstance(opdef.return_type, type(VOID)):
            results.append(self._localise(
                decode_value(inp, opdef.return_type), opdef.return_type))
        for pname, ptype in opdef.out_params:
            results.append(self._localise(decode_value(inp, ptype), ptype))
        if not results:
            return None
        return results[0] if len(results) == 1 else tuple(results)

    def _decode_user_exception(self, inp: CdrInputStream,
                               opdef: OperationDef) -> Exception:
        repo = inp.read_string()
        for etype in opdef.raises:
            if etype.repo_id == repo:
                fields = {fname: self._localise(decode_value(inp, ftype),
                                                ftype)
                          for fname, ftype in etype.fields}
                return etype.make(**fields)
        return SystemException("UNKNOWN", f"undeclared user exception {repo}")

    def _localise(self, value: Any, idl_type: Any) -> Any:
        """Turn decoded IORs into live, invocable references."""
        if isinstance(idl_type, ObjRefType):
            return self.create_reference(value) \
                if isinstance(value, IOR) else value
        if isinstance(idl_type, SequenceType) and isinstance(value, list):
            return [self._localise(v, idl_type.element) for v in value]
        if isinstance(idl_type, StructType) and value is not None:
            for fname, ftype in idl_type.fields:
                setattr(value, fname,
                        self._localise(getattr(value, fname), ftype))
            return value
        if isinstance(idl_type, UnionType) and \
                isinstance(value, UnionValue):
            case = idl_type.case_for(value.d)
            if case is not None:
                value.v = self._localise(value.v, case[2])
            return value
        if isinstance(idl_type, AnyType) and isinstance(value, tuple):
            inner_t, inner_v = value
            return (inner_t, self._localise(inner_v, inner_t))
        return value

    def _connection(self, proc: SimProcess, target: str,
                    port: str) -> _ClientConnection:
        key = (target, port)
        self._conn_lock.acquire(proc)
        try:
            conn = self._connections.get(key)
            if conn is None or conn.endpoint.closed or \
                    conn.dead is not None:
                endpoint = VLink.connect(proc, self.process, target, port)
                conn = _ClientConnection(self, endpoint)
                self._connections[key] = conn
            return conn
        finally:
            self._conn_lock.release(proc)

    # ------------------------------------------------------------------
    # collocated fast path
    # ------------------------------------------------------------------
    def _invoke_collocated(self, proc: SimProcess, ref: ObjectRef,
                           opdef: OperationDef, args: tuple) -> Any:
        proc.sleep(self.profile.collocated_overhead)
        if opdef.name == "_non_existent":
            return ref.ior.object_key not in self.poa._servants
        servant = self.poa.lookup(ref.ior.object_key)
        if opdef.name == "_is_a":
            return self._servant_is_a(servant, args[0])
        prev_principal = getattr(proc, "corba_principal", "")
        proc.corba_principal = self.credentials
        try:
            return _call_servant(servant, opdef, list(args))
        finally:
            proc.corba_principal = prev_principal

    def caller_principal(self) -> str:
        """Identity of the request the *current thread* is dispatching
        ("" when anonymous or outside a dispatch)."""
        proc = self.process.runtime.kernel.current
        return getattr(proc, "corba_principal", "") if proc else ""

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _serve_connection(self, proc: SimProcess,
                          endpoint: VLinkEndpoint) -> None:
        while True:
            item = endpoint.recv(proc)
            if item is None:
                endpoint.close()
                return
            (header, body), nbytes = item
            msg_type, _size, little, _ver = self.wire.parse_header(header)
            if msg_type == self.wire.MSG_CLOSE_CONNECTION:
                endpoint.close()
                return
            if msg_type != self.wire.MSG_REQUEST:
                continue  # ignore unknown traffic, like real ORBs
            # protocol-engine receive cost stays on the reader thread
            proc.sleep(self.profile.server_overhead * self._ovh +
                       self.profile.unmarshal_cost(nbytes))
            if self.concurrent_dispatch:
                # thread-per-request dispatch: long servant work never
                # blocks later requests on the same connection (reply
                # order may differ — the client demultiplexes by id)
                self.process.spawn(self._dispatch_one, endpoint, body,
                                   little, name="giop-dispatch",
                                   daemon=True)
            else:
                self._dispatch_one(proc, endpoint, body, little)

    def _dispatch_one(self, proc: SimProcess, endpoint: VLinkEndpoint,
                      body: "bytes | WireBuffer", little: bool) -> None:
        try:
            self._handle_request(proc, endpoint, body, little)
        except (TransferError, NoRouteError, BrokenPipeError):
            endpoint.close()  # reply path died; drop the connection

    def _handle_request(self, proc: SimProcess, endpoint: VLinkEndpoint,
                        body: "bytes | WireBuffer", little: bool) -> None:
        inp = CdrInputStream(body, little)
        request_id, expect_reply, key, opname, principal = \
            self.wire.read_request(inp)
        mon = self.process.runtime.monitor
        out: CdrOutputStream | None = None
        if mon is not None:
            mon.on_span_start("corba.dispatch", cat="middleware",
                              op=opname, request_id=request_id)
            mon.on_counter("giop.requests.served")
        try:
            prev_principal = getattr(proc, "corba_principal", "")
            proc.corba_principal = principal
            try:
                out = self._execute(proc, inp, request_id, key, opname)
            finally:
                proc.corba_principal = prev_principal
            if not expect_reply:
                return
            # the reply too leaves as a segment list; bulk results must
            # stay unmutated by the servant until the client decodes —
            # the zero-copy reply contract (the transfer completes
            # inside send(), and the client unblocks at that instant)
            reply_body = out.getbuffer()
            payload = self.wire.frame(self.wire.MSG_REPLY, reply_body,
                                      self.little_endian)
            # reply-side server CPU: marshal results + send-path
            # processing
            proc.sleep(self.profile.server_overhead * self._ovh +
                       self.profile.marshal_cost(out.copied_bytes))
            endpoint.send(proc, payload, self.wire.message_size(payload))
        finally:
            if mon is not None:
                copied = inp.copied_bytes
                referenced = inp.referenced_bytes
                if out is not None:
                    copied += out.copied_bytes
                    referenced += out.referenced_bytes
                mon.on_counter("wire.copied_bytes.corba", float(copied))
                mon.on_counter("wire.referenced_bytes.corba",
                               float(referenced))
                mon.on_span_end("corba.dispatch")

    def _execute(self, proc: SimProcess, inp: CdrInputStream,
                 request_id: int, key: str, opname: str) -> CdrOutputStream:
        """Run the request; returns a complete reply-body stream.

        The servant executes *before* the reply header is written, so the
        header carries the final status and results are CDR-aligned
        relative to the true body start."""
        def fresh() -> CdrOutputStream:
            return CdrOutputStream(
                little_endian=self.little_endian,
                zero_copy=self.profile.zero_copy,
                threshold=self.profile.rendezvous_threshold)

        try:
            if opname == "_non_existent":
                out = fresh()
                self.wire.start_reply(out, request_id,
                                      self.wire.REPLY_NO_EXCEPTION)
                encode_value(out, PrimitiveType("boolean"),
                             key not in self.poa._servants)
                return out
            servant = self.poa.lookup(key)
            if opname == "_is_a":
                repo = decode_value(inp, StringType())
                answer = self._servant_is_a(servant, repo)
                out = fresh()
                self.wire.start_reply(out, request_id,
                                  self.wire.REPLY_NO_EXCEPTION)
                encode_value(out, PrimitiveType("boolean"), answer)
                return out
            opdef = self._find_operation(servant._idef, opname)
            args = []
            for pname, ptype in opdef.in_params:
                args.append(self._localise(decode_value(inp, ptype), ptype))
            result = _call_servant(servant, opdef, args)
            out = fresh()
            self.wire.start_reply(out, request_id,
                                  self.wire.REPLY_NO_EXCEPTION)
            self._encode_results(out, opdef, result)
            return out
        except UserExceptionBase as ue:
            out = fresh()
            self.wire.start_reply(out, request_id,
                                  self.wire.REPLY_USER_EXCEPTION)
            encode_value(out, ue._exception_type, ue)
            return out
        except SystemException as se:
            out = fresh()
            self.wire.start_reply(out, request_id,
                                  self.wire.REPLY_SYSTEM_EXCEPTION)
            out.write_string(se.minor)
            out.write_string(se.detail)
            return out
        except Exception as exc:  # noqa: BLE001 - servant bug → UNKNOWN
            out = fresh()
            self.wire.start_reply(out, request_id,
                                  self.wire.REPLY_SYSTEM_EXCEPTION)
            out.write_string("UNKNOWN")
            out.write_string(f"{type(exc).__name__}: {exc}")
            return out

    @staticmethod
    def _servant_is_a(servant: Servant, repo: str) -> bool:
        idef = servant._idef
        if idef is None:
            return False
        if idef.repo_id == repo:
            return True
        return any(repo == f"IDL:{b.replace('::', '/')}:1.0"
                   for b in idef.bases)

    @staticmethod
    def _find_operation(idef: InterfaceDef | None,
                        opname: str) -> OperationDef:
        if idef is None:
            raise SystemException("NO_IMPLEMENT", "untyped servant")
        if opname in idef.operations:
            return idef.operations[opname]
        if opname.startswith("_get_"):
            attr = idef.attributes.get(opname[5:])
            if attr is not None:
                return OperationDef(opname, attr.type, [])
        if opname.startswith("_set_"):
            attr = idef.attributes.get(opname[5:])
            if attr is not None and not attr.readonly:
                return OperationDef(opname, VOID,
                                    [("value", "in", attr.type)])
        raise SystemException("BAD_OPERATION",
                              f"{idef.scoped_name} has no {opname!r}")

    def _encode_results(self, out: CdrOutputStream, opdef: OperationDef,
                        result: Any) -> None:
        n_out = len(opdef.out_params)
        has_ret = not isinstance(opdef.return_type, type(VOID))
        expected = (1 if has_ret else 0) + n_out
        if expected <= 1:
            values = [result] if expected == 1 else []
            if expected == 0 and result is not None:
                raise SystemException(
                    "MARSHAL", f"{opdef.name} is void but servant "
                    f"returned {result!r}")
        else:
            if not isinstance(result, tuple) or len(result) != expected:
                raise SystemException(
                    "MARSHAL", f"{opdef.name} must return a {expected}-"
                    f"tuple (return value + out parameters)")
            values = list(result)
        idx = 0
        if has_ret:
            encode_value(out, opdef.return_type, values[idx])
            idx += 1
        for pname, ptype in opdef.out_params:
            encode_value(out, ptype, values[idx])
            idx += 1


def _call_servant(servant: Servant, opdef: OperationDef,
                  args: list) -> Any:
    if opdef.name.startswith("_get_") and opdef.name[5:] in (
            servant._idef.attributes if servant._idef else {}):
        return getattr(servant, opdef.name[5:])
    if opdef.name.startswith("_set_") and opdef.name[5:] in (
            servant._idef.attributes if servant._idef else {}):
        setattr(servant, opdef.name[5:], args[0])
        return None
    method = getattr(servant, opdef.name, None)
    if method is None:
        raise SystemException(
            "NO_IMPLEMENT",
            f"{type(servant).__name__} does not implement {opdef.name!r}")
    return method(*args)


def _make_stub_class(idef: InterfaceDef) -> type:
    """Generate the client stub class for an interface."""
    namespace: dict[str, Any] = {"_idef": idef}

    def make_method(opdef: OperationDef):
        def method(self: ObjectRef, *args: Any) -> Any:
            return self._invoke(opdef, args)

        method.__name__ = opdef.name
        method.__doc__ = (f"IDL operation {idef.scoped_name}::{opdef.name}"
                          f"({', '.join(n for n, _d, _t in opdef.params)})")
        return method

    for opdef in idef.operations.values():
        namespace[opdef.name] = make_method(opdef)

    for attr in idef.attributes.values():
        getter_op = OperationDef(f"_get_{attr.name}", attr.type, [])

        def getter(self: ObjectRef, _op=getter_op) -> Any:
            return self._invoke(_op, ())

        if attr.readonly:
            namespace[attr.name] = property(getter)
        else:
            setter_op = OperationDef(f"_set_{attr.name}", VOID,
                                     [("value", "in", attr.type)])

            def setter(self: ObjectRef, value: Any,
                       _op=setter_op) -> None:
                self._invoke(_op, (value,))

            namespace[attr.name] = property(getter, setter)

    return type(f"{idef.name}Stub", (ObjectRef,), namespace)
