"""ESIOP: an Environment-Specific Inter-ORB Protocol for PadicoTM.

The paper (§4.4): "The latency is 11 µs for MPI and 20 µs for omniORB.
This latency could be lowered if we used a specific protocol (called
ESIOP) instead of the general GIOP protocol in the CORBA
implementation."  This module implements that improvement: since both
ends are known to live inside one PadicoTM grid, the envelope drops
everything GIOP carries for the open Internet —

- 8-byte header (``ESIO`` magic, version+flags+type packed, size)
  instead of 12;
- no ServiceContextList, no Principal;
- fixed little-endian encoding (no per-message byte-order negotiation);

and, more importantly for latency, the protocol engine skips the
generality of the GIOP state machine: per-invocation ORB software
overhead shrinks by :data:`OVERHEAD_SCALE`.

The module exposes the same surface as :mod:`repro.corba.giop`, so the
ORB treats the wire protocol as a pluggable namespace.
"""

from __future__ import annotations

import struct

from repro.corba.cdr import CdrError, CdrInputStream, CdrOutputStream, \
    WireBuffer

MAGIC = b"ESIO"

MSG_REQUEST = 0
MSG_REPLY = 1
MSG_CLOSE_CONNECTION = 5

REPLY_NO_EXCEPTION = 0
REPLY_USER_EXCEPTION = 1
REPLY_SYSTEM_EXCEPTION = 2

HEADER_SIZE = 8

#: fraction of the GIOP protocol-engine cost the specialised engine
#: still pays per invocation (calibrated: omniORB one-way 20 µs → 16 µs)
OVERHEAD_SCALE = 0.55

#: protocol name advertised in connection setup
NAME = "esiop"


#: body size is carried in 3 bytes → one ESIOP message caps at 16 MB-1;
#: larger payloads are legal GIOP territory (the ORB fragments or the
#: application chunks — our benches stay under the cap per message)
MAX_BODY = (1 << 24) - 1


def pack_header(msg_type: int, body_size: int,
                little_endian: bool = True,
                version: tuple[int, int] = (1, 0)) -> bytes:
    """Compact 8-byte header: magic(4) | ver:4,type:4 (1) | size (3)."""
    if not little_endian:
        raise CdrError("ESIOP is little-endian only")
    if body_size > MAX_BODY:
        raise CdrError(f"ESIOP body too large: {body_size} > {MAX_BODY}")
    packed = (version[0] << 4) | (msg_type & 0x0F)
    return MAGIC + bytes([packed]) + struct.pack("<I", body_size)[:3]


def parse_header(header: bytes) -> tuple[int, int, bool, tuple[int, int]]:
    if len(header) != HEADER_SIZE or header[:4] != MAGIC:
        raise CdrError(f"bad ESIOP header: {header!r}")
    packed = header[4]
    msg_type = packed & 0x0F
    version = (packed >> 4, 0)
    size, = struct.unpack("<I", header[5:8] + b"\x00")
    return msg_type, size, True, version


def start_request(out: CdrOutputStream, request_id: int, object_key: str,
                  operation: str, response_expected: bool,
                  principal: str = "") -> None:
    """Compact request header: id, flags, key, operation, principal.
    No service contexts."""
    out.write_ulong(request_id)
    out.write_primitive("boolean", response_expected)
    out.write_string(object_key)
    out.write_string(operation)
    out.write_string(principal)


def read_request(inp: CdrInputStream) -> tuple[int, bool, str, str, str]:
    request_id = inp.read_ulong()
    response_expected = inp.read_primitive("boolean")
    object_key = inp.read_string()
    operation = inp.read_string()
    principal = inp.read_string()
    return request_id, response_expected, object_key, operation, principal


def start_reply(out: CdrOutputStream, request_id: int, status: int) -> None:
    out.write_ulong(request_id)
    out.write_octet(status)


def read_reply(inp: CdrInputStream) -> tuple[int, int]:
    return inp.read_ulong(), inp.read_octet()


def frame(msg_type: int, body: bytes | WireBuffer,
          little_endian: bool = True) -> tuple[bytes, bytes | WireBuffer]:
    # a WireBuffer body is forwarded by reference; len() is O(1) either
    # way, so the MAX_BODY check inside pack_header never joins
    return pack_header(msg_type, len(body), little_endian), body


def message_size(payload: tuple[bytes, bytes | WireBuffer]) -> int:
    header, body = payload
    return len(header) + len(body)
