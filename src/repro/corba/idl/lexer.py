"""IDL tokenizer.

Handles identifiers, keywords, integer/float/char/string literals,
multi-character punctuation (``::``, ``<<``, ``>>``), and both comment
styles.  Keywords are matched case-sensitively as the IDL spec demands.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.corba.idl.errors import IdlParseError

KEYWORDS = frozenset("""
    module interface struct enum typedef const exception sequence string
    void short long unsigned float double boolean char octet any in out
    inout attribute readonly oneway raises TRUE FALSE
    component provides uses emits consumes publishes home manages
    eventtype primarykey factory finder supports abstract local native
    union switch case default fixed wstring valuetype
""".split())

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<preproc>\#[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>::|<<|>>|[{}()<>\[\];:,=+\-*/%|&^~])
""", re.VERBOSE | re.DOTALL)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str      # keyword | ident | int | float | char | string | punct | eof
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize IDL source; raises :class:`IdlParseError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            col = pos - line_start + 1
            raise IdlParseError(
                f"unexpected character {source[pos]!r}", line, col)
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind in ("ws", "line_comment", "block_comment", "preproc"):
            pass  # skipped, but track newlines below
        elif kind == "ident":
            tok_kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(tok_kind, text, line, col))
        else:
            tokens.append(Token(kind, text, line, col))
        # track line numbers across the consumed text
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rindex("\n") + 1
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """All tokens (comments are already dropped by :func:`tokenize`)."""
    return iter(tokens)
