"""Recursive-descent IDL parser."""

from __future__ import annotations

from typing import Any

from repro.corba.idl import ast_nodes as ast
from repro.corba.idl.errors import IdlParseError
from repro.corba.idl.lexer import Token, tokenize
from repro.corba.idl.types import (
    ANY,
    VOID,
    ArrayType,
    IdlType,
    NamedTypeRef,
    PrimitiveType,
    SequenceType,
    StringType,
)


def parse_idl(source: str) -> ast.Specification:
    """Parse IDL source into an AST; raises :class:`IdlParseError`."""
    return _Parser(tokenize(source)).parse_specification()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token utilities ---------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _error(self, message: str, tok: Token | None = None) -> IdlParseError:
        tok = tok or self._peek()
        return IdlParseError(f"{message}, got {tok.value!r}",
                             tok.line, tok.column)

    def _expect(self, kind: str, value: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            raise self._error(f"expected {value or kind}")
        return self._next()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self._peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self._next()
        return None

    def _at_keyword(self, *words: str) -> bool:
        tok = self._peek()
        return tok.kind == "keyword" and tok.value in words

    def _expect_close_angle(self) -> None:
        """Consume ``>``, splitting a ``>>`` token when nested template
        arguments close together (``sequence<string<8>>``)."""
        tok = self._peek()
        if tok.kind == "punct" and tok.value == ">>":
            # leave one '>' behind for the enclosing closer
            self._tokens[self._pos] = Token("punct", ">", tok.line,
                                            tok.column + 1)
            return
        self._expect("punct", ">")

    # -- grammar -------------------------------------------------------------
    def parse_specification(self) -> ast.Specification:
        spec = ast.Specification()
        while self._peek().kind != "eof":
            spec.definitions.append(self._definition())
        return spec

    def _definition(self) -> Any:
        tok = self._peek()
        if tok.kind != "keyword":
            raise self._error("expected a definition keyword")
        handlers = {
            "module": self._module,
            "interface": self._interface,
            "struct": self._struct,
            "enum": self._enum,
            "union": self._union,
            "typedef": self._typedef,
            "const": self._const,
            "exception": self._exception,
            "component": self._component,
            "home": self._home,
            "eventtype": self._eventtype,
        }
        handler = handlers.get(tok.value)
        if handler is None:
            raise self._error(
                f"unsupported or misplaced declaration {tok.value!r}")
        node = handler()
        self._expect("punct", ";")
        return node

    def _module(self) -> ast.ModuleDecl:
        self._expect("keyword", "module")
        name = self._expect("ident").value
        self._expect("punct", "{")
        defs = []
        while not self._accept("punct", "}"):
            defs.append(self._definition())
        return ast.ModuleDecl(name, defs)

    def _interface(self) -> ast.InterfaceDecl:
        self._expect("keyword", "interface")
        name = self._expect("ident").value
        bases: list[str] = []
        if self._accept("punct", ":"):
            bases.append(self._scoped_name())
            while self._accept("punct", ","):
                bases.append(self._scoped_name())
        self._expect("punct", "{")
        body: list[Any] = []
        while not self._accept("punct", "}"):
            body.append(self._export())
        return ast.InterfaceDecl(name, bases, body)

    def _export(self) -> Any:
        tok = self._peek()
        if tok.kind == "keyword":
            if tok.value in ("readonly", "attribute"):
                return self._attribute()
            if tok.value == "oneway":
                return self._operation()
            simple = {
                "struct": self._struct, "enum": self._enum,
                "union": self._union,
                "typedef": self._typedef, "const": self._const,
                "exception": self._exception,
            }.get(tok.value)
            if simple is not None:
                node = simple()
                self._expect("punct", ";")
                return node
        return self._operation()

    def _attribute(self) -> ast.AttributeDecl:
        readonly = self._accept("keyword", "readonly") is not None
        self._expect("keyword", "attribute")
        type_spec = self._type_spec()
        name = self._expect("ident").value
        # multi-declarator attributes are normalised to one node each by
        # the compiler; keep the parser simple: reject the comma form
        if self._peek().value == ",":
            raise self._error("declare one attribute per statement")
        self._expect("punct", ";")
        return ast.AttributeDecl(name, type_spec, readonly)

    def _operation(self) -> ast.OperationDecl:
        oneway = self._accept("keyword", "oneway") is not None
        ret = self._return_type()
        name = self._expect("ident").value
        self._expect("punct", "(")
        params: list[ast.ParamDecl] = []
        if not self._accept("punct", ")"):
            params.append(self._param())
            while self._accept("punct", ","):
                params.append(self._param())
            self._expect("punct", ")")
        raises: list[str] = []
        if self._accept("keyword", "raises"):
            self._expect("punct", "(")
            raises.append(self._scoped_name())
            while self._accept("punct", ","):
                raises.append(self._scoped_name())
            self._expect("punct", ")")
        self._expect("punct", ";")
        if oneway and (raises or not isinstance(ret, type(VOID))):
            raise self._error("oneway operations must be void with no raises")
        return ast.OperationDecl(name, ret, params, raises, oneway)

    def _param(self) -> ast.ParamDecl:
        tok = self._peek()
        if not self._at_keyword("in", "out", "inout"):
            raise self._error("expected parameter direction (in/out/inout)")
        direction = self._next().value
        type_spec = self._type_spec()
        name = self._expect("ident").value
        return ast.ParamDecl(direction, type_spec, name)

    def _struct(self) -> ast.StructDecl:
        self._expect("keyword", "struct")
        name = self._expect("ident").value
        self._expect("punct", "{")
        members = self._member_list()
        return ast.StructDecl(name, members)

    def _member_list(self) -> list[tuple[IdlType, str]]:
        members: list[tuple[IdlType, str]] = []
        while not self._accept("punct", "}"):
            type_spec = self._type_spec()
            name = self._expect("ident").value
            members.append((self._array_suffix(type_spec), name))
            while self._accept("punct", ","):
                name = self._expect("ident").value
                members.append((self._array_suffix(type_spec), name))
            self._expect("punct", ";")
        return members

    def _array_suffix(self, base: IdlType) -> IdlType:
        """Fixed-size array declarator: ``name[3][4]`` (outer first)."""
        dims: list[int] = []
        while self._accept("punct", "["):
            dims.append(int(self._expect("int").value, 0))
            self._expect("punct", "]")
        out = base
        for dim in reversed(dims):
            out = ArrayType(out, dim)
        return out

    def _enum(self) -> ast.EnumDecl:
        self._expect("keyword", "enum")
        name = self._expect("ident").value
        self._expect("punct", "{")
        members = [self._expect("ident").value]
        while self._accept("punct", ","):
            members.append(self._expect("ident").value)
        self._expect("punct", "}")
        return ast.EnumDecl(name, members)

    def _union(self) -> ast.UnionDecl:
        self._expect("keyword", "union")
        name = self._expect("ident").value
        self._expect("keyword", "switch")
        self._expect("punct", "(")
        switch_spec = self._type_spec()
        self._expect("punct", ")")
        self._expect("punct", "{")
        cases: list[tuple[list | None, ast.IdlType, str]] = []
        while not self._accept("punct", "}"):
            labels: list = []
            is_default = False
            saw_label = False
            while True:
                if self._accept("keyword", "case"):
                    labels.append(self._const_expr())
                    self._expect("punct", ":")
                    saw_label = True
                elif self._accept("keyword", "default"):
                    self._expect("punct", ":")
                    is_default = True
                    saw_label = True
                else:
                    break
            if not saw_label:
                raise self._error("expected 'case' or 'default' label")
            type_spec = self._type_spec()
            member = self._expect("ident").value
            self._expect("punct", ";")
            cases.append((None if is_default else labels, type_spec,
                          member))
        if not cases:
            raise self._error("union needs at least one case")
        return ast.UnionDecl(name, switch_spec, cases)

    def _typedef(self) -> ast.TypedefDecl:
        self._expect("keyword", "typedef")
        type_spec = self._type_spec()
        name = self._expect("ident").value
        return ast.TypedefDecl(name, self._array_suffix(type_spec))

    def _const(self) -> ast.ConstDecl:
        self._expect("keyword", "const")
        type_spec = self._type_spec()
        name = self._expect("ident").value
        self._expect("punct", "=")
        expr = self._const_expr()
        return ast.ConstDecl(name, type_spec, expr)

    def _exception(self) -> ast.ExceptionDecl:
        self._expect("keyword", "exception")
        name = self._expect("ident").value
        self._expect("punct", "{")
        members = self._member_list()
        return ast.ExceptionDecl(name, members)

    # -- IDL3 component extensions ------------------------------------------
    def _component(self) -> ast.ComponentDecl:
        self._expect("keyword", "component")
        name = self._expect("ident").value
        base = None
        if self._accept("punct", ":"):
            base = self._scoped_name()
        supports: list[str] = []
        if self._accept("keyword", "supports"):
            supports.append(self._scoped_name())
            while self._accept("punct", ","):
                supports.append(self._scoped_name())
        self._expect("punct", "{")
        ports: list[ast.PortDecl] = []
        attributes: list[ast.AttributeDecl] = []
        while not self._accept("punct", "}"):
            if self._at_keyword("provides", "uses", "emits", "consumes",
                                "publishes"):
                kind = self._next().value
                type_name = self._scoped_name()
                pname = self._expect("ident").value
                self._expect("punct", ";")
                ports.append(ast.PortDecl(kind, type_name, pname))
            elif self._at_keyword("attribute", "readonly"):
                attributes.append(self._attribute())
            else:
                raise self._error("expected a port or attribute declaration")
        return ast.ComponentDecl(name, base, supports, ports, attributes)

    def _home(self) -> ast.HomeDecl:
        self._expect("keyword", "home")
        name = self._expect("ident").value
        self._expect("keyword", "manages")
        manages = self._scoped_name()
        self._expect("punct", "{")
        body: list[Any] = []
        while not self._accept("punct", "}"):
            if self._accept("keyword", "factory"):
                fname = self._expect("ident").value
                self._expect("punct", "(")
                params: list[ast.ParamDecl] = []
                if not self._accept("punct", ")"):
                    params.append(self._param())
                    while self._accept("punct", ","):
                        params.append(self._param())
                    self._expect("punct", ")")
                self._expect("punct", ";")
                body.append(ast.OperationDecl(fname, NamedTypeRef("__managed__"),
                                              params, [], False))
            else:
                body.append(self._export())
        return ast.HomeDecl(name, manages, body)

    def _eventtype(self) -> ast.EventTypeDecl:
        self._expect("keyword", "eventtype")
        name = self._expect("ident").value
        self._expect("punct", "{")
        members = self._member_list()
        return ast.EventTypeDecl(name, members)

    # -- types -----------------------------------------------------------------
    def _return_type(self) -> IdlType:
        if self._accept("keyword", "void"):
            return VOID
        return self._type_spec()

    def _type_spec(self) -> IdlType:
        tok = self._peek()
        if tok.kind == "keyword":
            if tok.value == "sequence":
                return self._sequence_type()
            if tok.value == "string":
                return self._string_type()
            if tok.value == "any":
                self._next()
                return ANY
            if tok.value in ("short", "float", "double", "boolean", "char",
                             "octet", "long", "unsigned"):
                return self._primitive_type()
            raise self._error(f"unsupported type keyword {tok.value!r}")
        if tok.kind == "ident" or tok.value == "::":
            return NamedTypeRef(self._scoped_name())
        raise self._error("expected a type")

    def _primitive_type(self) -> PrimitiveType:
        words = []
        if self._accept("keyword", "unsigned"):
            words.append("unsigned")
        tok = self._peek()
        if not self._at_keyword("short", "long", "float", "double",
                                "boolean", "char", "octet"):
            raise self._error("expected a primitive type")
        words.append(self._next().value)
        if words[-1] == "long" and self._at_keyword("long"):
            self._next()
            words.append("long")
        kind = " ".join(words)
        if kind in ("unsigned float", "unsigned double", "unsigned boolean",
                    "unsigned char", "unsigned octet"):
            raise self._error(f"invalid type {kind!r}")
        return PrimitiveType(kind)

    def _sequence_type(self) -> SequenceType:
        self._expect("keyword", "sequence")
        self._expect("punct", "<")
        element = self._type_spec()
        bound = None
        if self._accept("punct", ","):
            bound = int(self._expect("int").value, 0)
        self._expect_close_angle()
        return SequenceType(element, bound)

    def _string_type(self) -> StringType:
        self._expect("keyword", "string")
        bound = None
        if self._accept("punct", "<"):
            bound = int(self._expect("int").value, 0)
            self._expect_close_angle()
        return StringType(bound)

    def _scoped_name(self) -> str:
        parts = []
        if self._accept("punct", "::"):
            parts.append("")  # absolute name marker
        parts.append(self._expect("ident").value)
        while self._accept("punct", "::"):
            parts.append(self._expect("ident").value)
        return "::".join(parts)

    # -- constant expressions ----------------------------------------------
    def _const_expr(self) -> Any:
        return self._const_or()

    def _const_or(self) -> Any:
        left = self._const_and()
        while self._peek().value == "|":
            self._next()
            left = ("|", left, self._const_and())
        return left

    def _const_and(self) -> Any:
        left = self._const_shift()
        while self._peek().value == "&":
            self._next()
            left = ("&", left, self._const_shift())
        return left

    def _const_shift(self) -> Any:
        left = self._const_add()
        while self._peek().value in ("<<", ">>"):
            op = self._next().value
            left = (op, left, self._const_add())
        return left

    def _const_add(self) -> Any:
        left = self._const_mul()
        while self._peek().value in ("+", "-"):
            op = self._next().value
            left = (op, left, self._const_mul())
        return left

    def _const_mul(self) -> Any:
        left = self._const_unary()
        while self._peek().value in ("*", "/", "%"):
            op = self._next().value
            left = (op, left, self._const_unary())
        return left

    def _const_unary(self) -> Any:
        if self._accept("punct", "-"):
            return ("neg", self._const_unary())
        if self._accept("punct", "~"):
            return ("~", self._const_unary())
        return self._const_primary()

    def _const_primary(self) -> Any:
        tok = self._peek()
        if tok.kind == "int":
            self._next()
            return int(tok.value, 0)
        if tok.kind == "float":
            self._next()
            return float(tok.value)
        if tok.kind == "string":
            self._next()
            return _unescape(tok.value[1:-1])
        if tok.kind == "char":
            self._next()
            return _unescape(tok.value[1:-1])
        if tok.kind == "keyword" and tok.value in ("TRUE", "FALSE"):
            self._next()
            return tok.value == "TRUE"
        if tok.kind == "ident" or tok.value == "::":
            return ("ref", self._scoped_name())
        if self._accept("punct", "("):
            expr = self._const_expr()
            self._expect("punct", ")")
            return expr
        raise self._error("expected a constant expression")


def _unescape(text: str) -> str:
    return (text.replace(r"\n", "\n").replace(r"\t", "\t")
            .replace(r"\"", '"').replace(r"\'", "'").replace(r"\\", "\\"))
