"""IDL semantic analysis: scoped-name resolution, inheritance, repo ids.

Turns a parsed :class:`~repro.corba.idl.ast_nodes.Specification` into a
:class:`CompiledIdl`: resolved wire types, interface definitions with
inherited operations flattened in, CCM component/home/event metadata and
evaluated constants — everything stubs, skeletons and containers need at
runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.corba.idl import ast_nodes as ast
from repro.corba.idl.errors import IdlError
from repro.corba.idl.parser import parse_idl
from repro.corba.idl.types import (
    ArrayType,
    EnumType,
    ExceptionType,
    IdlType,
    NamedTypeRef,
    ObjRefType,
    PrimitiveType,
    SequenceType,
    StructType,
    UnionType,
    typecheck,
)


def repo_id(scoped_name: str) -> str:
    """OMG repository id for a scoped name."""
    return f"IDL:{scoped_name.replace('::', '/')}:1.0"


@dataclass
class OperationDef:
    """Resolved operation signature."""

    name: str
    return_type: IdlType
    params: list[tuple[str, str, IdlType]]  # (name, direction, type)
    raises: list[ExceptionType] = field(default_factory=list)
    oneway: bool = False

    @property
    def in_params(self) -> list[tuple[str, IdlType]]:
        return [(n, t) for n, d, t in self.params if d in ("in", "inout")]

    @property
    def out_params(self) -> list[tuple[str, IdlType]]:
        return [(n, t) for n, d, t in self.params if d in ("out", "inout")]


@dataclass
class AttributeDef:
    name: str
    type: IdlType
    readonly: bool = False


@dataclass
class InterfaceDef:
    """Resolved interface: own + inherited operations and attributes."""

    name: str
    scoped_name: str
    repo_id: str
    bases: list[str] = field(default_factory=list)
    operations: dict[str, OperationDef] = field(default_factory=dict)
    attributes: dict[str, AttributeDef] = field(default_factory=dict)

    def operation(self, name: str) -> OperationDef:
        try:
            return self.operations[name]
        except KeyError:
            raise IdlError(f"interface {self.scoped_name} has no "
                           f"operation {name!r}") from None


@dataclass
class ComponentDef:
    """Resolved IDL3 component: ports and attributes."""

    name: str
    scoped_name: str
    repo_id: str
    base: str | None = None
    supports: list[str] = field(default_factory=list)
    provides: dict[str, str] = field(default_factory=dict)   # port -> iface
    uses: dict[str, str] = field(default_factory=dict)
    emits: dict[str, str] = field(default_factory=dict)      # port -> event
    consumes: dict[str, str] = field(default_factory=dict)
    publishes: dict[str, str] = field(default_factory=dict)
    attributes: dict[str, AttributeDef] = field(default_factory=dict)

    def all_ports(self) -> dict[str, tuple[str, str]]:
        """port name -> (kind, type scoped name)."""
        out: dict[str, tuple[str, str]] = {}
        for kind in ("provides", "uses", "emits", "consumes", "publishes"):
            for pname, tname in getattr(self, kind).items():
                out[pname] = (kind, tname)
        return out


@dataclass
class HomeDef:
    name: str
    scoped_name: str
    repo_id: str
    manages: str = ""
    factories: list[OperationDef] = field(default_factory=list)


@dataclass
class CompiledIdl:
    """The output of IDL compilation — a queryable model of the unit."""

    types: dict[str, IdlType] = field(default_factory=dict)
    interfaces: dict[str, InterfaceDef] = field(default_factory=dict)
    components: dict[str, ComponentDef] = field(default_factory=dict)
    homes: dict[str, HomeDef] = field(default_factory=dict)
    events: dict[str, StructType] = field(default_factory=dict)
    constants: dict[str, Any] = field(default_factory=dict)

    def interface(self, name: str) -> InterfaceDef:
        try:
            return self.interfaces[name]
        except KeyError:
            raise IdlError(f"unknown interface {name!r} "
                           f"(known: {sorted(self.interfaces)})") from None

    def component(self, name: str) -> ComponentDef:
        try:
            return self.components[name]
        except KeyError:
            raise IdlError(f"unknown component {name!r}") from None

    def home(self, name: str) -> HomeDef:
        try:
            return self.homes[name]
        except KeyError:
            raise IdlError(f"unknown home {name!r}") from None

    def home_for_component(self, component: str) -> HomeDef:
        for h in self.homes.values():
            if h.manages == component:
                return h
        raise IdlError(f"no home manages component {component!r}")

    def type(self, name: str) -> IdlType:
        try:
            return self.types[name]
        except KeyError:
            raise IdlError(f"unknown type {name!r}") from None

    def merge(self, other: "CompiledIdl") -> "CompiledIdl":
        """Combine two compiled units (duplicate names rejected)."""
        for attr in ("types", "interfaces", "components", "homes",
                     "events", "constants"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            dup = set(mine) & set(theirs)
            if dup:
                raise IdlError(f"duplicate definitions on merge: {dup}")
            mine.update(theirs)
        return self


def compile_idl(source: str | ast.Specification) -> CompiledIdl:
    """Compile IDL source (or a parsed AST) into a :class:`CompiledIdl`."""
    spec = parse_idl(source) if isinstance(source, str) else source
    return _Compiler().compile(spec)


class _Compiler:
    def __init__(self) -> None:
        self.out = CompiledIdl()
        # raw declarations awaiting resolution: scoped name -> (scope, node)
        self._raw: dict[str, tuple[str, Any]] = {}
        self._kinds: dict[str, str] = {}
        self._resolving: set[str] = set()

    # -- pass 1: register declarations -------------------------------------
    def compile(self, spec: ast.Specification) -> CompiledIdl:
        self._register_all(spec.definitions, scope="")
        for name, kind in list(self._kinds.items()):
            self._resolve_symbol(name)
        return self.out

    def _register_all(self, defs: list[Any], scope: str) -> None:
        for node in defs:
            if isinstance(node, ast.ModuleDecl):
                inner = f"{scope}{node.name}::"
                self._register_all(node.definitions, inner)
                continue
            name = f"{scope}{node.name}"
            if name in self._kinds:
                raise IdlError(f"duplicate definition {name!r}")
            self._raw[name] = (scope, node)
            self._kinds[name] = type(node).__name__
            # nested declarations inside interfaces live in their scope
            if isinstance(node, ast.InterfaceDecl):
                nested_scope = f"{name}::"
                for item in node.body:
                    if isinstance(item, (ast.StructDecl, ast.EnumDecl,
                                         ast.UnionDecl,
                                         ast.TypedefDecl, ast.ConstDecl,
                                         ast.ExceptionDecl)):
                        nname = f"{nested_scope}{item.name}"
                        if nname in self._kinds:
                            raise IdlError(f"duplicate definition {nname!r}")
                        self._raw[nname] = (nested_scope, item)
                        self._kinds[nname] = type(item).__name__

    # -- name lookup --------------------------------------------------------
    def _lookup(self, name: str, scope: str) -> str:
        """Resolve a possibly-relative scoped name to its full name."""
        if name.startswith("::"):
            full = name[2:]
            if full in self._kinds:
                return full
            raise IdlError(f"unknown name {name!r}")
        parts = scope.split("::") if scope else []
        # walk outward through enclosing scopes
        while True:
            candidate = "::".join([p for p in parts if p] + [name])
            if candidate in self._kinds:
                return candidate
            if not parts:
                break
            parts = parts[:-1]
        if name in self._kinds:
            return name
        raise IdlError(f"unknown name {name!r} (scope {scope!r})")

    # -- pass 2: resolution ----------------------------------------------------
    def _resolve_symbol(self, full_name: str) -> Any:
        """Resolve one declaration (idempotent, cycle-checked)."""
        if full_name in self.out.types or full_name in self.out.interfaces \
                or full_name in self.out.components \
                or full_name in self.out.homes \
                or full_name in self.out.constants:
            return self._resolved_entry(full_name)
        if full_name in self._resolving:
            raise IdlError(f"circular definition involving {full_name!r}")
        self._resolving.add(full_name)
        try:
            scope, node = self._raw[full_name]
            if isinstance(node, ast.StructDecl):
                st = StructType(node.name, full_name, [
                    (mname, self._resolve_type(mtype, scope))
                    for mtype, mname in node.members])
                self.out.types[full_name] = st
            elif isinstance(node, ast.ExceptionDecl):
                ex = ExceptionType(node.name, full_name, [
                    (mname, self._resolve_type(mtype, scope))
                    for mtype, mname in node.members], repo_id(full_name))
                self.out.types[full_name] = ex
            elif isinstance(node, ast.EnumDecl):
                en = EnumType(node.name, full_name, node.members)
                self.out.types[full_name] = en
            elif isinstance(node, ast.UnionDecl):
                self.out.types[full_name] = \
                    self._resolve_union(full_name, scope, node)
            elif isinstance(node, ast.TypedefDecl):
                self.out.types[full_name] = \
                    self._resolve_type(node.type_spec, scope)
            elif isinstance(node, ast.EventTypeDecl):
                st = StructType(node.name, full_name, [
                    (mname, self._resolve_type(mtype, scope))
                    for mtype, mname in node.members])
                self.out.types[full_name] = st
                self.out.events[full_name] = st
            elif isinstance(node, ast.ConstDecl):
                self.out.constants[full_name] = \
                    self._eval_const(node.expr, scope)
            elif isinstance(node, ast.InterfaceDecl):
                self._resolve_interface(full_name, scope, node)
            elif isinstance(node, ast.ComponentDecl):
                self._resolve_component(full_name, scope, node)
            elif isinstance(node, ast.HomeDecl):
                self._resolve_home(full_name, scope, node)
            else:
                raise IdlError(f"cannot resolve {type(node).__name__}")
        finally:
            self._resolving.discard(full_name)
        return self._resolved_entry(full_name)

    def _resolved_entry(self, full_name: str) -> Any:
        for table in (self.out.interfaces, self.out.components,
                      self.out.homes, self.out.types, self.out.constants):
            if full_name in table:
                return table[full_name]
        raise IdlError(f"symbol {full_name!r} did not resolve")

    def _resolve_type(self, t: IdlType, scope: str) -> IdlType:
        if isinstance(t, NamedTypeRef):
            if t.name == "Object":  # CORBA::Object — any object reference
                return ObjRefType("")
            full = self._lookup(t.name, scope)
            kind = self._kinds[full]
            if kind == "InterfaceDecl":
                self._resolve_symbol(full)
                return ObjRefType(full)
            if kind == "ComponentDecl":
                self._resolve_symbol(full)
                return ObjRefType(full)
            resolved = self._resolve_symbol(full)
            if not isinstance(resolved, IdlType):
                raise IdlError(f"{full!r} is not a type")
            return resolved
        if isinstance(t, SequenceType):
            elem = self._resolve_type(t.element, scope)
            return SequenceType(elem, t.bound) if elem is not t.element else t
        if isinstance(t, ArrayType):
            elem = self._resolve_type(t.element, scope)
            return ArrayType(elem, t.length) if elem is not t.element else t
        return t

    _SWITCH_KINDS = frozenset((
        "short", "unsigned short", "long", "unsigned long", "long long",
        "unsigned long long", "boolean", "char"))

    def _resolve_union(self, full_name: str, scope: str,
                       node: ast.UnionDecl) -> UnionType:
        switch = self._resolve_type(node.switch_spec, scope)
        if isinstance(switch, PrimitiveType):
            if switch.kind not in self._SWITCH_KINDS:
                raise IdlError(
                    f"union {full_name}: {switch.kind} cannot be a "
                    f"switch type")
        elif not isinstance(switch, EnumType):
            raise IdlError(
                f"union {full_name}: switch type must be an integer, "
                f"char, boolean or enum, got {switch.typename()}")
        cases = []
        for label_exprs, type_spec, member in node.cases:
            mtype = self._resolve_type(type_spec, scope)
            if label_exprs is None:
                cases.append((None, member, mtype))
                continue
            labels = []
            for expr in label_exprs:
                value = self._eval_case_label(expr, scope, switch)
                typecheck(switch, value)
                labels.append(value)
            cases.append((tuple(labels), member, mtype))
        return UnionType(node.name, full_name, switch, cases)

    def _eval_case_label(self, expr: Any, scope: str,
                         switch: IdlType) -> Any:
        """Labels may be literals, constants, or enum member names."""
        if isinstance(switch, EnumType) and isinstance(expr, tuple) \
                and expr[0] == "ref":
            member = expr[1].split("::")[-1]
            if member in switch.members:
                return switch.index_of(member)
        return self._eval_const(expr, scope)

    def _resolve_interface(self, full_name: str, scope: str,
                           node: ast.InterfaceDecl) -> None:
        idef = InterfaceDef(node.name, full_name, repo_id(full_name))
        self.out.interfaces[full_name] = idef  # allow self-reference
        inner_scope = f"{full_name}::"
        for base_name in node.bases:
            base_full = self._lookup(base_name, scope)
            base = self._resolve_symbol(base_full)
            if not isinstance(base, InterfaceDef):
                raise IdlError(f"{base_full!r} is not an interface")
            idef.bases.append(base_full)
            idef.operations.update(base.operations)
            idef.attributes.update(base.attributes)
        for item in node.body:
            if isinstance(item, ast.OperationDecl):
                op = self._resolve_operation(item, inner_scope)
                if op.name in idef.operations:
                    raise IdlError(f"duplicate operation {op.name!r} in "
                                   f"{full_name}")
                idef.operations[op.name] = op
            elif isinstance(item, ast.AttributeDecl):
                idef.attributes[item.name] = AttributeDef(
                    item.name, self._resolve_type(item.type_spec, inner_scope),
                    item.readonly)
            # nested type declarations were registered in pass 1

    def _resolve_operation(self, op: ast.OperationDecl,
                           scope: str) -> OperationDef:
        raises = []
        for ename in op.raises:
            efull = self._lookup(ename, scope)
            etype = self._resolve_symbol(efull)
            if not isinstance(etype, ExceptionType):
                raise IdlError(f"{efull!r} in raises clause is not an "
                               f"exception")
            raises.append(etype)
        return OperationDef(
            op.name,
            self._resolve_type(op.return_type, scope),
            [(p.name, p.direction, self._resolve_type(p.type_spec, scope))
             for p in op.params],
            raises,
            op.oneway)

    def _resolve_component(self, full_name: str, scope: str,
                           node: ast.ComponentDecl) -> None:
        cdef = ComponentDef(node.name, full_name, repo_id(full_name))
        self.out.components[full_name] = cdef
        if node.base is not None:
            base_full = self._lookup(node.base, scope)
            base = self._resolve_symbol(base_full)
            if not isinstance(base, ComponentDef):
                raise IdlError(f"{base_full!r} is not a component")
            cdef.base = base_full
            for kind in ("provides", "uses", "emits", "consumes",
                         "publishes"):
                getattr(cdef, kind).update(getattr(base, kind))
            cdef.attributes.update(base.attributes)
        for sname in node.supports:
            sfull = self._lookup(sname, scope)
            if not isinstance(self._resolve_symbol(sfull), InterfaceDef):
                raise IdlError(f"{sfull!r} is not an interface")
            cdef.supports.append(sfull)
        for port in node.ports:
            tfull = self._lookup(port.type_name, scope)
            target = self._resolve_symbol(tfull)
            if port.kind in ("provides", "uses"):
                if not isinstance(target, InterfaceDef):
                    raise IdlError(f"port {port.name!r}: {tfull!r} is not "
                                   f"an interface")
            else:
                if tfull not in self.out.events:
                    raise IdlError(f"port {port.name!r}: {tfull!r} is not "
                                   f"an eventtype")
            table = getattr(cdef, port.kind)
            if port.name in cdef.all_ports():
                raise IdlError(f"duplicate port {port.name!r} in {full_name}")
            table[port.name] = tfull
        for attr in node.attributes:
            cdef.attributes[attr.name] = AttributeDef(
                attr.name, self._resolve_type(attr.type_spec, scope),
                attr.readonly)

    def _resolve_home(self, full_name: str, scope: str,
                      node: ast.HomeDecl) -> None:
        manages_full = self._lookup(node.manages, scope)
        if not isinstance(self._resolve_symbol(manages_full), ComponentDef):
            raise IdlError(f"home {full_name!r} manages {manages_full!r} "
                           f"which is not a component")
        hdef = HomeDef(node.name, full_name, repo_id(full_name),
                       manages_full)
        self.out.homes[full_name] = hdef
        for item in node.body:
            if isinstance(item, ast.OperationDecl):
                # factory operations return the managed component
                if isinstance(item.return_type, NamedTypeRef) and \
                        item.return_type.name == "__managed__":
                    item = ast.OperationDecl(
                        item.name, NamedTypeRef(manages_full),
                        item.params, item.raises, item.oneway)
                hdef.factories.append(
                    self._resolve_operation(item, scope))

    # -- constants ----------------------------------------------------------
    def _eval_const(self, expr: Any, scope: str) -> Any:
        if isinstance(expr, tuple):
            op = expr[0]
            if op == "ref":
                full = self._lookup(expr[1], scope)
                value = self._resolve_symbol(full)
                if full not in self.out.constants:
                    raise IdlError(f"{full!r} is not a constant")
                return value
            if op == "neg":
                return -self._eval_const(expr[1], scope)
            if op == "~":
                return ~self._eval_const(expr[1], scope)
            a = self._eval_const(expr[1], scope)
            b = self._eval_const(expr[2], scope)
            return {
                "+": lambda: a + b, "-": lambda: a - b,
                "*": lambda: a * b, "/": lambda: a / b
                if isinstance(a, float) or isinstance(b, float) else a // b,
                "%": lambda: a % b, "|": lambda: a | b, "&": lambda: a & b,
                "<<": lambda: a << b, ">>": lambda: a >> b,
            }[op]()
        return expr
