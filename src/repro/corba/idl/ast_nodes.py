"""IDL abstract syntax tree nodes (pure data, produced by the parser)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.corba.idl.types import IdlType


@dataclass
class Specification:
    """A whole IDL compilation unit."""

    definitions: list[Any] = field(default_factory=list)


@dataclass
class ModuleDecl:
    name: str
    definitions: list[Any] = field(default_factory=list)


@dataclass
class ParamDecl:
    direction: str  # in | out | inout
    type_spec: IdlType
    name: str


@dataclass
class OperationDecl:
    name: str
    return_type: IdlType
    params: list[ParamDecl] = field(default_factory=list)
    raises: list[str] = field(default_factory=list)  # scoped exception names
    oneway: bool = False


@dataclass
class AttributeDecl:
    name: str
    type_spec: IdlType
    readonly: bool = False


@dataclass
class InterfaceDecl:
    name: str
    bases: list[str] = field(default_factory=list)
    body: list[Any] = field(default_factory=list)


@dataclass
class StructDecl:
    name: str
    members: list[tuple[IdlType, str]] = field(default_factory=list)


@dataclass
class EnumDecl:
    name: str
    members: list[str] = field(default_factory=list)


@dataclass
class TypedefDecl:
    name: str
    type_spec: IdlType


@dataclass
class ConstDecl:
    name: str
    type_spec: IdlType
    expr: Any  # literal or expression tree evaluated by the compiler


@dataclass
class ExceptionDecl:
    name: str
    members: list[tuple[IdlType, str]] = field(default_factory=list)


@dataclass
class UnionDecl:
    name: str
    switch_spec: IdlType
    #: (label expressions or None for default, member type, member name)
    cases: list[tuple[list | None, IdlType, str]] = field(
        default_factory=list)


@dataclass
class PortDecl:
    """An IDL3 component port declaration."""

    kind: str        # provides | uses | emits | consumes | publishes
    type_name: str   # interface or eventtype scoped name
    name: str


@dataclass
class ComponentDecl:
    name: str
    base: str | None = None
    supports: list[str] = field(default_factory=list)
    ports: list[PortDecl] = field(default_factory=list)
    attributes: list[AttributeDecl] = field(default_factory=list)


@dataclass
class HomeDecl:
    name: str
    manages: str = ""
    body: list[Any] = field(default_factory=list)


@dataclass
class EventTypeDecl:
    name: str
    members: list[tuple[IdlType, str]] = field(default_factory=list)
