"""OMG IDL compiler: lexer → parser → AST → Python stubs/skeletons.

Supports the IDL 2 subset grid applications use (modules, interfaces
with inheritance, operations with in/out/inout parameters and raises
clauses, attributes, structs, enums, typedefs, sequences, strings,
constants, exceptions) plus the IDL 3 component extensions CCM needs
(``component`` with provides/uses/emits/consumes ports, ``home``,
``eventtype``)."""

from repro.corba.idl.ast_nodes import (
    AttributeDecl,
    ComponentDecl,
    ConstDecl,
    EnumDecl,
    EventTypeDecl,
    ExceptionDecl,
    HomeDecl,
    InterfaceDecl,
    ModuleDecl,
    OperationDecl,
    ParamDecl,
    PortDecl,
    Specification,
    StructDecl,
    TypedefDecl,
)
from repro.corba.idl.errors import IdlError, IdlParseError
from repro.corba.idl.lexer import Token, tokenize
from repro.corba.idl.parser import parse_idl
from repro.corba.idl.compiler import CompiledIdl, compile_idl
from repro.corba.idl.types import (
    AnyType,
    EnumType,
    IdlType,
    ObjRefType,
    PrimitiveType,
    SequenceType,
    StringType,
    StructType,
    UnionType,
    UnionValue,
    VoidType,
    typecheck,
)

__all__ = [
    "tokenize",
    "Token",
    "parse_idl",
    "compile_idl",
    "CompiledIdl",
    "IdlError",
    "IdlParseError",
    "Specification",
    "ModuleDecl",
    "InterfaceDecl",
    "OperationDecl",
    "ParamDecl",
    "AttributeDecl",
    "StructDecl",
    "EnumDecl",
    "TypedefDecl",
    "ConstDecl",
    "ExceptionDecl",
    "ComponentDecl",
    "HomeDecl",
    "PortDecl",
    "EventTypeDecl",
    "IdlType",
    "PrimitiveType",
    "SequenceType",
    "StringType",
    "StructType",
    "EnumType",
    "UnionType",
    "UnionValue",
    "ObjRefType",
    "VoidType",
    "AnyType",
    "typecheck",
]
