"""Runtime IDL type model.

These objects describe wire types for the CDR marshaller and value
shapes for stubs/skeletons.  Python value mapping:

==================  =========================================
IDL                 Python
==================  =========================================
short/long/...      int (range-checked)
float/double        float
boolean             bool
char                 1-character str
octet               int (0..255)
string              str
sequence<octet>     bytes / bytearray / memoryview
sequence<numeric>   numpy array (or any sequence of numbers)
sequence<T>         list
struct              generated value class (attribute access)
enum                int (member index) or member name str
interface           ObjectRef
==================  =========================================
"""

from __future__ import annotations

from typing import Any, Sequence as PySequence

import numpy as np

from repro.corba.idl.errors import IdlError

#: primitive kind -> (struct format char, size, alignment, numpy dtype)
PRIMITIVES: dict[str, tuple[str, int, int, str]] = {
    "short": ("h", 2, 2, "i2"),
    "unsigned short": ("H", 2, 2, "u2"),
    "long": ("i", 4, 4, "i4"),
    "unsigned long": ("I", 4, 4, "u4"),
    "long long": ("q", 8, 8, "i8"),
    "unsigned long long": ("Q", 8, 8, "u8"),
    "float": ("f", 4, 4, "f4"),
    "double": ("d", 8, 8, "f8"),
    "boolean": ("B", 1, 1, "u1"),
    "char": ("c", 1, 1, "S1"),
    "octet": ("B", 1, 1, "u1"),
}

_INT_RANGES = {
    "short": (-2**15, 2**15 - 1),
    "unsigned short": (0, 2**16 - 1),
    "long": (-2**31, 2**31 - 1),
    "unsigned long": (0, 2**32 - 1),
    "long long": (-2**63, 2**63 - 1),
    "unsigned long long": (0, 2**64 - 1),
    "octet": (0, 255),
}


class IdlType:
    """Base class of all wire types."""

    def typename(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<idl {self.typename()}>"


class VoidType(IdlType):
    def typename(self) -> str:
        return "void"


VOID = VoidType()


class AnyType(IdlType):
    """CORBA ``any``: a (type, value) pair on the wire."""

    def typename(self) -> str:
        return "any"


ANY = AnyType()


class PrimitiveType(IdlType):
    __slots__ = ("kind", "fmt", "size", "align", "dtype", "int_range")
    _cache: dict[str, "PrimitiveType"] = {}

    def __new__(cls, kind: str) -> "PrimitiveType":
        if kind not in PRIMITIVES:
            raise IdlError(f"unknown primitive type {kind!r}")
        if kind not in cls._cache:
            inst = super().__new__(cls)
            fmt, size, align, dtype = PRIMITIVES[kind]
            inst.kind = kind
            inst.fmt = fmt
            inst.size = size
            inst.align = align
            inst.dtype = dtype
            #: (lo, hi) for integer kinds, None otherwise — typecheck
            #: range-guards every scalar, so the bounds live on the
            #: interned singleton instead of a per-call table lookup
            inst.int_range = _INT_RANGES.get(kind)
            cls._cache[kind] = inst
        return cls._cache[kind]

    def typename(self) -> str:
        return self.kind

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimitiveType) and other.kind == self.kind

    def __hash__(self) -> int:
        return hash(("prim", self.kind))


class StringType(IdlType):
    __slots__ = ("bound",)

    def __init__(self, bound: int | None = None):
        self.bound = bound

    def typename(self) -> str:
        return f"string<{self.bound}>" if self.bound else "string"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringType) and other.bound == self.bound

    def __hash__(self) -> int:
        return hash(("string", self.bound))


class SequenceType(IdlType):
    __slots__ = ("element", "bound")

    def __init__(self, element: IdlType, bound: int | None = None):
        self.element = element
        self.bound = bound

    def typename(self) -> str:
        inner = self.element.typename()
        return (f"sequence<{inner},{self.bound}>" if self.bound
                else f"sequence<{inner}>")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SequenceType)
                and other.element == self.element and other.bound == self.bound)

    def __hash__(self) -> int:
        return hash(("seq", self.element, self.bound))


class StructValue:
    """Base for generated struct values: keyword construction,
    attribute access, structural equality."""

    _struct_type: "StructType"
    __slots__ = ()

    def __init__(self, **fields: Any):
        declared = [n for n, _t in self._struct_type.fields]
        unknown = set(fields) - set(declared)
        if unknown:
            raise IdlError(
                f"struct {self._struct_type.name}: unknown fields {unknown}")
        missing = set(declared) - set(fields)
        if missing:
            raise IdlError(
                f"struct {self._struct_type.name}: missing fields {missing}")
        for name, value in fields.items():
            setattr(self, name, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructValue) or \
                other._struct_type != self._struct_type:
            return NotImplemented
        return all(_values_equal(getattr(self, n), getattr(other, n))
                   for n, _t in self._struct_type.fields)

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={getattr(self, n)!r}"
                         for n, _t in self._struct_type.fields)
        return f"{self._struct_type.name}({body})"


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(np.asarray(a), np.asarray(b)))
    return bool(a == b)


class StructType(IdlType):
    __slots__ = ("name", "scoped_name", "fields", "value_class")

    def __init__(self, name: str, scoped_name: str,
                 fields: list[tuple[str, IdlType]]):
        self.name = name
        self.scoped_name = scoped_name
        self.fields = list(fields)
        # no __slots__: exception value classes must combine with the
        # C-level Exception layout, which forbids slotted bases
        self.value_class = type(name, (StructValue,), {"_struct_type": self})

    def make(self, **fields: Any) -> StructValue:
        return self.value_class(**fields)

    def typename(self) -> str:
        return f"struct {self.scoped_name}"

    def __eq__(self, other: object) -> bool:
        # structural equality so types survive a trip through an `any`
        return (isinstance(other, StructType)
                and other.scoped_name == self.scoped_name
                and other.fields == self.fields)

    def __hash__(self) -> int:
        return hash(("struct", self.scoped_name))


class ExceptionType(StructType):
    """IDL exception: a struct raised as a Python exception."""

    __slots__ = ("exc_class", "repo_id")

    def __init__(self, name: str, scoped_name: str,
                 fields: list[tuple[str, IdlType]], repo_id: str):
        super().__init__(name, scoped_name, fields)
        self.repo_id = repo_id
        struct_type = self

        def exc_init(self_exc, **kw: Any) -> None:
            struct_type.value_class.__init__(self_exc, **kw)
            Exception.__init__(self_exc, StructValue.__repr__(self_exc))

        self.exc_class = type(
            name, (UserExceptionBase, self.value_class),
            {"__init__": exc_init, "_exception_type": self,
             # Exception.__repr__ would otherwise shadow the struct repr
             "__repr__": StructValue.__repr__,
             "__str__": StructValue.__repr__})

    def make(self, **fields: Any) -> "UserExceptionBase":
        return self.exc_class(**fields)

    def typename(self) -> str:
        return f"exception {self.scoped_name}"


class UserExceptionBase(Exception):
    """Base of all generated IDL user exceptions."""

    _exception_type: ExceptionType


class EnumType(IdlType):
    __slots__ = ("name", "scoped_name", "members")

    def __init__(self, name: str, scoped_name: str, members: list[str]):
        self.name = name
        self.scoped_name = scoped_name
        self.members = list(members)

    def index_of(self, value: Any) -> int:
        if isinstance(value, str):
            try:
                return self.members.index(value)
            except ValueError:
                raise IdlError(f"{value!r} is not a member of enum "
                               f"{self.scoped_name}") from None
        idx = int(value)
        if not 0 <= idx < len(self.members):
            raise IdlError(f"enum {self.scoped_name} index {idx} out of range")
        return idx

    def typename(self) -> str:
        return f"enum {self.scoped_name}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, EnumType)
                and other.scoped_name == self.scoped_name
                and other.members == self.members)

    def __hash__(self) -> int:
        return hash(("enum", self.scoped_name))


class ObjRefType(IdlType):
    """A reference to a CORBA object of a given interface."""

    __slots__ = ("interface",)

    def __init__(self, interface: str):
        self.interface = interface  # scoped interface name

    def typename(self) -> str:
        return f"interface {self.interface}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjRefType) and \
            other.interface == self.interface

    def __hash__(self) -> int:
        return hash(("objref", self.interface))


class ArrayType(IdlType):
    """Fixed-size IDL array (``typedef long Row[4]``).

    Multidimensional arrays nest: ``long Grid[3][4]`` is
    ``ArrayType(ArrayType(long, 4), 3)`` — outer dimension first."""

    __slots__ = ("element", "length")

    def __init__(self, element: IdlType, length: int):
        if length < 1:
            raise IdlError(f"array length must be >= 1, got {length}")
        self.element = element
        self.length = length

    def typename(self) -> str:
        dims = []
        t: IdlType = self
        while isinstance(t, ArrayType):
            dims.append(t.length)
            t = t.element
        return t.typename() + "".join(f"[{d}]" for d in dims)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ArrayType)
                and other.element == self.element
                and other.length == self.length)

    def __hash__(self) -> int:
        return hash(("array", self.element, self.length))


class UnionValue:
    """A union instance: discriminator ``d`` selects the active member
    held in ``v``."""

    _union_type: "UnionType"

    def __init__(self, d: Any, v: Any):
        # enum discriminators normalise to member indices so equality
        # and case selection are form-independent ("TEXT" == 1)
        switch = self._union_type.switch_type
        if isinstance(switch, EnumType):
            try:
                d = switch.index_of(d)
            except IdlError:
                pass  # invalid values surface via typecheck later
        self.d = d
        self.v = v

    @property
    def member(self) -> str | None:
        """Name of the active member (None when an implicit default)."""
        case = self._union_type.case_for(self.d)
        return case[1] if case is not None else None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionValue) or \
                other._union_type != self._union_type:
            return NotImplemented
        return other.d == self.d and _values_equal(other.v, self.v)

    def __repr__(self) -> str:
        return f"{self._union_type.name}(d={self.d!r}, v={self.v!r})"


class UnionType(IdlType):
    """IDL discriminated union.

    ``cases`` is a list of ``(labels, member_name, member_type)`` where
    ``labels`` is a tuple of discriminator values, or ``None`` for the
    ``default:`` arm."""

    __slots__ = ("name", "scoped_name", "switch_type", "cases",
                 "value_class")

    def __init__(self, name: str, scoped_name: str, switch_type: IdlType,
                 cases: list[tuple[tuple | None, str, IdlType]]):
        seen: set = set()
        defaults = 0
        for labels, _m, _t in cases:
            if labels is None:
                defaults += 1
                continue
            for label in labels:
                if label in seen:
                    raise IdlError(
                        f"union {scoped_name}: duplicate case label "
                        f"{label!r}")
                seen.add(label)
        if defaults > 1:
            raise IdlError(f"union {scoped_name}: multiple default arms")
        self.name = name
        self.scoped_name = scoped_name
        self.switch_type = switch_type
        self.cases = list(cases)
        self.value_class = type(name, (UnionValue,), {"_union_type": self})

    def case_for(self, discriminator: Any
                 ) -> tuple[tuple | None, str, IdlType] | None:
        """The arm selected by ``discriminator`` (explicit or default)."""
        default = None
        for case in self.cases:
            labels = case[0]
            if labels is None:
                default = case
            elif discriminator in labels:
                return case
        return default

    def make(self, d: Any, v: Any = None) -> UnionValue:
        return self.value_class(d, v)

    def typename(self) -> str:
        return f"union {self.scoped_name}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, UnionType)
                and other.scoped_name == self.scoped_name
                and other.switch_type == self.switch_type
                and other.cases == self.cases)

    def __hash__(self) -> int:
        return hash(("union", self.scoped_name))


class NamedTypeRef(IdlType):
    """Unresolved scoped-name reference; eliminated by the compiler."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def typename(self) -> str:
        return f"?{self.name}"


# ---------------------------------------------------------------------------
# value checking
# ---------------------------------------------------------------------------

def typecheck(idl_type: IdlType, value: Any) -> None:
    """Validate that ``value`` conforms to ``idl_type``; raises IdlError."""
    if isinstance(idl_type, VoidType):
        if value is not None:
            raise IdlError(f"void value must be None, got {value!r}")
    elif isinstance(idl_type, PrimitiveType):
        _check_primitive(idl_type, value)
    elif isinstance(idl_type, StringType):
        if not isinstance(value, str):
            raise IdlError(f"string value expected, got {type(value).__name__}")
        if idl_type.bound is not None and len(value) > idl_type.bound:
            raise IdlError(f"string longer than bound {idl_type.bound}")
    elif isinstance(idl_type, SequenceType):
        _check_sequence(idl_type, value)
    elif isinstance(idl_type, ArrayType):
        if not isinstance(value, (PySequence, np.ndarray, bytes,
                                  bytearray)):
            raise IdlError(f"array value expected, got {value!r}")
        if len(value) != idl_type.length:
            raise IdlError(
                f"array of length {idl_type.length} expected, "
                f"got {len(value)} elements")
        if not (isinstance(idl_type.element, PrimitiveType)
                and isinstance(value, np.ndarray)):
            for item in value:
                typecheck(idl_type.element, item)
    elif isinstance(idl_type, ExceptionType):
        if not (isinstance(value, StructValue)
                and value._struct_type == idl_type):
            raise IdlError(f"expected {idl_type.typename()}, got {value!r}")
    elif isinstance(idl_type, StructType):
        if not (isinstance(value, StructValue)
                and value._struct_type == idl_type):
            raise IdlError(f"expected {idl_type.typename()}, got {value!r}")
        for fname, ftype in idl_type.fields:
            typecheck(ftype, getattr(value, fname))
    elif isinstance(idl_type, EnumType):
        idl_type.index_of(value)
    elif isinstance(idl_type, UnionType):
        if not (isinstance(value, UnionValue)
                and value._union_type == idl_type):
            raise IdlError(f"expected {idl_type.typename()}, got {value!r}")
        typecheck(idl_type.switch_type, value.d)
        case = idl_type.case_for(value.d)
        if case is not None:
            typecheck(case[2], value.v)
        elif value.v is not None:
            raise IdlError(
                f"union {idl_type.scoped_name}: discriminator {value.d!r} "
                f"selects no member, so v must be None")
    elif isinstance(idl_type, (ObjRefType, AnyType)):
        pass  # checked structurally at marshal time
    elif isinstance(idl_type, NamedTypeRef):
        raise IdlError(f"unresolved type reference {idl_type.name!r}")
    else:
        raise IdlError(f"cannot typecheck {idl_type!r}")


def _check_primitive(t: PrimitiveType, value: Any) -> None:
    if t.kind in ("float", "double"):
        if not isinstance(value, (int, float, np.floating)):
            raise IdlError(f"{t.kind} expects a number, got {value!r}")
    elif t.kind == "boolean":
        if not isinstance(value, (bool, np.bool_)):
            raise IdlError(f"boolean expects bool, got {value!r}")
    elif t.kind == "char":
        if not (isinstance(value, str) and len(value) == 1):
            raise IdlError(f"char expects 1-char str, got {value!r}")
    else:
        if isinstance(value, bool) or not isinstance(
                value, (int, np.integer)):
            raise IdlError(f"{t.kind} expects an int, got {value!r}")
        lo, hi = t.int_range
        if not lo <= value <= hi:
            raise IdlError(f"{value} out of range for {t.kind}")


def _check_sequence(t: SequenceType, value: Any) -> None:
    elem = t.element
    if isinstance(elem, PrimitiveType) and elem.kind == "octet":
        if not isinstance(value, (bytes, bytearray, memoryview, np.ndarray,
                                  list, tuple)):
            raise IdlError("sequence<octet> expects bytes-like")
        n = len(value)
    elif isinstance(elem, PrimitiveType) and elem.kind not in ("char",):
        if isinstance(value, np.ndarray):
            n = value.size
        elif isinstance(value, PySequence):
            n = len(value)
        else:
            raise IdlError(f"sequence value expected, got {value!r}")
    else:
        # general sequences: python sequences, or numpy arrays whose
        # first axis is the sequence dimension (2D data as rows)
        if not isinstance(value, (PySequence, np.ndarray)):
            raise IdlError(f"sequence value expected, got {value!r}")
        n = len(value)
    if t.bound is not None and n > t.bound:
        raise IdlError(f"sequence longer than bound {t.bound}")
