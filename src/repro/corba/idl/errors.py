"""IDL compiler error types."""

from __future__ import annotations


class IdlError(Exception):
    """Base class for IDL compilation failures."""


class IdlParseError(IdlError):
    """Lexing or parsing failure, annotated with source position."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column
