"""GIOP message framing (General Inter-ORB Protocol, 1.0 subset).

Every GIOP message travels as one VLink message whose payload is
``(header_bytes, body)`` — keeping the 12-byte header physically
separate from the body lets the zero-copy marshalling path hand body
segments straight to the (simulated) NIC without a size-patching copy.
The body may be contiguous ``bytes`` or a :class:`~repro.corba.cdr.
WireBuffer` segment list; both carry an O(1) ``len()``, so framing and
sizing never force a join.
"""

from __future__ import annotations

import struct

from repro.corba.cdr import CdrError, CdrInputStream, CdrOutputStream, \
    WireBuffer

MAGIC = b"GIOP"

# message types (GIOP 1.0)
MSG_REQUEST = 0
MSG_REPLY = 1
MSG_CANCEL_REQUEST = 2
MSG_LOCATE_REQUEST = 3
MSG_LOCATE_REPLY = 4
MSG_CLOSE_CONNECTION = 5
MSG_ERROR = 6

# reply statuses
REPLY_NO_EXCEPTION = 0
REPLY_USER_EXCEPTION = 1
REPLY_SYSTEM_EXCEPTION = 2
REPLY_LOCATION_FORWARD = 3

HEADER_SIZE = 12

#: the general protocol engine pays its full per-invocation cost
OVERHEAD_SCALE = 1.0

#: protocol name advertised in connection setup
NAME = "giop"


def pack_header(msg_type: int, body_size: int,
                little_endian: bool = True,
                version: tuple[int, int] = (1, 0)) -> bytes:
    """The 12-byte GIOP message header."""
    flags = 1 if little_endian else 0
    order = "<" if little_endian else ">"
    return MAGIC + struct.pack(f"{order}BBBBI", version[0], version[1],
                               flags, msg_type, body_size)


def parse_header(header: bytes) -> tuple[int, int, bool, tuple[int, int]]:
    """Returns ``(msg_type, body_size, little_endian, version)``."""
    if len(header) != HEADER_SIZE or header[:4] != MAGIC:
        raise CdrError(f"bad GIOP header: {header!r}")
    major, minor, flags = header[4], header[5], header[6]
    little = bool(flags & 1)
    order = "<" if little else ">"
    msg_type, = struct.unpack(f"{order}B", header[7:8])
    size, = struct.unpack(f"{order}I", header[8:12])
    return msg_type, size, little, (major, minor)


def start_request(out: CdrOutputStream, request_id: int, object_key: str,
                  operation: str, response_expected: bool,
                  principal: str = "") -> None:
    """Write the GIOP Request header into ``out`` (args follow).

    ``principal`` carries the caller identity (GIOP 1.0's requesting
    principal) — the hook the deployment layer's grid-wide
    authentication builds on."""
    out.write_ulong(0)  # empty ServiceContextList
    out.write_ulong(request_id)
    out.write_primitive("boolean", response_expected)
    out.write_string(object_key)
    out.write_string(operation)
    data = principal.encode("utf-8")
    out.write_ulong(len(data))
    if data:
        out.write_bulk(data)


def read_request(inp: CdrInputStream) -> tuple[int, bool, str, str, str]:
    """Returns ``(request_id, response_expected, object_key, operation,
    principal)``."""
    ncontexts = inp.read_ulong()
    if ncontexts != 0:
        raise CdrError("service contexts are not supported")
    request_id = inp.read_ulong()
    response_expected = inp.read_primitive("boolean")
    object_key = inp.read_string()
    operation = inp.read_string()
    principal_len = inp.read_ulong()
    principal = inp.read_bulk_copy(principal_len).decode("utf-8") \
        if principal_len else ""
    return request_id, response_expected, object_key, operation, principal


def start_reply(out: CdrOutputStream, request_id: int, status: int) -> None:
    """Write the GIOP Reply header into ``out`` (results follow)."""
    out.write_ulong(0)  # empty ServiceContextList
    out.write_ulong(request_id)
    out.write_ulong(status)


def read_reply(inp: CdrInputStream) -> tuple[int, int]:
    """Returns ``(request_id, reply_status)``."""
    ncontexts = inp.read_ulong()
    if ncontexts != 0:
        raise CdrError("service contexts are not supported")
    return inp.read_ulong(), inp.read_ulong()


def frame(msg_type: int, body: bytes | WireBuffer,
          little_endian: bool = True) -> tuple[bytes, bytes | WireBuffer]:
    """Build the ``(header, body)`` wire payload for one message.

    ``body`` is forwarded as-is: a :class:`WireBuffer` keeps its
    reference segments all the way to delivery."""
    return pack_header(msg_type, len(body), little_endian), body


def message_size(payload: tuple[bytes, bytes | WireBuffer]) -> int:
    header, body = payload
    return len(header) + len(body)
