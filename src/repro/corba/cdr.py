"""CDR (Common Data Representation) marshalling.

Real byte-level encoding with CORBA alignment rules and both byte
orders.  Two marshalling disciplines coexist, reproducing the paper's
decisive ORB difference (§4.4: "unlike omniORB, Mico and ORBacus always
copy data for marshalling and unmarshalling"):

- **copying** (`zero_copy=False`): every value, including bulk numeric
  sequences, is serialised into the output buffer — one full CPU copy,
  metered in :attr:`CdrOutputStream.copied_bytes` (the ORB profile
  converts that to virtual CPU time);
- **zero-copy** (`zero_copy=True`): bulk contiguous sequences are
  appended as memoryview segments for the NIC to gather directly; only
  scalar headers pass through the copy buffer.

Decoding mirrors this: bulk numeric sequences come back as numpy views
over the message buffer (no copy) — the guide's views-not-copies idiom.

The zero-copy discipline runs end-to-end: :meth:`CdrOutputStream.getbuffer`
returns the message as a :class:`WireBuffer` — an iovec-style segment
list that GIOP framing, VLink/Circuit delivery, and the framed group
transport forward by reference — and :class:`CdrInputStream` reads
directly over those segments, joining only the rare scalar read that
straddles a segment boundary.  Both streams meter the two disciplines
(:attr:`copied_bytes` vs :attr:`referenced_bytes`), feeding the
``wire.copied_bytes.*`` / ``wire.referenced_bytes.*`` obs counters.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.corba.idl.types import (
    PRIMITIVES,
    AnyType,
    ArrayType,
    EnumType,
    ExceptionType,
    IdlType,
    ObjRefType,
    PrimitiveType,
    SequenceType,
    StringType,
    StructType,
    UnionType,
    VoidType,
    typecheck,
)
from repro.corba.ior import IOR

#: sequences at least this large ride the zero-copy path when enabled
ZERO_COPY_THRESHOLD = 256

#: per-byte-order pre-compiled packers: ``struct.pack(fmt, v)`` re-parses
#: the format string on every call, which dominates scalar marshalling;
#: a GIOP header alone is eight primitive writes
_STRUCT_CACHE: dict[str, dict[str, struct.Struct]] = {
    order: {kind: struct.Struct(order + fmt)
            for kind, (fmt, _size, _align, _dtype) in PRIMITIVES.items()}
    for order in ("<", ">")
}

#: kind → interned PrimitiveType, skipping the __new__ round-trip per write
_PRIM_BY_KIND: dict[str, PrimitiveType] = {
    kind: PrimitiveType(kind) for kind in PRIMITIVES
}


class CdrError(Exception):
    """Marshalling failure."""


class WireBuffer:
    """An iovec-style wire message: an ordered list of segments.

    Segments are ``bytes`` (copied scalar headers) interleaved with
    ``memoryview``s that still reference the caller's arrays — the
    Madeleine gather list the paper's zero-copy argument rests on
    (§4–§5).  ``len()`` / :attr:`nbytes` are O(1), so GIOP header
    packing and flow sizing never force a join; :meth:`getvalue` joins
    lazily (and caches) for consumers that genuinely need contiguous
    bytes, e.g. tests or debugging dumps.

    Because bulk segments alias live caller memory, a ``WireBuffer``
    is only valid while the sender blocks on the matching delivery —
    exactly the two-way CORBA request/reply and MPI rendezvous
    disciplines that produce them.
    """

    __slots__ = ("_segments", "_nbytes", "_value")

    def __init__(self, segments: list[bytes | memoryview],
                 nbytes: int | None = None):
        self._segments = segments
        if nbytes is None:
            nbytes = sum(s.nbytes if isinstance(s, memoryview) else len(s)
                         for s in segments)
        self._nbytes = nbytes
        self._value: bytes | None = None

    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def segments(self) -> tuple[bytes | memoryview, ...]:
        return tuple(self._segments)

    def __len__(self) -> int:
        return self._nbytes

    def getvalue(self) -> bytes:
        """Join the segments into contiguous bytes (cached)."""
        if self._value is None:
            self._value = b"".join(
                bytes(s) if isinstance(s, memoryview) else s
                for s in self._segments)
        return self._value

    def __bytes__(self) -> bytes:
        return self.getvalue()

    def __repr__(self) -> str:
        return (f"WireBuffer(nbytes={self._nbytes}, "
                f"segments={len(self._segments)})")


class CdrOutputStream:
    """An aligned CDR output stream with optional zero-copy segments."""

    def __init__(self, little_endian: bool = True, zero_copy: bool = False,
                 threshold: int = ZERO_COPY_THRESHOLD):
        self.little_endian = little_endian
        self.zero_copy = zero_copy
        #: eager/rendezvous cutover: bulk values below it are copied
        #: into the contiguous buffer (eager), values at or above it
        #: become reference segments (rendezvous) when zero_copy is on
        self.threshold = threshold
        self._order = "<" if little_endian else ">"
        self._structs = _STRUCT_CACHE[self._order]
        self._ulong = self._structs["unsigned long"]
        self._chunks: list[bytes | memoryview] = []
        self._buf = bytearray()
        self._length = 0          # total stream length so far
        self._value: bytes | None = None  # getvalue() join cache
        self.copied_bytes = 0     # bytes that passed through a CPU copy
        self.referenced_bytes = 0  # bulk bytes appended by reference

    # -- low-level --------------------------------------------------------
    def align(self, n: int) -> None:
        pad = (-self._length) % n
        if pad:
            self._buf.extend(b"\x00" * pad)
            self._length += pad
            self._value = None

    def _append_copied(self, data: bytes) -> None:
        self._buf.extend(data)
        self._length += len(data)
        self.copied_bytes += len(data)
        self._value = None

    def _append_segment(self, view: memoryview) -> None:
        """Hand a buffer to the stream without copying (gather DMA)."""
        if self._buf:
            self._chunks.append(bytes(self._buf))
            self._buf = bytearray()
        self._chunks.append(view)
        self._length += view.nbytes
        self.referenced_bytes += view.nbytes
        self._value = None

    def write_primitive(self, kind: str, value: Any) -> None:
        prim = _PRIM_BY_KIND.get(kind)
        if prim is None:
            prim = PrimitiveType(kind)  # raises IdlError for unknown kinds
        self.align(prim.align)
        if kind == "char":
            data = value.encode("latin-1")
            if len(data) != 1:
                raise CdrError(f"char must encode to 1 byte: {value!r}")
        elif kind == "boolean":
            data = b"\x01" if value else b"\x00"
        else:
            try:
                data = self._structs[kind].pack(value)
            except struct.error as exc:
                raise CdrError(f"cannot pack {value!r} as {kind}") from exc
        self._append_copied(data)

    def write_ulong(self, value: int) -> None:
        # dedicated fast path: every length prefix, enum, and GIOP header
        # field funnels through here
        self.align(4)
        try:
            data = self._ulong.pack(value)
        except struct.error as exc:
            raise CdrError(
                f"cannot pack {value!r} as unsigned long") from exc
        self._append_copied(data)

    def write_octet(self, value: int) -> None:
        self.write_primitive("octet", value)

    def write_string(self, value: str) -> None:
        data = value.encode("utf-8")
        self.write_ulong(len(data) + 1)
        self._append_copied(data + b"\x00")

    def write_bulk(self, data: bytes | bytearray | memoryview | np.ndarray,
                   align: int = 1) -> None:
        """Write a bulk byte region, zero-copy when enabled and large."""
        if isinstance(data, np.ndarray):
            arr = np.ascontiguousarray(data)
            view = memoryview(arr).cast("B")
        else:
            view = memoryview(data).cast("B")
        self.align(align)
        if self.zero_copy and view.nbytes >= self.threshold:
            self._append_segment(view)
        else:
            # eager protocol: one copy straight into the contiguous
            # buffer — bytearray consumes the view without an
            # intermediate bytes materialisation
            self._buf += view
            self._length += view.nbytes
            self.copied_bytes += view.nbytes
            self._value = None

    # -- results ------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def getvalue(self) -> bytes:
        """Final message bytes (the join stands in for NIC gather DMA).

        The join is cached: GIOP asks for the message more than once
        (size patching, then send), and re-joining an unchanged stream
        each time is pure waste.  Any append invalidates the cache.
        """
        if self._value is not None:
            return self._value
        if self._buf:
            self._chunks.append(bytes(self._buf))
            self._buf = bytearray()
        if len(self._chunks) == 1:
            out = bytes(self._chunks[0])
        else:
            out = b"".join(bytes(c) if isinstance(c, memoryview) else c
                           for c in self._chunks)
        self._chunks = [out]
        self._value = out
        return out

    def getbuffer(self) -> WireBuffer:
        """The message as a :class:`WireBuffer` — no join, no copy.

        This is what the wire path sends: copied scalar chunks plus
        bulk reference segments, handed down to the NIC gather list
        as-is.  The join cache is deliberately untouched; a later
        :meth:`getvalue` still works.
        """
        if self._buf:
            self._chunks.append(bytes(self._buf))
            self._buf = bytearray()
        return WireBuffer(list(self._chunks), self._length)


class CdrInputStream:
    """An aligned CDR input stream over one message buffer.

    The message may be contiguous (``bytes``/``bytearray``/
    ``memoryview``) or a :class:`WireBuffer` straight off the wire.
    Reads stay within the current segment whenever possible and return
    views; only a read that straddles a segment boundary joins — those
    joined bytes are metered in :attr:`copied_bytes`, bulk views in
    :attr:`referenced_bytes`.
    """

    def __init__(self,
                 data: bytes | bytearray | memoryview | WireBuffer,
                 little_endian: bool = True):
        if isinstance(data, WireBuffer):
            segments = [s if isinstance(s, memoryview) else memoryview(s)
                        for s in data.segments]
            if not segments:
                segments = [memoryview(b"")]
            size = data.nbytes
        else:
            segments = [memoryview(data)]
            size = len(segments[0])
        self._segments = segments
        self._seg = segments[0]        # current segment
        self._seg_start = 0            # stream offset of current segment
        self._next = 1                 # index of the next segment
        self._size = size
        self.little_endian = little_endian
        self._order = "<" if little_endian else ">"
        self._structs = _STRUCT_CACHE[self._order]
        self._ulong = self._structs["unsigned long"]
        self._pos = 0
        self.copied_bytes = 0      # bytes materialised (joins + bulk copies)
        self.referenced_bytes = 0  # bulk bytes returned as views

    @property
    def remaining(self) -> int:
        return self._size - self._pos

    def align(self, n: int) -> None:
        self._pos += (-self._pos) % n

    def _take(self, n: int) -> memoryview:
        off = self._pos - self._seg_start
        end = off + n
        if end <= len(self._seg):
            self._pos += n
            return self._seg[off:end]
        return self._take_slow(n)

    def _take_slow(self, n: int) -> memoryview:
        if self._pos + n > self._size:
            raise CdrError(f"truncated CDR stream: need {n} bytes, have "
                           f"{self.remaining}")
        # hop over exhausted segments
        while (self._pos - self._seg_start >= len(self._seg)
               and self._next < len(self._segments)):
            self._seg_start += len(self._seg)
            self._seg = self._segments[self._next]
            self._next += 1
        off = self._pos - self._seg_start
        if off + n <= len(self._seg):
            self._pos += n
            return self._seg[off:off + n]
        # the read straddles a segment boundary: join just this range
        parts = []
        need = n
        while need:
            off = self._pos - self._seg_start
            avail = len(self._seg) - off
            if avail == 0:
                self._seg_start += len(self._seg)
                self._seg = self._segments[self._next]
                self._next += 1
                continue
            take = avail if avail < need else need
            parts.append(self._seg[off:off + take])
            self._pos += take
            need -= take
        self.copied_bytes += n
        return memoryview(b"".join(parts))

    def read_primitive(self, kind: str) -> Any:
        prim = _PRIM_BY_KIND.get(kind)
        if prim is None:
            prim = PrimitiveType(kind)  # raises IdlError for unknown kinds
        self.align(prim.align)
        raw = self._take(prim.size)
        if kind == "char":
            return bytes(raw).decode("latin-1")
        if kind == "boolean":
            return bool(raw[0])
        return self._structs[kind].unpack(raw)[0]

    def read_ulong(self) -> int:
        # mirror of write_ulong: the unmarshalling hot path
        self.align(4)
        return self._ulong.unpack(self._take(4))[0]

    def read_octet(self) -> int:
        return self.read_primitive("octet")

    def read_string(self) -> str:
        n = self.read_ulong()
        raw = self._take(n)
        return bytes(raw[:-1]).decode("utf-8")

    def read_bulk(self, nbytes: int, align: int = 1) -> memoryview:
        """A zero-copy view over ``nbytes`` of the message buffer."""
        self.align(align)
        before = self.copied_bytes
        out = self._take(nbytes)
        if self.copied_bytes == before:
            self.referenced_bytes += nbytes
        return out

    def read_bulk_copy(self, nbytes: int, align: int = 1) -> bytes:
        """A bulk read deliberately materialised as ``bytes``.

        For consumers that need an owning, hashable buffer (octet
        sequences exposed to user code, GIOP principals).  The
        materialisation is one metered copy.
        """
        self.align(align)
        before = self.copied_bytes
        out = self._take(nbytes)
        if self.copied_bytes == before:
            self.copied_bytes += nbytes
        return bytes(out)


# ---------------------------------------------------------------------------
# typed encode/decode
# ---------------------------------------------------------------------------

_NUMERIC_KINDS = frozenset(k for k in
                           ("short", "unsigned short", "long",
                            "unsigned long", "long long",
                            "unsigned long long", "float", "double"))


def encode_value(out: CdrOutputStream, idl_type: IdlType, value: Any) -> None:
    """Marshal ``value`` as ``idl_type`` (typechecked)."""
    typecheck(idl_type, value)
    _encode(out, idl_type, value)


def _encode(out: CdrOutputStream, t: IdlType, value: Any) -> None:
    if isinstance(t, VoidType):
        return
    if isinstance(t, PrimitiveType):
        out.write_primitive(t.kind, value)
    elif isinstance(t, StringType):
        out.write_string(value)
    elif isinstance(t, SequenceType):
        _encode_sequence(out, t, value)
    elif isinstance(t, ArrayType):
        _encode_array(out, t, value)
    elif isinstance(t, ExceptionType):
        out.write_string(t.repo_id)
        for fname, ftype in t.fields:
            _encode(out, ftype, getattr(value, fname))
    elif isinstance(t, StructType):
        for fname, ftype in t.fields:
            _encode(out, ftype, getattr(value, fname))
    elif isinstance(t, EnumType):
        out.write_ulong(t.index_of(value))
    elif isinstance(t, UnionType):
        _encode(out, t.switch_type, value.d)
        case = t.case_for(value.d)
        if case is not None:
            _encode(out, case[2], value.v)
    elif isinstance(t, ObjRefType):
        _encode_objref(out, value)
    elif isinstance(t, AnyType):
        inner_type, inner_value = value
        typecheck(inner_type, inner_value)
        write_typecode(out, inner_type)
        _encode(out, inner_type, inner_value)
    else:
        raise CdrError(f"cannot encode type {t!r}")


def _encode_sequence(out: CdrOutputStream, t: SequenceType,
                     value: Any) -> None:
    elem = t.element
    if isinstance(elem, PrimitiveType) and elem.kind == "octet":
        if isinstance(value, np.ndarray):
            view = memoryview(np.ascontiguousarray(value)).cast("B")
        elif isinstance(value, (list, tuple)):
            view = memoryview(bytes(value))
        else:
            view = memoryview(value)
        out.write_ulong(view.nbytes)
        out.write_bulk(view)
        return
    if isinstance(elem, PrimitiveType) and elem.kind in _NUMERIC_KINDS:
        order = "<" if out.little_endian else ">"
        arr = np.asarray(value, dtype=order + elem.dtype)
        out.write_ulong(arr.size)
        out.write_bulk(arr, align=elem.align)
        return
    out.write_ulong(len(value))
    for item in value:
        _encode(out, elem, item)


def _encode_array(out: CdrOutputStream, t: ArrayType, value: Any) -> None:
    """Fixed-size arrays: no length prefix on the wire."""
    elem = t.element
    if isinstance(elem, PrimitiveType) and elem.kind == "octet":
        view = memoryview(bytes(value) if isinstance(value, (list, tuple))
                          else value)
        out.write_bulk(view.cast("B"))
        return
    if isinstance(elem, PrimitiveType) and elem.kind in _NUMERIC_KINDS:
        order = "<" if out.little_endian else ">"
        arr = np.asarray(value, dtype=order + elem.dtype)
        out.write_bulk(arr, align=elem.align)
        return
    for item in value:
        _encode(out, elem, item)


def _decode_array(inp: CdrInputStream, t: ArrayType) -> Any:
    elem = t.element
    if isinstance(elem, PrimitiveType) and elem.kind == "octet":
        return inp.read_bulk_copy(t.length)
    if isinstance(elem, PrimitiveType) and elem.kind in _NUMERIC_KINDS:
        order = "<" if inp.little_endian else ">"
        raw = inp.read_bulk(t.length * elem.size, align=elem.align)
        return np.frombuffer(raw, dtype=order + elem.dtype, count=t.length)
    return [decode_value(inp, elem) for _ in range(t.length)]


def _encode_objref(out: CdrOutputStream, value: Any) -> None:
    ior = getattr(value, "ior", value)  # accept ObjectRef or bare IOR
    if ior is None:
        out.write_string("")  # nil reference
        return
    if not isinstance(ior, IOR):
        raise CdrError(f"cannot encode {value!r} as an object reference")
    out.write_string(ior.stringify())


def decode_value(inp: CdrInputStream, idl_type: IdlType) -> Any:
    """Unmarshal a value of ``idl_type``."""
    t = idl_type
    if isinstance(t, VoidType):
        return None
    if isinstance(t, PrimitiveType):
        return inp.read_primitive(t.kind)
    if isinstance(t, StringType):
        return inp.read_string()
    if isinstance(t, SequenceType):
        return _decode_sequence(inp, t)
    if isinstance(t, ArrayType):
        return _decode_array(inp, t)
    if isinstance(t, ExceptionType):
        rid = inp.read_string()
        if rid != t.repo_id:
            raise CdrError(f"exception id mismatch: {rid!r} != {t.repo_id!r}")
        fields = {fname: decode_value(inp, ftype)
                  for fname, ftype in t.fields}
        return t.make(**fields)
    if isinstance(t, StructType):
        fields = {fname: decode_value(inp, ftype)
                  for fname, ftype in t.fields}
        return t.make(**fields)
    if isinstance(t, EnumType):
        return t.index_of(inp.read_ulong())
    if isinstance(t, UnionType):
        d = decode_value(inp, t.switch_type)
        case = t.case_for(d)
        v = decode_value(inp, case[2]) if case is not None else None
        return t.make(d, v)
    if isinstance(t, ObjRefType):
        text = inp.read_string()
        return None if not text else IOR.destringify(text)
    if isinstance(t, AnyType):
        inner_type = read_typecode(inp)
        return (inner_type, decode_value(inp, inner_type))
    raise CdrError(f"cannot decode type {t!r}")


def _decode_sequence(inp: CdrInputStream, t: SequenceType) -> Any:
    elem = t.element
    n = inp.read_ulong()
    if t.bound is not None and n > t.bound:
        raise CdrError(f"sequence length {n} exceeds bound {t.bound}")
    if isinstance(elem, PrimitiveType) and elem.kind == "octet":
        return inp.read_bulk_copy(n)
    if isinstance(elem, PrimitiveType) and elem.kind in _NUMERIC_KINDS:
        order = "<" if inp.little_endian else ">"
        raw = inp.read_bulk(n * elem.size, align=elem.align)
        # zero-copy view over the message buffer (read-only)
        return np.frombuffer(raw, dtype=order + elem.dtype, count=n)
    return [decode_value(inp, elem) for _ in range(n)]


# ---------------------------------------------------------------------------
# TypeCodes (for `any`)
# ---------------------------------------------------------------------------

_TC_PRIMS = {
    "short": 2, "long": 3, "unsigned short": 4, "unsigned long": 5,
    "float": 6, "double": 7, "boolean": 8, "char": 9, "octet": 10,
    "long long": 23, "unsigned long long": 24,
}
_TC_PRIMS_REV = {v: k for k, v in _TC_PRIMS.items()}
_TC_ANY, _TC_OBJREF, _TC_STRUCT, _TC_UNION, _TC_ENUM, _TC_STRING, \
    _TC_SEQUENCE, _TC_EXCEPT, _TC_VOID = 11, 14, 15, 16, 17, 18, 19, 22, 1
_TC_ARRAY = 20


def write_typecode(out: CdrOutputStream, t: IdlType) -> None:
    """Encode a TypeCode (the type half of an ``any``)."""
    if isinstance(t, VoidType):
        out.write_ulong(_TC_VOID)
    elif isinstance(t, PrimitiveType):
        out.write_ulong(_TC_PRIMS[t.kind])
    elif isinstance(t, StringType):
        out.write_ulong(_TC_STRING)
        out.write_ulong(t.bound or 0)
    elif isinstance(t, SequenceType):
        out.write_ulong(_TC_SEQUENCE)
        out.write_ulong(t.bound or 0)
        write_typecode(out, t.element)
    elif isinstance(t, ArrayType):
        out.write_ulong(_TC_ARRAY)
        out.write_ulong(t.length)
        write_typecode(out, t.element)
    elif isinstance(t, ExceptionType):
        out.write_ulong(_TC_EXCEPT)
        _write_tc_struct_body(out, t)
    elif isinstance(t, StructType):
        out.write_ulong(_TC_STRUCT)
        _write_tc_struct_body(out, t)
    elif isinstance(t, UnionType):
        out.write_ulong(_TC_UNION)
        out.write_string(t.scoped_name)
        write_typecode(out, t.switch_type)
        out.write_ulong(len(t.cases))
        for labels, member, mtype in t.cases:
            out.write_primitive("boolean", labels is None)
            if labels is not None:
                out.write_ulong(len(labels))
                for label in labels:
                    _encode(out, t.switch_type, label)
            out.write_string(member)
            write_typecode(out, mtype)
    elif isinstance(t, EnumType):
        out.write_ulong(_TC_ENUM)
        out.write_string(t.scoped_name)
        out.write_ulong(len(t.members))
        for m in t.members:
            out.write_string(m)
    elif isinstance(t, ObjRefType):
        out.write_ulong(_TC_OBJREF)
        out.write_string(t.interface)
    elif isinstance(t, AnyType):
        out.write_ulong(_TC_ANY)
    else:
        raise CdrError(f"no TypeCode for {t!r}")


def _write_tc_struct_body(out: CdrOutputStream, t: StructType) -> None:
    out.write_string(t.scoped_name)
    out.write_ulong(len(t.fields))
    for fname, ftype in t.fields:
        out.write_string(fname)
        write_typecode(out, ftype)


def read_typecode(inp: CdrInputStream) -> IdlType:
    """Decode a TypeCode back into an :class:`IdlType`."""
    from repro.corba.idl.types import ANY, VOID  # avoid import cycle noise

    kind = inp.read_ulong()
    if kind == _TC_VOID:
        return VOID
    if kind in _TC_PRIMS_REV:
        return PrimitiveType(_TC_PRIMS_REV[kind])
    if kind == _TC_STRING:
        bound = inp.read_ulong()
        return StringType(bound or None)
    if kind == _TC_SEQUENCE:
        bound = inp.read_ulong()
        return SequenceType(read_typecode(inp), bound or None)
    if kind == _TC_ARRAY:
        length = inp.read_ulong()
        return ArrayType(read_typecode(inp), length)
    if kind in (_TC_STRUCT, _TC_EXCEPT):
        scoped = inp.read_string()
        nfields = inp.read_ulong()
        fields = [(inp.read_string(), read_typecode(inp))
                  for _ in range(nfields)]
        name = scoped.rsplit("::", 1)[-1]
        if kind == _TC_EXCEPT:
            from repro.corba.idl.compiler import repo_id
            return ExceptionType(name, scoped, fields, repo_id(scoped))
        return StructType(name, scoped, fields)
    if kind == _TC_UNION:
        scoped = inp.read_string()
        switch = read_typecode(inp)
        cases = []
        for _ in range(inp.read_ulong()):
            is_default = inp.read_primitive("boolean")
            labels = None
            if not is_default:
                labels = tuple(decode_value(inp, switch)
                               for _ in range(inp.read_ulong()))
            member = inp.read_string()
            cases.append((labels, member, read_typecode(inp)))
        return UnionType(scoped.rsplit("::", 1)[-1], scoped, switch, cases)
    if kind == _TC_ENUM:
        scoped = inp.read_string()
        members = [inp.read_string() for _ in range(inp.read_ulong())]
        return EnumType(scoped.rsplit("::", 1)[-1], scoped, members)
    if kind == _TC_OBJREF:
        return ObjRefType(inp.read_string())
    if kind == _TC_ANY:
        return ANY
    raise CdrError(f"unknown TypeCode kind {kind}")
