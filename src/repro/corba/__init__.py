"""CORBA substrate: IDL compiler, CDR, GIOP, ORB, Naming.

The paper runs four C++ ORBs unchanged over PadicoTM (omniORB 3/4,
Mico 2.3, ORBacus 4.0).  We implement one ORB core — an IDL compiler
producing Python stubs/skeletons, byte-level CDR marshalling, GIOP 1.0
framing, a POA and object references — and reproduce the four products
as :class:`~repro.corba.profiles.OrbProfile` cost models: the decisive
difference (paper §4.4) is that omniORB marshals **zero-copy** while
Mico and ORBacus **always copy** on marshal and unmarshal, which is why
they peak at 55/63 MB/s on a 240 MB/s wire.

Layering: stubs → GIOP → VLink (PadicoTM picks the wire) → simulated
network.
"""

from repro.corba.cdr import CdrError, CdrInputStream, CdrOutputStream
from repro.corba.idl import (
    IdlError,
    IdlParseError,
    compile_idl,
    parse_idl,
)
from repro.corba.orb import (
    CorbaError,
    ObjectRef,
    Orb,
    OrbModule,
    SystemException,
    UserException,
)
from repro.corba.naming import NamingContext, NamingService
from repro.corba.profiles import (
    MICO,
    OMNIORB3,
    OMNIORB4,
    ORBACUS,
    OrbProfile,
)

__all__ = [
    "compile_idl",
    "parse_idl",
    "IdlError",
    "IdlParseError",
    "CdrOutputStream",
    "CdrInputStream",
    "CdrError",
    "Orb",
    "OrbModule",
    "ObjectRef",
    "CorbaError",
    "SystemException",
    "UserException",
    "OrbProfile",
    "OMNIORB3",
    "OMNIORB4",
    "MICO",
    "ORBACUS",
    "NamingService",
    "NamingContext",
]
