"""Deterministic cooperative simulation kernel.

Simulated processes are backed by real Python threads, but the kernel
enforces *one-at-a-time* execution: a process runs until it performs a
timed or blocking primitive (``sleep``, ``suspend``, a :class:`Mailbox`
get, ...), at which point control returns to the kernel, which pops the
next event off a ``(time, seq)``-ordered heap.  Because the event order
is a total order and only one thread ever runs, simulations are exactly
reproducible — a property the test-suite checks.

The design follows the classic "threads as coroutines" pattern: each
process owns a semaphore (``_go``); the kernel owns one (``_control``).
Resuming a process is ``proc._go.release(); kernel._control.acquire()``;
yielding is the mirror image.  No other locking is needed because the
run token serialises every access to kernel data structures.

Two opt-in hooks support the dynamic sanitizer (:mod:`repro.sanitizer`);
both are free when unused:

- :attr:`SimKernel.tracer` — when set, the kernel reports scheduling
  events to it (``on_schedule``/``on_fire``/``on_switch``/``on_exit``),
  which is enough for a happens-before race detector to maintain
  per-process vector clocks.  Every call site is guarded by an
  ``is not None`` test, so the disabled cost is one attribute load.
- ``SimKernel(seed=...)`` — deterministically permutes the pop order of
  same-instant events (schedule exploration).  With ``seed=None`` (the
  default) the event order is exactly the historical ``(time, seq)``
  order, bit for bit.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Callable, Iterable


class SimShutdown(BaseException):
    """Raised inside a simulated process when the kernel shuts down.

    Derives from ``BaseException`` so that ordinary ``except Exception``
    blocks in user code do not swallow it.
    """


class SimInterrupt(Exception):
    """Raised inside a simulated process interrupted by another process
    (failure injection, cancellation)."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimDeadlockError(RuntimeError):
    """All processes are blocked and no event can ever wake them."""


class SimProcessError(RuntimeError):
    """A non-daemon simulated process died with an exception."""

    def __init__(self, process: "SimProcess", exc: BaseException):
        super().__init__(f"process {process.name!r} failed: {exc!r}")
        self.process = process
        self.exc = exc


def _mix(seed: int, seq: int) -> int:
    """Deterministic 32-bit scramble of ``seq`` under ``seed``.

    Used to permute the pop order of same-instant events during seeded
    schedule exploration; plain integer arithmetic, so the permutation
    is identical on every run and every platform.
    """
    x = (seq * 0x9E3779B9 + (seed + 1) * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class Timer:
    """Handle for a scheduled event; supports :meth:`cancel`.

    ``shuffle`` is 0 in normal runs; under a seeded kernel it carries
    the schedule-exploration permutation key.  ``trace_clock`` is only
    assigned when a tracer is installed (it carries the scheduler's
    vector clock to the instant the event fires).
    """

    __slots__ = ("time", "seq", "shuffle", "_fn", "_args", "cancelled",
                 "trace_clock", "_key")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple,
                 shuffle: int = 0):
        self.time = time
        self.seq = seq
        self.shuffle = shuffle
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.trace_clock = None
        # the heap compares each entry O(log n) times per push/pop;
        # building the sort key once beats two tuple allocations per
        # comparison on the hot path
        self._key = (time, shuffle, seq)

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return self._key < other._key


class _TracerFan:
    """Fans kernel tracer hooks out to several attached tracers.

    Created by :meth:`SimKernel.attach_tracer` when a second tracer is
    attached (e.g. the sanitizer's race detector plus an observability
    recorder).  Hooks dispatch in attach order — deterministic — and a
    member may implement any subset of the hook surface.
    """

    __slots__ = ("members",)

    def __init__(self, members: list):
        self.members = members

    def _fan(self, name: str, *args: Any) -> None:
        for member in self.members:
            fn = getattr(member, name, None)
            if fn is not None:
                fn(*args)

    def on_schedule(self, timer: "Timer") -> None:
        self._fan("on_schedule", timer)

    def on_fire(self, timer: "Timer") -> None:
        self._fan("on_fire", timer)

    def on_switch(self, proc: "SimProcess") -> None:
        self._fan("on_switch", proc)

    def on_exit(self, proc: "SimProcess") -> None:
        self._fan("on_exit", proc)

    def on_join(self, proc: "SimProcess", target: "SimProcess") -> None:
        self._fan("on_join", proc, target)

    # happens-before edges reported by the sync primitives
    def hb_release(self, obj: Any) -> None:
        self._fan("hb_release", obj)

    def hb_acquire(self, obj: Any) -> None:
        self._fan("hb_acquire", obj)


class SimProcess:
    """A simulated process: a thread run cooperatively by the kernel.

    Created via :meth:`SimKernel.spawn`.  The target function receives
    the process object as its first argument, giving access to
    :meth:`sleep`, :meth:`suspend` and the kernel.
    """

    _STATE_NEW = "new"
    _STATE_READY = "ready"
    _STATE_RUNNING = "running"
    _STATE_BLOCKED = "blocked"
    _STATE_DONE = "done"
    _STATE_FAILED = "failed"

    def __init__(self, kernel: "SimKernel", fn: Callable, args: tuple,
                 name: str, daemon: bool):
        self.kernel = kernel
        self.name = name
        self.daemon = daemon
        self.result: Any = None
        self.exc: BaseException | None = None
        self._fn = fn
        self._args = args
        self._go = threading.Semaphore(0)
        self._state = self._STATE_NEW
        self._wake_value: Any = None
        self._pending_exc: BaseException | None = None
        self._wake_token = 0  # invalidates stale scheduled wake-ups
        self._joiners: list[SimProcess] = []
        #: what this process is blocked on (a sync primitive or a
        #: SimProcess being joined); drives the deadlock wait-for graph
        self._waiting_on: Any = None
        self._thread = threading.Thread(
            target=self._run, name=f"sim:{name}", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _run(self) -> None:
        self._go.acquire()  # wait for first dispatch from kernel
        try:
            if self._pending_exc is not None:  # shut down before first run
                exc = self._pending_exc
                self._pending_exc = None
                raise exc
            self.result = self._fn(self, *self._args)
            self._state = self._STATE_DONE
        except SimShutdown:
            self._state = self._STATE_DONE
        except BaseException as exc:  # noqa: BLE001 - report to kernel
            self.exc = exc
            self._state = self._STATE_FAILED
        finally:
            self.kernel._on_process_exit(self)
            self.kernel._control.release()

    @property
    def alive(self) -> bool:
        """True while the process has neither returned nor failed."""
        return self._state not in (self._STATE_DONE, self._STATE_FAILED)

    @property
    def state(self) -> str:
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name} {self._state} t={self.kernel.now:.6f}>"

    # ------------------------------------------------------------------
    # primitives usable from inside the process
    # ------------------------------------------------------------------
    def sleep(self, duration: float) -> None:
        """Advance this process's virtual time by ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"negative sleep duration {duration}")
        self.kernel._check_current(self)
        token = self._arm()
        self.kernel._schedule(duration, self.kernel._wake, self, token)
        self._yield()

    def suspend(self) -> Any:
        """Block until another actor calls :meth:`SimKernel.wake` on us.

        Returns the value passed to ``wake``.
        """
        self.kernel._check_current(self)
        self._arm()
        return self._yield()

    def yield_(self) -> None:
        """Let every other ready process at the current instant run."""
        self.kernel._check_current(self)
        self.sleep(0.0)

    def join(self, target: "SimProcess") -> Any:
        """Block until ``target`` finishes; returns its result."""
        self.kernel._check_current(self)
        if target.alive:
            target._joiners.append(self)
            self._waiting_on = target
            try:
                self.suspend()
            finally:
                self._waiting_on = None
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.on_join(self, target)
        if target.exc is not None:
            raise SimProcessError(target, target.exc)
        return target.result

    # ------------------------------------------------------------------
    # control transfer internals
    # ------------------------------------------------------------------
    def _arm(self) -> int:
        """Invalidate stale wake-ups and return a fresh token."""
        self._wake_token += 1
        return self._wake_token

    def _yield(self) -> Any:
        """Give the run token back to the kernel and wait to be resumed."""
        self._state = self._STATE_BLOCKED
        self.kernel._control.release()
        self._go.acquire()
        self._state = self._STATE_RUNNING
        if self._pending_exc is not None:
            exc = self._pending_exc
            self._pending_exc = None
            raise exc
        return self._wake_value

    def interrupt(self, cause: Any = None) -> None:
        """Inject a :class:`SimInterrupt` into this process.

        May be called from another simulated process or from kernel
        callbacks.  Takes effect at the interrupted process's current
        blocking point (its pending sleep/suspend is abandoned).
        """
        if not self.alive:
            return
        exc = cause if isinstance(cause, BaseException) else SimInterrupt(cause)
        token = self._arm()  # invalidate whatever wake it was waiting for
        self.kernel._schedule(0.0, self.kernel._wake, self, token, None, exc)


class SimKernel:
    """Event loop + virtual clock for a deterministic simulation.

    Use as a context manager in tests so that processes still blocked at
    the end of a run are cleanly shut down::

        with SimKernel() as k:
            k.spawn(lambda p: p.sleep(1.0), name="idler")
            k.run()
    """

    def __init__(self, seed: int | None = None) -> None:
        self.now: float = 0.0
        self._heap: list[Timer] = []
        self._seq = 0
        self._control = threading.Semaphore(0)
        self._processes: list[SimProcess] = []
        self._current: SimProcess | None = None
        self._running = False
        self._shutdown = False
        #: schedule-exploration seed; None keeps the canonical order
        self.seed = seed
        #: sanitizer hook (duck-typed; see repro.sanitizer.races)
        self.tracer: Any = None
        #: events popped and fired by :meth:`run` (cancelled ones excluded)
        self.events_processed = 0
        #: cancelled entries discarded by :meth:`run` without firing
        #: (lazy timer cancellation leaves them in the heap until popped)
        self.events_skipped = 0

    # ------------------------------------------------------------------
    # spawning and scheduling
    # ------------------------------------------------------------------
    def spawn(self, fn: Callable, *args: Any, name: str | None = None,
              daemon: bool = False, delay: float = 0.0) -> SimProcess:
        """Create a simulated process that starts at ``now + delay``.

        ``fn`` is called as ``fn(process, *args)``.  If a non-daemon
        process raises, :meth:`run` re-raises it as
        :class:`SimProcessError`; daemon process failures are recorded on
        ``process.exc`` but do not abort the simulation.
        """
        if name is None:
            name = f"proc-{len(self._processes)}"
        proc = SimProcess(self, fn, args, name, daemon)
        self._processes.append(proc)
        proc._state = SimProcess._STATE_READY
        token = proc._arm()
        self._schedule(delay, self._wake, proc, token)
        return proc

    # ------------------------------------------------------------------
    # tracer attachment
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Any) -> None:
        """Install a scheduling tracer, composing with any already there.

        With one tracer attached, :attr:`tracer` is that object (the
        historical contract); with several it becomes a :class:`_TracerFan`
        dispatching in attach order.  Pairs with :meth:`detach_tracer`.
        """
        current = self.tracer
        if current is None:
            self.tracer = tracer
        elif isinstance(current, _TracerFan):
            current.members.append(tracer)
        else:
            self.tracer = _TracerFan([current, tracer])

    def detach_tracer(self, tracer: Any) -> None:
        """Remove a tracer attached with :meth:`attach_tracer`.

        Idempotent: detaching a tracer that is not attached is a no-op,
        so uninstall paths need no bookkeeping of their own.
        """
        current = self.tracer
        if current is tracer:
            self.tracer = None
        elif isinstance(current, _TracerFan):
            if tracer in current.members:
                current.members.remove(tracer)
            if len(current.members) == 1:
                self.tracer = current.members[0]

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Run ``fn(*args)`` in kernel context after ``delay`` seconds.

        The callback must not block; it may spawn processes, wake them,
        or schedule further callbacks.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._schedule(delay, fn, *args)

    def _schedule(self, delay: float, fn: Callable, *args: Any) -> Timer:
        self._seq += 1
        shuffle = 0 if self.seed is None else _mix(self.seed, self._seq)
        timer = Timer(self.now + delay, self._seq, fn, args, shuffle)
        if self.tracer is not None:
            self.tracer.on_schedule(timer)
        heapq.heappush(self._heap, timer)
        return timer

    # ------------------------------------------------------------------
    # waking processes
    # ------------------------------------------------------------------
    def wake(self, proc: SimProcess, value: Any = None) -> None:
        """Schedule ``proc`` (blocked in :meth:`SimProcess.suspend`) to
        resume at the current instant with ``value``."""
        token = proc._wake_token
        self._schedule(0.0, self._wake, proc, token, value)

    def _wake(self, proc: SimProcess, token: int, value: Any = None,
              exc: BaseException | None = None) -> None:
        if not proc.alive or token != proc._wake_token:
            return  # stale wake-up (process was interrupted or finished)
        if exc is not None:
            proc._pending_exc = exc
        proc._wake_value = value
        self._dispatch(proc)

    def _dispatch(self, proc: SimProcess) -> None:
        """Hand the run token to ``proc`` and wait for it to yield."""
        if self.tracer is not None:
            self.tracer.on_switch(proc)
        prev = self._current
        self._current = proc
        proc._go.release()
        self._control.acquire()
        self._current = prev
        if proc._state == SimProcess._STATE_FAILED and not proc.daemon \
                and not self._shutdown:
            raise SimProcessError(proc, proc.exc)

    def _on_process_exit(self, proc: SimProcess) -> None:
        if self.tracer is not None:
            self.tracer.on_exit(proc)
        for joiner in proc._joiners:
            if joiner.alive:
                token = joiner._wake_token
                self._schedule(0.0, self._wake, joiner, token)
        proc._joiners.clear()

    def _check_current(self, proc: SimProcess) -> None:
        if self._current is not proc:
            raise RuntimeError(
                f"primitive called from {proc.name!r} which does not hold "
                f"the run token (current={getattr(self._current, 'name', None)!r})")

    @property
    def current(self) -> SimProcess | None:
        """The process currently holding the run token, if any."""
        return self._current

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the final virtual time.  Processes still blocked when the
        heap drains simply remain blocked (use :meth:`shutdown`, or the
        context-manager form, to terminate them).
        """
        if self._running:
            raise RuntimeError("kernel is already running")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                timer = heap[0]
                if timer.cancelled:
                    heappop(heap)
                    self.events_skipped += 1
                    continue
                if until is not None and timer.time > until:
                    self.now = until
                    break
                heappop(heap)
                self.now = timer.time
                self.events_processed += 1
                if self.tracer is not None:
                    self.tracer.on_fire(timer)
                timer._fn(*timer._args)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_complete(self, proc: SimProcess,
                           until: float | None = None) -> Any:
        """Run the simulation until ``proc`` finishes; return its result."""
        self.run(until=until)
        if proc.alive:
            from repro.sim.waitgraph import format_wait_graph
            raise SimDeadlockError(
                f"process {proc.name!r} did not complete by "
                f"t={self.now} (state={proc.state})\n"
                + format_wait_graph(self))
        if proc.exc is not None:
            raise SimProcessError(proc, proc.exc)
        return proc.result

    def blocked_processes(self) -> list[SimProcess]:
        """Processes that are alive but not scheduled to run."""
        return [p for p in self._processes
                if p.alive and p._state == SimProcess._STATE_BLOCKED]

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate every live process by raising :class:`SimShutdown`
        at its current blocking point."""
        self._shutdown = True
        for proc in self._processes:
            if proc.alive and proc._state in (SimProcess._STATE_BLOCKED,
                                              SimProcess._STATE_READY):
                proc._arm()
                proc._pending_exc = SimShutdown()
                self._dispatch(proc)

    def __enter__(self) -> "SimKernel":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def run_processes(fns: Iterable[Callable], until: float | None = None,
                  args: tuple = ()) -> list[Any]:
    """Convenience: run ``fns`` as processes to completion, return results."""
    from repro.sim.waitgraph import format_wait_graph
    with SimKernel() as kernel:
        procs = [kernel.spawn(fn, *args, name=getattr(fn, "__name__", None))
                 for fn in fns]
        kernel.run(until=until)
        for p in procs:
            if p.alive:
                raise SimDeadlockError(
                    f"process {p.name!r} never finished\n"
                    + format_wait_graph(kernel))
            if p.exc is not None:
                raise SimProcessError(p, p.exc)
        return [p.result for p in procs]
