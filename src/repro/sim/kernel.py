"""Deterministic cooperative simulation kernel.

The kernel multiplexes simulated processes onto a ``(time, seq)``-ordered
event heap and enforces *one-at-a-time* execution: a process runs until
it performs a timed or blocking primitive (``sleep``, ``suspend``, a
:class:`Mailbox` get, ...), at which point control returns to the
kernel, which pops the next event off the heap.  Because the event
order is a total order and only one process ever runs, simulations are
exactly reproducible — a property the test-suite checks.

*How* control moves between the kernel and a process is delegated to a
pluggable :class:`~repro.sim.backends.SwitchBackend`
(``SimKernel(backend=...)`` or the ``REPRO_SIM_BACKEND`` environment
variable).  The default ``"thread"`` backend is the classic "threads as
coroutines" pattern — each process owns a semaphore, the backend owns
one, and a switch is a release/acquire pair on each side; the
``"greenlet"`` and ``"trampoline"`` backends swap that OS handshake for
userspace switching while preserving the event order bit for bit (see
:mod:`repro.sim.backends` for the determinism contract).

Two opt-in hooks support the dynamic sanitizer (:mod:`repro.sanitizer`);
both are free when unused:

- :meth:`SimKernel.attach_tracer` — when a tracer is attached, the
  kernel reports scheduling events to it
  (``on_schedule``/``on_fire``/``on_switch``/``on_exit``), which is
  enough for a happens-before race detector to maintain per-process
  vector clocks.  Every call site is guarded by an ``is not None``
  test, so the disabled cost is one attribute load.  (Direct
  ``kernel.tracer = x`` assignment is deprecated; it warns and
  delegates to ``attach_tracer``.)
- ``SimKernel(seed=...)`` — deterministically permutes the pop order of
  same-instant events (schedule exploration).  With ``seed=None`` (the
  default) the event order is exactly the historical ``(time, seq)``
  order, bit for bit.

Two hot-path optimisations ride below the hooks, both invisible to the
event order: same-instant events with equal heap keys are drained in a
batch per loop iteration, and the internal process wake-up timers (the
bulk of all events) are pooled on a free-list — wake timers never
escape the kernel, so recycling them is safe.  The pool stands down
whenever a tracer is attached, keeping every traced timer a fresh
object for the tracer to annotate.
"""

from __future__ import annotations

import heapq
import warnings
from typing import Any, Callable, Iterable


class SimShutdown(BaseException):
    """Raised inside a simulated process when the kernel shuts down.

    Derives from ``BaseException`` so that ordinary ``except Exception``
    blocks in user code do not swallow it.
    """


class SimInterrupt(Exception):
    """Raised inside a simulated process interrupted by another process
    (failure injection, cancellation)."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimDeadlockError(RuntimeError):
    """All processes are blocked and no event can ever wake them."""


class SimProcessError(RuntimeError):
    """A non-daemon simulated process died with an exception."""

    def __init__(self, process: "SimProcess", exc: BaseException):
        super().__init__(f"process {process.name!r} failed: {exc!r}")
        self.process = process
        self.exc = exc


def _mix(seed: int, seq: int) -> int:
    """Deterministic 32-bit scramble of ``seq`` under ``seed``.

    Used to permute the pop order of same-instant events during seeded
    schedule exploration; plain integer arithmetic, so the permutation
    is identical on every run and every platform.
    """
    x = (seq * 0x9E3779B9 + (seed + 1) * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class Timer:
    """Handle for a scheduled event; supports :meth:`cancel`.

    ``shuffle`` is 0 in normal runs; under a seeded kernel it carries
    the schedule-exploration permutation key.  ``trace_clock`` is only
    assigned when a tracer is installed (it carries the scheduler's
    vector clock to the instant the event fires).  ``_pooled`` marks
    kernel-internal wake timers whose handle never escapes; the run
    loop recycles those through a free-list.
    """

    __slots__ = ("time", "seq", "shuffle", "_fn", "_args", "cancelled",
                 "trace_clock", "_key", "_pooled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple,
                 shuffle: int = 0):
        self.time = time
        self.seq = seq
        self.shuffle = shuffle
        self._fn = fn
        self._args = args
        self.cancelled = False
        self.trace_clock = None
        self._pooled = False
        # the heap stores (key, timer) pairs so entry comparisons are
        # C-level tuple comparisons — ``seq`` is unique, so the key
        # alone always decides and the Timer itself is never compared
        self._key = (time, shuffle, seq)

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:  # pragma: no cover
        # kept for direct Timer comparisons; the kernel heap compares
        # the precomputed keys instead
        return self._key < other._key


#: the tracer hook surface fanned out by :class:`_TracerFan`
_TRACER_HOOKS = ("on_schedule", "on_fire", "on_switch", "on_exit",
                 "on_join", "hb_release", "hb_acquire")


class _TracerFan:
    """Fans kernel tracer hooks out to several attached tracers.

    Created by :meth:`SimKernel.attach_tracer` when a second tracer is
    attached (e.g. the sanitizer's race detector plus an observability
    recorder).  Hooks dispatch in attach order — deterministic — and a
    member may implement any subset of the hook surface.  The per-hook
    bound-method lists are precomputed when the member set changes, so
    fan-out adds no ``getattr`` to the hot path.
    """

    __slots__ = ("members",) + tuple(f"_{h}" for h in _TRACER_HOOKS)

    def __init__(self, members: list):
        self.members = list(members)
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the per-hook bound-method lists from ``members``."""
        for hook in _TRACER_HOOKS:
            fns = [fn for fn in (getattr(m, hook, None) for m in self.members)
                   if fn is not None]
            setattr(self, f"_{hook}", fns)

    def on_schedule(self, timer: "Timer") -> None:
        for fn in self._on_schedule:
            fn(timer)

    def on_fire(self, timer: "Timer") -> None:
        for fn in self._on_fire:
            fn(timer)

    def on_switch(self, proc: "SimProcess") -> None:
        for fn in self._on_switch:
            fn(proc)

    def on_exit(self, proc: "SimProcess") -> None:
        for fn in self._on_exit:
            fn(proc)

    def on_join(self, proc: "SimProcess", target: "SimProcess") -> None:
        for fn in self._on_join:
            fn(proc, target)

    # happens-before edges reported by the sync primitives
    def hb_release(self, obj: Any) -> None:
        for fn in self._hb_release:
            fn(obj)

    def hb_acquire(self, obj: Any) -> None:
        for fn in self._hb_acquire:
            fn(obj)


class SimProcess:
    """A simulated process, run cooperatively by the kernel.

    Created via :meth:`SimKernel.spawn`.  The target function receives
    the process object as its first argument, giving access to
    :meth:`sleep`, :meth:`suspend` and the kernel.  The execution
    context behind it (OS thread, greenlet, or generator trampoline)
    belongs to the kernel's switch backend.
    """

    # slots keep the per-event attribute traffic on fast descriptors;
    # ``__dict__`` stays available for layers that tack extra state onto
    # a process (corba_principal, security_policy, ...), and the
    # backend-owned execution handles (_thread/_go/_glet/_gen) are
    # declared here so every backend can attach its own
    __slots__ = ("kernel", "name", "daemon", "result", "exc", "_fn",
                 "_args", "_state", "_wake_value", "_pending_exc",
                 "_wake_token", "_joiners", "_waiting_on",
                 "_pending_join", "_thread", "_go", "_glet", "_gen",
                 "__dict__", "__weakref__")

    _STATE_NEW = "new"
    _STATE_READY = "ready"
    _STATE_RUNNING = "running"
    _STATE_BLOCKED = "blocked"
    _STATE_DONE = "done"
    _STATE_FAILED = "failed"

    def __init__(self, kernel: "SimKernel", fn: Callable, args: tuple,
                 name: str, daemon: bool):
        self.kernel = kernel
        self.name = name
        self.daemon = daemon
        self.result: Any = None
        self.exc: BaseException | None = None
        self._fn = fn
        self._args = args
        self._state = self._STATE_NEW
        self._wake_value: Any = None
        self._pending_exc: BaseException | None = None
        self._wake_token = 0  # invalidates stale scheduled wake-ups
        self._joiners: list[SimProcess] = []
        #: what this process is blocked on (a sync primitive, a
        #: SimProcess being joined, or a waker hint from ``suspend``);
        #: drives the deadlock wait-for graph
        self._waiting_on: Any = None
        #: target of an in-flight coroutine-mode join (trampoline
        #: backend); the dispatch path emits ``on_join`` from it
        self._pending_join: SimProcess | None = None
        kernel._backend.create(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the process has neither returned nor failed."""
        return self._state not in (self._STATE_DONE, self._STATE_FAILED)

    @property
    def state(self) -> str:
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name} {self._state} t={self.kernel.now:.6f}>"

    # ------------------------------------------------------------------
    # primitives usable from inside the process
    # ------------------------------------------------------------------
    def sleep(self, duration: float) -> None:
        """Advance this process's virtual time by ``duration`` seconds.

        This is the hottest leaf in the simulator (every cooperative
        switch goes through it), so the wake-timer scheduling is
        inlined here — mirror of :meth:`SimKernel._schedule_wake`; keep
        the two in step.
        """
        if duration < 0:
            raise ValueError(f"negative sleep duration {duration}")
        kernel = self.kernel
        if kernel._current is not self:
            kernel._check_current(self)  # raises with the full message
        self._wake_token = token = self._wake_token + 1
        kernel._seq = seq = kernel._seq + 1
        shuffle = 0 if kernel.seed is None else _mix(kernel.seed, seq)
        pool = kernel._timer_pool
        if pool and kernel._tracer is None:
            timer = pool.pop()
            timer.time = time = kernel.now + duration
            timer.seq = seq
            timer.shuffle = shuffle
            timer._args = (self, token, None, None)
            timer.cancelled = False
            timer.trace_clock = None
            timer._key = (time, shuffle, seq)
        else:
            timer = Timer(kernel.now + duration, seq, kernel._wake,
                          (self, token, None, None), shuffle)
            timer._pooled = kernel._tracer is None
            if kernel._tracer is not None:
                kernel._tracer.on_schedule(timer)
        heapq.heappush(kernel._heap, (timer._key, timer))
        return kernel._leaf(self)

    def suspend(self, waiting_on: Any = None) -> Any:
        """Block until another actor calls :meth:`SimKernel.wake` on us.

        Returns the value passed to ``wake``.  ``waiting_on`` is an
        optional hint naming the actor or condition expected to wake us
        — it shows up as the edge label in the deadlock wait-for graph
        (bare calls are labelled with the ``"suspend"`` sentinel).
        """
        kernel = self.kernel
        if kernel._current is not self:
            kernel._check_current(self)
        self._wake_token += 1
        if self._waiting_on is None:
            self._waiting_on = "suspend" if waiting_on is None else waiting_on
        return kernel._leaf(self)

    def yield_(self) -> None:
        """Let every other ready process at the current instant run."""
        self.kernel._check_current(self)
        return self.sleep(0.0)

    def join(self, target: "SimProcess") -> Any:
        """Block until ``target`` finishes; returns its result."""
        kernel = self.kernel
        kernel._check_current(self)
        if kernel._backend.inline_join:
            return kernel._backend.join_leaf(self, target)
        if target.alive:
            target._joiners.append(self)
            self._waiting_on = target
            try:
                self.suspend()
            finally:
                self._waiting_on = None
        tracer = kernel._tracer
        if tracer is not None:
            tracer.on_join(self, target)
        if target.exc is not None:
            raise SimProcessError(target, target.exc)
        return target.result

    # ------------------------------------------------------------------
    # control transfer internals
    # ------------------------------------------------------------------
    def _arm(self) -> int:
        """Invalidate stale wake-ups and return a fresh token."""
        self._wake_token += 1
        return self._wake_token

    def _yield(self) -> Any:
        """Give the run token back to the kernel from an arbitrary call
        frame (the sync primitives block through here)."""
        return self.kernel._backend.block(self)

    def _block_leaf(self) -> Any:
        """Give the run token back from a kernel leaf primitive."""
        return self.kernel._backend.block_leaf(self)

    def interrupt(self, cause: Any = None) -> None:
        """Inject a :class:`SimInterrupt` into this process.

        May be called from another simulated process or from kernel
        callbacks.  Takes effect at the interrupted process's current
        blocking point (its pending sleep/suspend is abandoned).
        """
        if not self.alive:
            return
        exc = cause if isinstance(cause, BaseException) else SimInterrupt(cause)
        token = self._arm()  # invalidate whatever wake it was waiting for
        self.kernel._schedule_wake(0.0, self, token, None, exc)


class SimKernel:
    """Event loop + virtual clock for a deterministic simulation.

    ``backend`` selects the switch backend (``"thread"`` — the default,
    ``"greenlet"``, ``"trampoline"``, or a
    :class:`~repro.sim.backends.SwitchBackend` instance); unknown names
    are rejected with the valid set.  When no backend is passed the
    ``REPRO_SIM_BACKEND`` environment variable is consulted.

    Use as a context manager in tests so that processes still blocked at
    the end of a run are cleanly shut down::

        with SimKernel() as k:
            k.spawn(lambda p: p.sleep(1.0), name="idler")
            k.run()
    """

    def __init__(self, seed: int | None = None,
                 backend: Any = None) -> None:
        from repro.sim.backends import resolve_backend  # lazy: avoids cycle

        self.now: float = 0.0
        #: event heap of ``(key, Timer)`` pairs — entry comparisons stay
        #: C-level tuple comparisons (``seq`` makes every key unique)
        self._heap: list[tuple[tuple[float, int, int], Timer]] = []
        self._seq = 0
        self._backend = resolve_backend(backend)
        self._backend.attach(self)
        # bound once: the per-switch hot path skips two attribute hops
        self._switch = self._backend.run_until_yield
        self._leaf = self._backend.block_leaf
        self._processes: list[SimProcess] = []
        self._current: SimProcess | None = None
        self._running = False
        self._shutdown = False
        #: schedule-exploration seed; None keeps the canonical order
        self.seed = seed
        #: sanitizer/observability hook (see attach_tracer); internal
        #: code reads the attribute directly to stay off the property
        self._tracer: Any = None
        #: free-list of recycled internal wake timers (kernel-private
        #: handles only; stands down while a tracer is attached)
        self._timer_pool: list[Timer] = []
        #: events popped and fired by :meth:`run` (cancelled ones excluded)
        self.events_processed = 0
        #: cancelled entries discarded by :meth:`run` without firing
        #: (lazy timer cancellation leaves them in the heap until popped)
        self.events_skipped = 0

    @property
    def backend(self) -> Any:
        """The attached :class:`~repro.sim.backends.SwitchBackend`."""
        return self._backend

    # ------------------------------------------------------------------
    # spawning and scheduling
    # ------------------------------------------------------------------
    def spawn(self, fn: Callable, *args: Any, name: str | None = None,
              daemon: bool = False, delay: float = 0.0) -> SimProcess:
        """Create a simulated process that starts at ``now + delay``.

        ``fn`` is called as ``fn(process, *args)``.  If a non-daemon
        process raises, :meth:`run` re-raises it as
        :class:`SimProcessError`; daemon process failures are recorded on
        ``process.exc`` but do not abort the simulation.
        """
        if name is None:
            name = f"proc-{len(self._processes)}"
        proc = SimProcess(self, fn, args, name, daemon)
        self._processes.append(proc)
        proc._state = SimProcess._STATE_READY
        token = proc._arm()
        self._schedule_wake(delay, proc, token)
        return proc

    # ------------------------------------------------------------------
    # tracer attachment
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Any:
        """The attached scheduling tracer (or fan of tracers), if any.

        With one tracer attached this is that object (the historical
        contract); with several it is a :class:`_TracerFan` dispatching
        in attach order.
        """
        return self._tracer

    @tracer.setter
    def tracer(self, value: Any) -> None:
        warnings.warn(
            "assigning SimKernel.tracer directly is deprecated; use "
            "attach_tracer()/detach_tracer()", DeprecationWarning,
            stacklevel=2)
        if value is None:
            self._tracer = None
        else:
            self.attach_tracer(value)

    def attach_tracer(self, tracer: Any) -> None:
        """Install a scheduling tracer, composing with any already there.

        With one tracer attached, :attr:`tracer` is that object (the
        historical contract); with several it becomes a :class:`_TracerFan`
        dispatching in attach order.  Pairs with :meth:`detach_tracer`.
        """
        current = self._tracer
        if current is None:
            self._tracer = tracer
        elif isinstance(current, _TracerFan):
            current.members.append(tracer)
            current._rebuild()
        else:
            self._tracer = _TracerFan([current, tracer])
        # traced timers must be fresh objects (tracers annotate them),
        # so drop any recycled wake timers from the untraced era
        self._timer_pool.clear()

    def detach_tracer(self, tracer: Any) -> None:
        """Remove a tracer attached with :meth:`attach_tracer`.

        Idempotent: detaching a tracer that is not attached is a no-op,
        so uninstall paths need no bookkeeping of their own.
        """
        current = self._tracer
        if current is tracer:
            self._tracer = None
        elif isinstance(current, _TracerFan):
            if tracer in current.members:
                current.members.remove(tracer)
            if len(current.members) == 1:
                self._tracer = current.members[0]
            else:
                current._rebuild()

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Run ``fn(*args)`` in kernel context after ``delay`` seconds.

        The callback must not block; it may spawn processes, wake them,
        or schedule further callbacks.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._schedule(delay, fn, *args)

    def _schedule(self, delay: float, fn: Callable, *args: Any) -> Timer:
        self._seq += 1
        shuffle = 0 if self.seed is None else _mix(self.seed, self._seq)
        timer = Timer(self.now + delay, self._seq, fn, args, shuffle)
        if self._tracer is not None:
            self._tracer.on_schedule(timer)
        heapq.heappush(self._heap, (timer._key, timer))
        return timer

    def _schedule_wake(self, delay: float, proc: SimProcess, token: int,
                       value: Any = None,
                       exc: BaseException | None = None) -> Timer:
        """Schedule a process wake-up, recycling pooled timers.

        Wake timers are kernel-internal — no handle ever escapes, so no
        one can cancel or retain one — which makes the free-list safe.
        With a tracer attached this falls back to fresh timers so every
        traced event is a distinct object.
        """
        self._seq += 1
        seq = self._seq
        shuffle = 0 if self.seed is None else _mix(self.seed, seq)
        pool = self._timer_pool
        if pool and self._tracer is None:
            timer = pool.pop()
            timer.time = time = self.now + delay
            timer.seq = seq
            timer.shuffle = shuffle
            timer._args = (proc, token, value, exc)
            timer.cancelled = False
            timer.trace_clock = None
            timer._key = (time, shuffle, seq)
        else:
            timer = Timer(self.now + delay, seq, self._wake,
                          (proc, token, value, exc), shuffle)
            timer._pooled = self._tracer is None
            if self._tracer is not None:
                self._tracer.on_schedule(timer)
        heapq.heappush(self._heap, (timer._key, timer))
        return timer

    # ------------------------------------------------------------------
    # waking processes
    # ------------------------------------------------------------------
    def wake(self, proc: SimProcess, value: Any = None) -> None:
        """Schedule ``proc`` (blocked in :meth:`SimProcess.suspend`) to
        resume at the current instant with ``value``."""
        self._schedule_wake(0.0, proc, proc._wake_token, value)

    def _wake(self, proc: SimProcess, token: int, value: Any = None,
              exc: BaseException | None = None) -> None:
        if token != proc._wake_token or proc._state in ("done", "failed"):
            return  # stale wake-up (process was interrupted or finished)
        if exc is not None:
            proc._pending_exc = exc
        proc._wake_value = value
        if self._tracer is not None:
            self._tracer.on_switch(proc)
        prev = self._current
        self._current = proc
        self._switch(proc)
        self._current = prev
        if proc._state == SimProcess._STATE_FAILED and not proc.daemon \
                and not self._shutdown:
            raise SimProcessError(proc, proc.exc)

    def _dispatch(self, proc: SimProcess) -> None:
        """Hand the run token to ``proc`` and wait for it to yield.

        (:meth:`_wake` inlines this sequence on the hot path; keep the
        two in step.)
        """
        if self._tracer is not None:
            self._tracer.on_switch(proc)
        prev = self._current
        self._current = proc
        self._switch(proc)
        self._current = prev
        if proc._state == SimProcess._STATE_FAILED and not proc.daemon \
                and not self._shutdown:
            raise SimProcessError(proc, proc.exc)

    def _on_process_exit(self, proc: SimProcess) -> None:
        if self._tracer is not None:
            self._tracer.on_exit(proc)
        for joiner in proc._joiners:
            if joiner.alive:
                token = joiner._wake_token
                if joiner._pending_join is proc:
                    # coroutine-mode join: the wake itself must carry
                    # the join outcome (the trampoline cannot re-enter
                    # the joiner's frame to compute it after the fact)
                    if proc.exc is not None:
                        self._schedule_wake(
                            0.0, joiner, token, None,
                            SimProcessError(proc, proc.exc))
                    else:
                        self._schedule_wake(0.0, joiner, token, proc.result)
                else:
                    self._schedule_wake(0.0, joiner, token)
        proc._joiners.clear()

    def _check_current(self, proc: SimProcess) -> None:
        if self._current is not proc:
            raise RuntimeError(
                f"primitive called from {proc.name!r} which does not hold "
                f"the run token (current={getattr(self._current, 'name', None)!r})")

    @property
    def current(self) -> SimProcess | None:
        """The process currently holding the run token, if any."""
        return self._current

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the final virtual time.  Processes still blocked when the
        heap drains simply remain blocked (use :meth:`shutdown`, or the
        context-manager form, to terminate them).

        Each loop iteration drains the *batch* of same-instant events
        with equal ``(time, shuffle)`` heap keys; events a fired
        callback schedules at the same instant sort after the batch (a
        larger ``seq``) and are picked up by the next iteration, so the
        fired order is exactly the historical one-pop-per-iteration
        order, including cancellations landing mid-batch.
        """
        if self._running:
            raise RuntimeError("kernel is already running")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        pool = self._timer_pool
        wake = self._wake
        switch = self._switch
        failed = SimProcess._STATE_FAILED
        try:
            while heap:
                key, timer = heap[0]
                if timer.cancelled:
                    heappop(heap)
                    self.events_skipped += 1
                    if timer._pooled:
                        pool.append(timer)
                    continue
                time = key[0]
                if until is not None and time > until:
                    self.now = until
                    break
                heappop(heap)
                self.now = time
                shuffle = key[1]
                while True:
                    self.events_processed += 1
                    tracer = self._tracer
                    if tracer is not None:
                        tracer.on_fire(timer)
                    if timer._fn is wake:
                        # inlined process wake — mirror of _wake(); the
                        # overwhelmingly common event deserves one less
                        # Python frame per switch
                        proc, token, value, exc = timer._args
                        if token == proc._wake_token \
                                and proc._state not in ("done", "failed"):
                            if exc is not None:
                                proc._pending_exc = exc
                            proc._wake_value = value
                            if tracer is not None:
                                tracer.on_switch(proc)
                            prev = self._current
                            self._current = proc
                            switch(proc)
                            self._current = prev
                            if proc._state == failed and not proc.daemon \
                                    and not self._shutdown:
                                raise SimProcessError(proc, proc.exc)
                    else:
                        timer._fn(*timer._args)
                    if timer._pooled:
                        pool.append(timer)
                    if not heap:
                        break
                    key, timer = heap[0]
                    if key[0] != time or key[1] != shuffle \
                            or timer.cancelled:
                        break  # next instant, or outer-loop accounting
                    heappop(heap)
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_complete(self, proc: SimProcess,
                           until: float | None = None) -> Any:
        """Run the simulation until ``proc`` finishes; return its result."""
        self.run(until=until)
        if proc.alive:
            from repro.sim.waitgraph import format_wait_graph
            raise SimDeadlockError(
                f"process {proc.name!r} did not complete by "
                f"t={self.now} (state={proc.state})\n"
                + format_wait_graph(self))
        if proc.exc is not None:
            raise SimProcessError(proc, proc.exc)
        return proc.result

    def blocked_processes(self) -> list[SimProcess]:
        """Processes that are alive but not scheduled to run."""
        return [p for p in self._processes
                if p.alive and p._state == SimProcess._STATE_BLOCKED]

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Terminate every live process by raising :class:`SimShutdown`
        at its current blocking point."""
        self._shutdown = True
        for proc in self._processes:
            if proc.alive and proc._state in (SimProcess._STATE_BLOCKED,
                                              SimProcess._STATE_READY):
                proc._arm()
                proc._pending_exc = SimShutdown()
                self._dispatch(proc)

    def __enter__(self) -> "SimKernel":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


def run_processes(fns: Iterable[Callable], until: float | None = None,
                  args: tuple = (), backend: Any = None) -> list[Any]:
    """Convenience: run ``fns`` as processes to completion, return results.

    ``backend`` is forwarded to :class:`SimKernel` (None keeps the
    default selection, including ``REPRO_SIM_BACKEND``).
    """
    from repro.sim.waitgraph import format_wait_graph
    with SimKernel(backend=backend) as kernel:
        procs = [kernel.spawn(fn, *args, name=getattr(fn, "__name__", None))
                 for fn in fns]
        kernel.run(until=until)
        for p in procs:
            if p.alive:
                raise SimDeadlockError(
                    f"process {p.name!r} never finished\n"
                    + format_wait_graph(kernel))
            if p.exc is not None:
                raise SimProcessError(p, p.exc)
        return [p.result for p in procs]
