"""Deadlock wait-for graph: who is blocked on what, and who holds it.

When a simulation deadlocks, the stuck-process *names* alone rarely
identify the bug; the useful artefact is the wait-for graph — each
blocked process, the primitive it is blocked on, and (where the
primitive has an owner, like a lock) the process that must act to
release it.  :func:`format_wait_graph` renders that graph from the
bookkeeping the sync primitives leave on ``SimProcess._waiting_on``;
the kernel embeds it in every :class:`~repro.sim.kernel.SimDeadlockError`.
"""

from __future__ import annotations

from typing import Any


def _label(target: Any, numbers: dict[int, int]) -> str:
    """Stable per-report label like ``Mailbox#1`` for a primitive.

    Numbers are assigned in first-seen order over the (deterministic)
    blocked-process list, so two processes blocked on the same object
    visibly share a label.
    """
    num = numbers.setdefault(id(target), len(numbers) + 1)
    return f"{type(target).__name__}#{num}"


def _describe(target: Any, numbers: dict[int, int]) -> str:
    """Human description of one wait target, with holder when known."""
    from repro.sim.kernel import SimProcess
    from repro.sim.sync import (
        Mailbox,
        MatchQueue,
        SimBarrier,
        SimEvent,
        SimLock,
        SimSemaphore,
        WaitQueue,
    )

    if target is None:
        return "suspend() with no registered waker"
    if isinstance(target, str):
        # waker hint recorded by ``suspend(waiting_on=...)``; the bare
        # sentinel means suspend() was called with no hint at all
        if target == "suspend":
            return "bare suspend() awaiting an external wake()"
        return f"suspend() awaiting {target}"
    if isinstance(target, SimProcess):
        return f"join on process {target.name!r} (state={target.state})"
    label = _label(target, numbers)
    if isinstance(target, SimLock):
        holder = target.owner.name if target.owner is not None else None
        return f"{label} held by {holder!r}"
    if isinstance(target, SimSemaphore):
        return f"{label} (value={target.value})"
    if isinstance(target, SimEvent):
        return f"{label} ({'set' if target.is_set else 'unset'})"
    if isinstance(target, SimBarrier):
        return (f"{label} ({target._count}/{target.parties} arrived, "
                f"generation {target._generation})")
    if isinstance(target, Mailbox):
        return f"{label} ({len(target)} item(s) queued)"
    if isinstance(target, MatchQueue):
        return f"{label} ({len(target)} unmatched item(s) queued)"
    if isinstance(target, WaitQueue):
        return label
    return f"{label} {target!r}"


def _resolve(target: Any) -> tuple[Any, str]:
    """Unwrap a WaitQueue to the primitive that owns it, keeping the
    queue's role (which *side* of a bounded mailbox, say) as a suffix."""
    owner = getattr(target, "owner", None)
    role = getattr(target, "role", None)
    if owner is not None and hasattr(target, "_waiters"):
        return owner, f" [{role} side]" if role else ""
    return target, ""


def wait_edges(kernel: Any) -> list[tuple[Any, Any]]:
    """(blocked process, wait target) pairs, in process-creation order.

    The target is whatever the process registered when it blocked: a
    sync primitive, a :class:`SimProcess` being joined, or a string
    waker hint (the ``"suspend"`` sentinel for a bare ``suspend()``).
    """
    return [(proc, proc._waiting_on)
            for proc in kernel.blocked_processes()]


def format_wait_graph(kernel: Any) -> str:
    """Render the full wait-for graph of every blocked process."""
    edges = wait_edges(kernel)
    if not edges:
        return "wait-for graph: no blocked processes"
    numbers: dict[int, int] = {}
    lines = ["wait-for graph:"]
    for proc, target in edges:
        target, role = _resolve(target)
        lines.append(
            f"  {proc.name} waits on {_describe(target, numbers)}{role}")
    return "\n".join(lines)
