"""Pluggable switch backends: how a SimProcess yields and resumes.

The kernel's determinism comes from its event loop — a total order over
``(time, shuffle, seq)`` heap keys — not from *how* control moves
between the kernel and a process.  This module isolates that mechanism
behind the :class:`SwitchBackend` protocol so the expensive part of a
context switch can be swapped without touching the event order, the
tracer hook points, or any code above the kernel:

* :class:`ThreadBackend` (default, name ``"thread"``) — the historical
  implementation: every process is an OS thread parked on its own
  semaphore, the kernel holds a control semaphore, and a switch is one
  release/acquire pair on each side.  Supports blocking anywhere,
  including deep inside the sync primitives, at the cost of two OS
  semaphore handshakes (and a GIL handoff) per switch.
* :class:`GreenletBackend` (name ``"greenlet"``) — identical blocking
  semantics on ``greenlet`` coroutines: a switch is a userspace stack
  swap, no OS scheduler involved.  Requires the optional ``greenlet``
  package (the ``repro[sim-fast]`` extra).
* :class:`TrampolineBackend` (name ``"trampoline"``) — pure-Python
  fallback with no dependencies: processes written as *generator
  functions* are driven by a send/throw trampoline, and every blocking
  call is a ``yield``.  Only the kernel-level leaf primitives
  (``sleep`` / ``suspend`` / ``yield_`` / ``join``) can block, and only
  directly from the generator frame (``yield p.sleep(dt)``); the sync
  primitives in :mod:`repro.sim.sync`, which block from nested call
  frames, raise a descriptive error.

Backend-portable coroutine processes
------------------------------------
A process written as a generator runs on **all three** backends with a
byte-identical event order::

    def ticker(p, n):
        for _ in range(n):
            yield p.sleep(1e-6)       # thread: blocks inside sleep();
                                      # trampoline: suspends at the yield

Under the thread/greenlet backends the generator is driven by an
echo-loop (each yielded value is sent straight back in), so
``value = yield p.suspend()`` delivers the wake value identically
everywhere.

Determinism contract (what every backend must preserve)
-------------------------------------------------------
1. total event order: the backend never reorders, adds, or drops
   kernel events — all scheduling goes through the one event heap;
2. run-token exclusivity: exactly one process executes between
   ``run_until_yield(proc)`` entry and return, and the kernel never
   runs concurrently with it;
3. tracer hook points: ``on_switch`` before control transfer,
   ``on_join`` when a join completes, ``on_exit`` (via
   ``kernel._on_process_exit``) before the final switch back — in the
   same relative order on every backend.

Selection: ``SimKernel(backend="thread"|"greenlet"|"trampoline")``, a
:class:`SwitchBackend` instance, or the ``REPRO_SIM_BACKEND``
environment variable (read when no explicit backend is passed).
"""

from __future__ import annotations

import inspect
import os
import threading
from typing import Any, Callable

from repro.sim.kernel import SimProcess, SimShutdown

try:  # optional extra: pip install repro[sim-fast]
    import greenlet as _greenlet
except ImportError:  # pragma: no cover - exercised where greenlet is absent
    _greenlet = None

#: name of the backend used when neither ``SimKernel(backend=...)`` nor
#: ``REPRO_SIM_BACKEND`` says otherwise
DEFAULT_BACKEND = "thread"

#: environment variable consulted when no explicit backend is passed
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"


class BackendUnavailableError(RuntimeError):
    """A known backend cannot run here (missing optional dependency)."""


class _Immediate:
    """Trampoline marker: resume the coroutine synchronously with
    ``value`` — no kernel event, no tracer hooks (mirrors a leaf
    primitive that returned without blocking on the thread backend)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Immediate {self.value!r}>"


class SwitchBackend:
    """Base class for switch backends.

    One instance serves one kernel (:meth:`attach` binds it); the
    kernel calls :meth:`create` when a process is spawned,
    :meth:`run_until_yield` to hand over the run token, and the process
    side calls :meth:`block` (nested-frame capable) or
    :meth:`block_leaf` (kernel leaf primitives only) to give it back.
    """

    name = "abstract"
    #: True when :meth:`join_leaf` replaces the generic two-phase join
    #: (the trampoline cannot re-enter the joiner's frame after a wake)
    inline_join = False

    def __init__(self) -> None:
        self._kernel: Any = None

    def attach(self, kernel: Any) -> None:
        """Bind this backend to its kernel.  One kernel per instance."""
        if self._kernel is not None and self._kernel is not kernel:
            raise RuntimeError(
                f"backend {self.name!r} is already attached to another "
                f"kernel; create one backend instance per SimKernel")
        self._kernel = kernel

    # -- kernel side ---------------------------------------------------
    def create(self, proc: SimProcess) -> None:
        """Set up the execution context for a freshly spawned process."""
        raise NotImplementedError

    def run_until_yield(self, proc: SimProcess) -> None:
        """Transfer control to ``proc`` until it blocks or exits."""
        raise NotImplementedError

    # -- process side --------------------------------------------------
    def block(self, proc: SimProcess) -> Any:
        """Suspend ``proc`` from an arbitrary call frame; return the
        wake value (or raise the delivered exception) on resume."""
        raise NotImplementedError

    def block_leaf(self, proc: SimProcess) -> Any:
        """Suspend ``proc`` from a kernel leaf primitive (sleep /
        suspend / join).  Defaults to :meth:`block`."""
        return self.block(proc)

    def join_leaf(self, proc: SimProcess, target: SimProcess) -> Any:
        """Backend-specific join (only when :attr:`inline_join`)."""
        raise NotImplementedError


def _execute(proc: SimProcess) -> None:
    """Run a process body to completion (thread/greenlet backends).

    Handles the pre-start shutdown exception, drives generator bodies
    with an echo-loop (each yielded value is sent straight back, so
    ``value = yield p.suspend()`` behaves as on the trampoline), and
    reports the exit to the kernel.
    """
    try:
        if proc._pending_exc is not None:  # shut down before first run
            exc = proc._pending_exc
            proc._pending_exc = None
            raise exc
        fn = proc._fn
        if inspect.isgeneratorfunction(fn):
            gen = fn(proc, *proc._args)
            try:
                value = None
                while True:
                    value = gen.send(value)
            except StopIteration as stop:
                proc.result = stop.value
        else:
            proc.result = fn(proc, *proc._args)
        proc._state = SimProcess._STATE_DONE
    except SimShutdown:
        proc._state = SimProcess._STATE_DONE
    except BaseException as exc:  # noqa: BLE001 - report to kernel
        proc.exc = exc
        proc._state = SimProcess._STATE_FAILED
    finally:
        proc.kernel._on_process_exit(proc)


class ThreadBackend(SwitchBackend):
    """OS threads + a semaphore pair per switch (the historical core).

    Each process parks on its own ``_go`` semaphore; the backend owns
    the ``_control`` semaphore.  Resuming a process is
    ``proc._go.release(); self._control.acquire()``; yielding is the
    mirror image.  No other locking exists because the run token
    serialises every access to kernel state.
    """

    name = "thread"

    def __init__(self) -> None:
        super().__init__()
        self._control = threading.Semaphore(0)

    def create(self, proc: SimProcess) -> None:
        proc._go = threading.Semaphore(0)
        proc._thread = threading.Thread(
            target=self._run, args=(proc,), name=f"sim:{proc.name}",
            daemon=True)
        proc._thread.start()

    def _run(self, proc: SimProcess) -> None:
        proc._go.acquire()  # wait for first dispatch from the kernel
        try:
            _execute(proc)
        finally:
            self._control.release()

    def run_until_yield(self, proc: SimProcess) -> None:
        proc._go.release()
        self._control.acquire()

    def block(self, proc: SimProcess) -> Any:
        proc._state = SimProcess._STATE_BLOCKED
        self._control.release()
        proc._go.acquire()
        proc._waiting_on = None
        proc._state = SimProcess._STATE_RUNNING
        if proc._pending_exc is not None:
            exc = proc._pending_exc
            proc._pending_exc = None
            raise exc
        return proc._wake_value


class GreenletBackend(SwitchBackend):
    """Userspace stack switching via ``greenlet``: same blocking
    semantics as :class:`ThreadBackend` (any frame may suspend) with no
    OS scheduler or GIL handoff on the switch path."""

    name = "greenlet"

    def __init__(self) -> None:
        if _greenlet is None:
            raise BackendUnavailableError(
                "the 'greenlet' backend needs the greenlet package "
                "(pip install repro[sim-fast]); the dependency-free "
                "alternative for coroutine processes is "
                "backend='trampoline'")
        super().__init__()
        self._kernel_glet: Any = None

    def create(self, proc: SimProcess) -> None:
        # created lazily at first dispatch so the parent (where control
        # lands when the body returns) is the kernel's greenlet, even
        # when the spawn happened inside another simulated process
        proc._glet = None

    def run_until_yield(self, proc: SimProcess) -> None:
        self._kernel_glet = _greenlet.getcurrent()
        glet = proc._glet
        if glet is None:
            glet = proc._glet = _greenlet.greenlet(self._run)
            glet.switch(proc)
        else:
            glet.switch()

    def _run(self, proc: SimProcess) -> None:
        _execute(proc)
        # falling off the end kills the greenlet and resumes its parent
        # — the kernel greenlet that created it in run_until_yield

    def block(self, proc: SimProcess) -> Any:
        proc._state = SimProcess._STATE_BLOCKED
        self._kernel_glet.switch()
        proc._waiting_on = None
        proc._state = SimProcess._STATE_RUNNING
        if proc._pending_exc is not None:
            exc = proc._pending_exc
            proc._pending_exc = None
            raise exc
        return proc._wake_value


class TrampolineBackend(SwitchBackend):
    """Generator trampoline: dependency-free cheap switching for
    processes written as coroutines.

    A process body must be a generator function; every potentially
    blocking call is made *in the yield expression*::

        def proc(p):
            value = yield p.suspend()
            yield p.sleep(1.0)
            result = yield p.join(other)

    Plain-function processes are supported only if they never block
    (spawn-and-return helpers); the sync primitives, which suspend from
    nested call frames, are not available on this backend.
    """

    name = "trampoline"
    inline_join = True

    def create(self, proc: SimProcess) -> None:
        fn = proc._fn
        if inspect.isgeneratorfunction(fn):
            proc._gen = fn(proc, *proc._args)  # body not started yet
        else:
            proc._gen = None

    def run_until_yield(self, proc: SimProcess) -> None:
        # fast path first: a plain wake has no pending exception, no
        # waiting-on bookkeeping, and no join in flight
        throw = proc._pending_exc
        if throw is not None:
            proc._pending_exc = None
        value = proc._wake_value
        if proc._waiting_on is not None:
            proc._waiting_on = None
        target = proc._pending_join
        if target is not None:
            proc._pending_join = None
            if throw is None:
                tracer = self._kernel._tracer
                if tracer is not None:
                    tracer.on_join(proc, target)
        proc._state = SimProcess._STATE_RUNNING
        gen = proc._gen
        try:
            if gen is None:
                if throw is not None:
                    raise throw
                proc.result = proc._fn(proc, *proc._args)
                proc._state = SimProcess._STATE_DONE
            else:
                while True:
                    if throw is not None:
                        exc, throw = throw, None
                        yielded = gen.throw(exc)
                    else:
                        yielded = gen.send(value)
                    if proc._state == SimProcess._STATE_BLOCKED:
                        return  # suspended at the yield; resume later
                    if type(yielded) is _Immediate:
                        value = yielded.value
                        continue
                    raise RuntimeError(
                        f"coroutine process {proc.name!r} yielded "
                        f"{yielded!r} without blocking on a kernel "
                        f"primitive (write blocking calls as "
                        f"'yield p.sleep(...)' etc.)")
        except StopIteration as stop:
            if proc._state == SimProcess._STATE_BLOCKED:
                proc.exc = RuntimeError(
                    f"coroutine process {proc.name!r} returned while "
                    f"armed to block — a blocking primitive was called "
                    f"without yielding its result")
                proc._state = SimProcess._STATE_FAILED
            else:
                proc.result = stop.value
                proc._state = SimProcess._STATE_DONE
        except SimShutdown:
            proc._state = SimProcess._STATE_DONE
        except BaseException as exc:  # noqa: BLE001 - report to kernel
            proc.exc = exc
            proc._state = SimProcess._STATE_FAILED
        self._kernel._on_process_exit(proc)

    def block(self, proc: SimProcess) -> Any:
        raise RuntimeError(
            f"process {proc.name!r} tried to block inside a nested call "
            f"frame (a sync primitive such as Mailbox/SimLock), which "
            f"the 'trampoline' backend cannot suspend; use the 'thread' "
            f"or 'greenlet' backend for this workload")

    def block_leaf(self, proc: SimProcess) -> Any:
        if proc._gen is None:
            raise RuntimeError(
                f"process {proc.name!r} is a plain function; the "
                f"'trampoline' backend can only suspend coroutine "
                f"processes — write the body as a generator and yield "
                f"each blocking call, or use the 'thread'/'greenlet' "
                f"backend")
        proc._state = SimProcess._STATE_BLOCKED
        return None  # the generator must yield this immediately

    def join_leaf(self, proc: SimProcess, target: SimProcess) -> Any:
        kernel = self._kernel
        if target.alive:
            proc._arm()
            target._joiners.append(proc)
            proc._waiting_on = target
            # _on_process_exit sees the pending join and delivers the
            # target's result (or SimProcessError) through the wake
            proc._pending_join = target
            proc._state = SimProcess._STATE_BLOCKED
            return None
        tracer = kernel._tracer
        if tracer is not None:
            tracer.on_join(proc, target)
        if target.exc is not None:
            from repro.sim.kernel import SimProcessError
            raise SimProcessError(target, target.exc)
        return _Immediate(target.result)


#: registry of constructible backends, keyed by their selection name
BACKENDS: dict[str, Callable[[], SwitchBackend]] = {
    ThreadBackend.name: ThreadBackend,
    GreenletBackend.name: GreenletBackend,
    TrampolineBackend.name: TrampolineBackend,
}


def available_backends() -> tuple[str, ...]:
    """Backend names constructible in this environment, in registry
    order (``greenlet`` is excluded when the package is missing)."""
    names = []
    for name in BACKENDS:
        if name == GreenletBackend.name and _greenlet is None:
            continue
        names.append(name)
    return tuple(names)


def best_available_backend() -> str:
    """The fastest switch backend usable here: ``greenlet`` when the
    package is installed, else the dependency-free ``trampoline``."""
    return GreenletBackend.name if _greenlet is not None \
        else TrampolineBackend.name


def resolve_backend(spec: Any) -> SwitchBackend:
    """Turn a backend specification into a fresh backend instance.

    ``spec`` may be a registry name, an already-constructed
    :class:`SwitchBackend` (passed through), or None — which consults
    ``REPRO_SIM_BACKEND`` and finally falls back to ``"thread"``.
    Unknown names fail loudly with the list of valid ones.
    """
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if isinstance(spec, SwitchBackend):
        return spec
    if isinstance(spec, str):
        factory = BACKENDS.get(spec.strip().lower())
        if factory is None:
            known = ", ".join(repr(n) for n in BACKENDS)
            raise ValueError(
                f"unknown sim backend {spec!r}: valid backends are "
                f"{known} (pass SimKernel(backend=...) or set "
                f"{BACKEND_ENV_VAR})")
        return factory()
    raise TypeError(
        f"backend must be a name, a SwitchBackend instance or None, "
        f"not {type(spec).__name__}")
