"""Synchronisation primitives for simulated processes.

All primitives follow the broadcast-and-recheck discipline where it
matters for robustness under failure injection: a woken process
re-checks the guarded condition and goes back to sleep if another
process won the race (or if it was itself interrupted, the primitive's
state stays consistent).

Because the kernel serialises execution, none of these classes needs
real locking; a "critical section" is simply any stretch of code with no
blocking primitive inside.

Sanitizer integration (all free when disabled): every primitive reports
release-style operations (``put``/``release``/``set``/``notify``) and
acquire-style operations (``get``/``acquire``/``wait`` return) to
``kernel.tracer`` when one is installed, which lets the happens-before
race detector thread vector clocks through the data paths that do *not*
go through a kernel wake-up (e.g. a mailbox ``get`` that finds an item
already queued).  Each blocked process also records *what* it is blocked
on (``proc._waiting_on``), which the kernel renders into a wait-for
graph on deadlock.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.kernel import SimKernel, SimProcess
from repro.sim.primitives import trace_acquire, trace_release


class SimTimeout(Exception):
    """A timed wait expired before the condition was met."""


class WaitQueue:
    """FIFO queue of blocked processes; the low-level building block.

    ``owner`` names the primitive this queue belongs to (for deadlock
    reports); ``role`` distinguishes multiple queues of one primitive
    (a bounded mailbox has a getter queue and a putter queue).
    """

    def __init__(self, kernel: SimKernel, owner: Any = None,
                 role: str | None = None):
        self.kernel = kernel
        self.owner = owner
        self.role = role
        # entries: [proc, woken_flag]; a deque so FIFO wake_one is O(1)
        # (every mailbox get/put and lock release pops the head)
        self._waiters: Deque[list] = deque()

    def __len__(self) -> int:
        return len(self._waiters)

    def wait(self, proc: SimProcess, timeout: float | None = None) -> Any:
        """Block ``proc`` until woken; raises :class:`SimTimeout` if
        ``timeout`` seconds elapse first.

        The expiry wake-up is bound to the wake token armed *here*, so a
        timeout that fires after the process was interrupted (or woken
        by any other means) is stale and cannot overwrite the pending
        wake-up — a lost-interrupt race the previous implementation had.
        """
        self.kernel._check_current(proc)
        entry = [proc, False]
        self._waiters.append(entry)
        token = proc._arm()
        timer = None
        if timeout is not None:
            timer = self.kernel._schedule(
                timeout, self._expire, entry, token, timeout)
        proc._waiting_on = self
        try:
            return proc._yield()
        except BaseException:
            if not entry[1] and entry in self._waiters:
                self._waiters.remove(entry)
            raise
        finally:
            proc._waiting_on = None
            if timer is not None:
                timer.cancel()

    def _expire(self, entry: list, token: int, timeout: float) -> None:
        """Kernel callback: deliver :class:`SimTimeout` if still queued."""
        proc = entry[0]
        if entry[1] or entry not in self._waiters:
            return  # already woken (the timer lost the race)
        self._waiters.remove(entry)
        # _wake drops the exception if ``token`` is stale, so an
        # interrupt armed after us always wins over the timeout
        self.kernel._wake(proc, token, None,
                          SimTimeout(f"timed out after {timeout} s"))

    def wake_one(self, value: Any = None) -> bool:
        """Wake the longest-waiting process.  Returns False if empty."""
        if not self._waiters:
            return False
        entry = self._waiters.popleft()
        entry[1] = True
        self.kernel.wake(entry[0], value)
        return True

    def wake_all(self, value: Any = None) -> int:
        """Wake every waiting process; returns how many were woken."""
        count = 0
        while self.wake_one(value):
            count += 1
        return count


class SimEvent:
    """One-shot (or resettable) flag; waiters block until it is set."""

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self._flag = False
        self._value: Any = None
        self._queue = WaitQueue(kernel, owner=self)

    @property
    def is_set(self) -> bool:
        return self._flag

    def set(self, value: Any = None) -> None:
        """Set the flag and release every waiter."""
        trace_release(self.kernel, self)
        self._flag = True
        self._value = value
        self._queue.wake_all()

    def clear(self) -> None:
        self._flag = False
        self._value = None

    def wait(self, proc: SimProcess, timeout: float | None = None) -> Any:
        """Return immediately if set, else block until :meth:`set`.

        With ``timeout``, raises :class:`SimTimeout` on expiry."""
        deadline = None if timeout is None else self.kernel.now + timeout
        while not self._flag:
            remaining = None if deadline is None else \
                max(deadline - self.kernel.now, 0.0)
            self._queue.wait(proc, timeout=remaining)
        trace_acquire(self.kernel, self)
        return self._value


class SimSemaphore:
    """Counting semaphore with FIFO wake order.

    ``owner`` redirects deadlock reports to an enclosing primitive
    (:class:`SimLock` builds on a semaphore but waiters conceptually
    block on the lock).
    """

    def __init__(self, kernel: SimKernel, value: int = 1,
                 owner: Any = None):
        if value < 0:
            raise ValueError("initial semaphore value must be >= 0")
        self.kernel = kernel
        self._value = value
        self._queue = WaitQueue(kernel, owner=owner or self)

    @property
    def value(self) -> int:
        return self._value

    def acquire(self, proc: SimProcess) -> None:
        while self._value == 0:
            self._queue.wait(proc)
        self._value -= 1
        trace_acquire(self.kernel, self)

    def release(self) -> None:
        trace_release(self.kernel, self)
        self._value += 1
        self._queue.wake_one()


class SimLock:
    """Mutual exclusion for simulated processes (non-reentrant)."""

    def __init__(self, kernel: SimKernel):
        self._sem = SimSemaphore(kernel, 1, owner=self)
        self._owner: SimProcess | None = None

    @property
    def locked(self) -> bool:
        return self._owner is not None

    @property
    def owner(self) -> SimProcess | None:
        return self._owner

    def acquire(self, proc: SimProcess) -> None:
        if self._owner is proc:
            raise RuntimeError(f"{proc.name!r} re-acquired a non-reentrant lock")
        self._sem.acquire(proc)
        self._owner = proc

    def release(self, proc: SimProcess) -> None:
        if self._owner is not proc:
            raise RuntimeError(
                f"{proc.name!r} released a lock owned by "
                f"{getattr(self._owner, 'name', None)!r}")
        self._owner = None
        self._sem.release()


class SimCondition:
    """Condition variable bound to a :class:`SimLock`."""

    def __init__(self, kernel: SimKernel, lock: SimLock | None = None):
        self.kernel = kernel
        self.lock = lock or SimLock(kernel)
        self._queue = WaitQueue(kernel, owner=self)

    def wait(self, proc: SimProcess) -> None:
        """Atomically release the lock, block, re-acquire on wake."""
        self.lock.release(proc)
        try:
            self._queue.wait(proc)
        finally:
            self.lock.acquire(proc)

    def notify(self, n: int = 1) -> None:
        trace_release(self.kernel, self)
        for _ in range(n):
            if not self._queue.wake_one():
                break

    def notify_all(self) -> None:
        trace_release(self.kernel, self)
        self._queue.wake_all()


class SimBarrier:
    """Reusable barrier for a fixed number of parties."""

    def __init__(self, kernel: SimKernel, parties: int):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.kernel = kernel
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._queue = WaitQueue(kernel, owner=self)

    def wait(self, proc: SimProcess) -> int:
        """Block until ``parties`` processes arrive; returns arrival index."""
        trace_release(self.kernel, self)
        gen = self._generation
        index = self._count
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            self._generation += 1
            self._queue.wake_all()
        else:
            while gen == self._generation:
                self._queue.wait(proc)
        trace_acquire(self.kernel, self)
        return index


class MatchQueue:
    """Queue supporting selective receive (``get`` with a predicate).

    This is the matching structure under MPI tag/source matching and
    Circuit selective receives: producers :meth:`put` items, consumers
    take the *oldest item satisfying their predicate*, blocking until
    one appears.  All waiting consumers are woken on every put and
    re-scan (broadcast-and-recheck), which keeps the structure correct
    when consumers are interrupted mid-wait.
    """

    def __init__(self, kernel: SimKernel):
        self.kernel = kernel
        self._items: list[Any] = []
        self._waiters = WaitQueue(kernel, owner=self)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        trace_release(self.kernel, self)
        self._items.append(item)
        self._waiters.wake_all()

    def get(self, proc: SimProcess, predicate=None,
            timeout: float | None = None) -> Any:
        """Pop the oldest item matching ``predicate`` (default: any).

        With ``timeout``, raises :class:`SimTimeout` when no matching
        item arrives in time (measured from each retry — callers wanting
        a strict deadline should pass the remaining budget)."""
        deadline = None if timeout is None else \
            self.kernel.now + timeout
        while True:
            for i, item in enumerate(self._items):
                if predicate is None or predicate(item):
                    trace_acquire(self.kernel, self)
                    return self._items.pop(i)
            remaining = None if deadline is None else \
                max(deadline - self.kernel.now, 0.0)
            self._waiters.wait(proc, timeout=remaining)

    def get_nowait(self, predicate=None) -> Any:
        for i, item in enumerate(self._items):
            if predicate is None or predicate(item):
                trace_acquire(self.kernel, self)
                return self._items.pop(i)
        raise LookupError("no matching item")

    def wait_match(self, proc: SimProcess, predicate=None,
                   timeout: float | None = None) -> Any:
        """Block until a matching item is queued; returns it WITHOUT
        removing it (MPI_Probe semantics)."""
        deadline = None if timeout is None else self.kernel.now + timeout
        while True:
            for item in self._items:
                if predicate is None or predicate(item):
                    trace_acquire(self.kernel, self)
                    return item
            remaining = None if deadline is None else \
                max(deadline - self.kernel.now, 0.0)
            self._waiters.wait(proc, timeout=remaining)

    def poll(self, predicate=None) -> bool:
        """Non-destructive probe: is a matching item queued?"""
        return any(predicate is None or predicate(item)
                   for item in self._items)


class Mailbox:
    """FIFO message channel between simulated processes.

    ``capacity=None`` means unbounded (``put`` never blocks); a finite
    capacity makes ``put`` block until space frees up — useful to model
    flow-controlled transports.
    """

    def __init__(self, kernel: SimKernel, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be None or >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters = WaitQueue(kernel, owner=self, role="get")
        self._putters = WaitQueue(kernel, owner=self, role="put")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    def put(self, proc: SimProcess, item: Any) -> None:
        """Append ``item``; blocks while the mailbox is full."""
        while self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.wait(proc)
        trace_release(self.kernel, self)
        self._items.append(item)
        self._getters.wake_all()

    def put_nowait(self, item: Any) -> None:
        """Append without blocking (kernel callbacks use this); raises if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise OverflowError("mailbox full")
        trace_release(self.kernel, self)
        self._items.append(item)
        self._getters.wake_all()

    def get(self, proc: SimProcess, timeout: float | None = None) -> Any:
        """Pop the oldest item; blocks while the mailbox is empty.

        With ``timeout``, raises :class:`SimTimeout` on expiry."""
        deadline = None if timeout is None else self.kernel.now + timeout
        while not self._items:
            remaining = None if deadline is None else \
                max(deadline - self.kernel.now, 0.0)
            self._getters.wait(proc, timeout=remaining)
        trace_acquire(self.kernel, self)
        item = self._items.popleft()
        self._putters.wake_all()
        return item

    def get_nowait(self) -> Any:
        if not self._items:
            raise LookupError("mailbox empty")
        trace_acquire(self.kernel, self)
        item = self._items.popleft()
        self._putters.wake_all()
        return item

    def peek(self) -> Any:
        if not self._items:
            raise LookupError("mailbox empty")
        return self._items[0]
