"""Deterministic discrete-event simulation kernel.

This package provides the execution substrate for the whole Padico
reproduction: the kernel hands out a single "run token" so exactly one
simulated process executes at any instant and every run is fully
deterministic — a total order over ``(time, shuffle, seq)`` event keys.

The virtual clock (:attr:`SimKernel.now`, seconds as ``float``) stands in
for the wall clock of the paper's testbed; all latencies and bandwidths
reported by the benchmarks are read off this clock.

Public API
----------
- :class:`SimKernel` — event loop, virtual clock, process management.
- :class:`SimProcess` — a simulated process, run by a switch backend.
- :class:`Timer` — cancellable scheduled callback handle.
- :func:`run_processes` — run a batch of process functions to completion.
- Exceptions: :class:`SimShutdown`, :class:`SimInterrupt`,
  :class:`SimDeadlockError`, :class:`SimProcessError`,
  :class:`BackendUnavailableError`.
- Switch backends (:mod:`repro.sim.backends`): :class:`SwitchBackend`
  protocol, :class:`ThreadBackend`, :class:`GreenletBackend`,
  :class:`TrampolineBackend`, plus :func:`available_backends` and
  :func:`best_available_backend`.
- Synchronisation primitives in :mod:`repro.sim.sync`: :class:`Mailbox`,
  :class:`SimEvent`, :class:`SimLock`, :class:`SimSemaphore`,
  :class:`SimCondition`, :class:`SimBarrier`, :class:`WaitQueue`.

Backend selection contract
--------------------------
``SimKernel(backend=...)`` accepts a backend name (``"thread"`` — the
default, ``"greenlet"``, ``"trampoline"``), a :class:`SwitchBackend`
instance, or None.  With None, the ``REPRO_SIM_BACKEND`` environment
variable is consulted before falling back to the default.  Unknown
names raise ``ValueError`` listing the valid set; ``"greenlet"``
raises :class:`BackendUnavailableError` when the optional package (the
``repro[sim-fast]`` extra) is missing.  Every backend preserves the
same event order bit for bit — see :mod:`repro.sim.backends` for the
determinism contract and ``docs/KERNEL.md`` for the architecture.
"""

from repro.sim.kernel import (
    SimDeadlockError,
    SimInterrupt,
    SimKernel,
    SimProcess,
    SimProcessError,
    SimShutdown,
    Timer,
    run_processes,
)
from repro.sim.backends import (
    BackendUnavailableError,
    GreenletBackend,
    SwitchBackend,
    ThreadBackend,
    TrampolineBackend,
    available_backends,
    best_available_backend,
)
from repro.sim.sync import (
    Mailbox,
    SimTimeout,
    MatchQueue,
    SimBarrier,
    SimCondition,
    SimEvent,
    SimLock,
    SimSemaphore,
    WaitQueue,
)
from repro.sim.waitgraph import format_wait_graph, wait_edges

__all__ = [
    "SimKernel",
    "SimProcess",
    "Timer",
    "run_processes",
    "SimShutdown",
    "SimInterrupt",
    "SimDeadlockError",
    "SimProcessError",
    "BackendUnavailableError",
    "SwitchBackend",
    "ThreadBackend",
    "GreenletBackend",
    "TrampolineBackend",
    "available_backends",
    "best_available_backend",
    "Mailbox",
    "MatchQueue",
    "SimTimeout",
    "SimEvent",
    "SimLock",
    "SimSemaphore",
    "SimCondition",
    "SimBarrier",
    "WaitQueue",
    "format_wait_graph",
    "wait_edges",
]
