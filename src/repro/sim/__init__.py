"""Deterministic discrete-event simulation kernel.

This package provides the execution substrate for the whole Padico
reproduction: simulated grid processes are ordinary Python threads, but
the kernel hands out a single "run token" so exactly one simulated
process executes at any instant and every run is fully deterministic.

The virtual clock (:attr:`SimKernel.now`, seconds as ``float``) stands in
for the wall clock of the paper's testbed; all latencies and bandwidths
reported by the benchmarks are read off this clock.

Public API
----------
- :class:`SimKernel` — event loop, virtual clock, process management.
- :class:`SimProcess` — a simulated process (thread-backed coroutine).
- :class:`Timer` — cancellable scheduled callback handle.
- Exceptions: :class:`SimShutdown`, :class:`SimInterrupt`,
  :class:`SimDeadlockError`, :class:`SimProcessError`.
- Synchronisation primitives in :mod:`repro.sim.sync`: :class:`Mailbox`,
  :class:`SimEvent`, :class:`SimLock`, :class:`SimSemaphore`,
  :class:`SimCondition`, :class:`SimBarrier`, :class:`WaitQueue`.
"""

from repro.sim.kernel import (
    SimDeadlockError,
    SimInterrupt,
    SimKernel,
    SimProcess,
    SimProcessError,
    SimShutdown,
    Timer,
)
from repro.sim.sync import (
    Mailbox,
    SimTimeout,
    MatchQueue,
    SimBarrier,
    SimCondition,
    SimEvent,
    SimLock,
    SimSemaphore,
    WaitQueue,
)
from repro.sim.waitgraph import format_wait_graph, wait_edges

__all__ = [
    "SimKernel",
    "SimProcess",
    "Timer",
    "SimShutdown",
    "SimInterrupt",
    "SimDeadlockError",
    "SimProcessError",
    "Mailbox",
    "MatchQueue",
    "SimTimeout",
    "SimEvent",
    "SimLock",
    "SimSemaphore",
    "SimCondition",
    "SimBarrier",
    "WaitQueue",
    "format_wait_graph",
    "wait_edges",
]
