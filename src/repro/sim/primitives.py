"""One registry of cooperative-kernel synchronisation primitives.

Both halves of the race tooling read this table, so a primitive added
here is automatically visible to the dynamic *and* the static detector:

* the dynamic sanitizer threads its happens-before edges through
  :func:`trace_release` / :func:`trace_acquire`, which every primitive
  in :mod:`repro.sim.sync` calls on its release/acquire paths;
* the static ``sim-race`` analysis (:mod:`repro.analysis.simrace`)
  derives its may-yield seeds, lock classes and channel-op tables from
  the same entries (:func:`yield_seed_quals`, :func:`lock_classes`,
  :func:`channel_ops`).

The module is deliberately import-free (no kernel/sync imports): the
static analyser loads it for the tables alone, and ``sync.py`` imports
it without creating a cycle.
"""

from __future__ import annotations

from typing import Any

#: class name -> behaviour of its methods under the cooperative kernel.
#:
#: ``yields``    methods that may switch away from the calling process
#:               (every one of these is a point where an interrupt or
#:               timeout can be delivered, and where atomicity between
#:               yield points ends);
#: ``releases``  release-style operations — the ``hb_release`` side of
#:               a happens-before edge;
#: ``acquires``  acquire-style operations — the ``hb_acquire`` side;
#: ``lock``      True for primitives that carry mutual exclusion and
#:               therefore participate in the static lockset analysis.
PRIMITIVES: dict[str, dict] = {
    "WaitQueue": {
        "module": "repro.sim.sync",
        "yields": ("wait",),
        "releases": ("wake_one", "wake_all"),
        "acquires": (),
        "lock": False,
    },
    "SimEvent": {
        "module": "repro.sim.sync",
        "yields": ("wait",),
        "releases": ("set",),
        "acquires": ("wait",),
        "lock": False,
    },
    "SimSemaphore": {
        "module": "repro.sim.sync",
        "yields": ("acquire",),
        "releases": ("release",),
        "acquires": ("acquire",),
        "lock": True,
    },
    "SimLock": {
        "module": "repro.sim.sync",
        "yields": ("acquire",),
        "releases": ("release",),
        "acquires": ("acquire",),
        "lock": True,
    },
    "SimCondition": {
        "module": "repro.sim.sync",
        "yields": ("wait",),
        "releases": ("notify", "notify_all"),
        "acquires": ("wait",),
        "lock": False,
    },
    "SimBarrier": {
        "module": "repro.sim.sync",
        "yields": ("wait",),
        "releases": ("wait",),
        "acquires": ("wait",),
        "lock": False,
    },
    "MatchQueue": {
        "module": "repro.sim.sync",
        "yields": ("get", "wait_match"),
        "releases": ("put",),
        "acquires": ("get", "get_nowait", "wait_match"),
        "lock": False,
    },
    "Mailbox": {
        "module": "repro.sim.sync",
        "yields": ("put", "get"),
        "releases": ("put", "put_nowait"),
        "acquires": ("get", "get_nowait"),
        "lock": False,
    },
    "SimProcess": {
        "module": "repro.sim.kernel",
        "yields": ("sleep", "suspend", "join", "yield_"),
        "releases": (),
        "acquires": (),
        "lock": False,
    },
    "SimKernel": {
        "module": "repro.sim.kernel",
        "yields": ("run", "run_until_complete"),
        "releases": (),
        "acquires": (),
        "lock": False,
    },
}

#: method names too generic to trust without knowing the receiver type
#: (``dict.get``, ``str.join``, ``list.put`` lookalikes, ...) — the
#: static analysis only treats these as primitive operations when the
#: receiver is typed through the registry.
AMBIGUOUS_METHODS = frozenset({
    "get", "put", "join", "set", "release", "run", "run_until_complete",
    "notify", "notify_all",
})

#: yield-method names distinctive enough to trust on *any* receiver
#: (the static analysis' untyped fallback).
YIELD_METHOD_FALLBACK = frozenset(
    m for info in PRIMITIVES.values() for m in info["yields"]
) - AMBIGUOUS_METHODS


def yield_seed_quals() -> frozenset:
    """Fully qualified may-yield seeds, e.g. ``repro.sim.sync.Mailbox.get``."""
    return frozenset(
        f"{info['module']}.{name}.{method}"
        for name, info in PRIMITIVES.items()
        for method in info["yields"])


def lock_classes() -> frozenset:
    """Primitive class names that carry mutual exclusion."""
    return frozenset(n for n, info in PRIMITIVES.items() if info["lock"])


def channel_ops() -> tuple[dict, dict]:
    """``(releases, acquires)``: class name -> method-name tuple."""
    rel = {n: info["releases"] for n, info in PRIMITIVES.items()}
    acq = {n: info["acquires"] for n, info in PRIMITIVES.items()}
    return rel, acq


# ----------------------------------------------------------------------
# happens-before edge emission (the dynamic half)
# ----------------------------------------------------------------------
def trace_release(kernel: Any, primitive: Any) -> None:
    """Report a release-style operation on ``primitive`` to the kernel's
    tracer, if one is installed (free when none is)."""
    tracer = kernel._tracer
    if tracer is not None:
        tracer.hb_release(primitive)


def trace_acquire(kernel: Any, primitive: Any) -> None:
    """Report an acquire-style operation on ``primitive`` to the kernel's
    tracer, if one is installed (free when none is)."""
    tracer = kernel._tracer
    if tracer is not None:
        tracer.hb_acquire(primitive)
