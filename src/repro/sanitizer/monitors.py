"""Runtime typestate monitors for the abstraction layer.

The VLink/Circuit lifecycle is a small DFA (paper §4.3.2: establish,
use, close); middleware that violates it — sending on an endpoint that
was never connected, reusing a closed circuit, binding the same port
twice — corrupts the arbitration layer's bookkeeping in ways that only
surface much later.  :class:`TypestateMonitor` enforces the DFA at the
moment of violation.

The monitor is attached to a :class:`~repro.padicotm.runtime.
PadicoRuntime` (``runtime.observe(TypestateMonitor())`` or via
:class:`~repro.sanitizer.api.Sanitizer`); the abstraction and
arbitration layers notify it through duck-typed hooks guarded by
``is not None`` tests, so a runtime without a monitor pays one attribute
load per operation.  The static twin of this monitor is the ``tys-*``
rule family in :mod:`repro.analysis.typestate`.
"""

from __future__ import annotations

from typing import Any

#: VLink endpoint / Circuit lifecycle states
RAW = "raw"              # constructed, not yet part of a connected pair
CONNECTED = "connected"  # established; send/recv legal
CLOSED = "closed"        # terminal

#: events accepted in each VLink endpoint state
_VLINK_DFA: dict[str, dict[str, str]] = {
    RAW: {"connect": CONNECTED, "close": CLOSED},
    CONNECTED: {"send": CONNECTED, "recv": CONNECTED, "poll": CONNECTED,
                "close": CLOSED},
    CLOSED: {"close": CLOSED},  # close is idempotent; everything else dies
}

_CIRCUIT_DFA: dict[str, dict[str, str]] = {
    CONNECTED: {"send": CONNECTED, "recv": CONNECTED, "poll": CONNECTED,
                "probe": CONNECTED, "close": CLOSED},
    CLOSED: {"close": CLOSED},
}


class TypestateError(RuntimeError):
    """A protocol-lifecycle violation on the abstraction layer."""


class TypestateMonitor:
    """Per-runtime lifecycle DFA enforcement + claim balancing.

    States are keyed by object identity; bound listener ports by
    (process name, port).  NIC claims are counted per (process, owner)
    so :meth:`unreleased_claims` can report drivers opened but never
    closed — the arbitration-layer analogue of a leaked file descriptor.
    """

    def __init__(self) -> None:
        self._states: dict[int, str] = {}       # id(obj) -> state
        self._objs: dict[int, Any] = {}         # keep ids stable/alive
        self._bound: dict[tuple[str, str], Any] = {}
        self._claims: dict[tuple[str, str], int] = {}
        #: every violation raised, for post-run reporting
        self.violations: list[str] = []

    # ------------------------------------------------------------------
    def _step(self, dfa: dict, obj: Any, kind: str, event: str) -> None:
        key = id(obj)
        state = self._states.get(key)
        if state is None:
            # first sight: VLink endpoints announce "create" explicitly;
            # an unannounced object seen mid-protocol is taken at face
            # value (monitor attached to an already-running runtime)
            state = RAW if event == "create" else CONNECTED
            self._states[key] = state
            self._objs[key] = obj
            if event == "create":
                return
        nxt = dfa.get(state, {}).get(event)
        if nxt is None:
            message = (f"{kind} typestate violation: {event!r} on "
                       f"{obj!r} in state {state!r} (legal: "
                       f"{sorted(dfa.get(state, {}))})")
            self.violations.append(message)
            raise TypestateError(message)
        self._states[key] = nxt

    # ------------------------------------------------------------------
    # hooks called by the abstraction layer
    # ------------------------------------------------------------------
    def on_vlink(self, endpoint: Any, event: str) -> None:
        """VLink endpoint lifecycle: create/connect/send/recv/poll/close."""
        self._step(_VLINK_DFA, endpoint, "VLink", event)

    def on_circuit(self, circuit: Any, event: str) -> None:
        """Circuit lifecycle: establish/send/recv/poll/probe/close."""
        if event == "establish":
            self._states[id(circuit)] = CONNECTED
            self._objs[id(circuit)] = circuit
            return
        self._step(_CIRCUIT_DFA, circuit, "Circuit", event)

    def on_bind(self, process: str, port: str, listener: Any) -> None:
        """A VLink listener binding (process, port); double bind dies."""
        key = (process, port)
        if key in self._bound:
            message = (f"VLink typestate violation: double bind of port "
                       f"{port!r} in process {process!r}")
            self.violations.append(message)
            raise TypestateError(message)
        self._bound[key] = listener

    def on_unbind(self, process: str, port: str) -> None:
        self._bound.pop((process, port), None)

    # ------------------------------------------------------------------
    # hooks called by the arbitration layer
    # ------------------------------------------------------------------
    def on_claim(self, process: str, claim: Any) -> None:
        key = (process, claim.owner)
        self._claims[key] = self._claims.get(key, 0) + 1

    def on_release(self, process: str, owner: str, dropped: int) -> None:
        key = (process, owner)
        if self._claims.get(key, 0) < dropped:
            message = (f"arbitration typestate violation: {owner!r} in "
                       f"{process!r} released {dropped} claim(s) but "
                       f"holds {self._claims.get(key, 0)}")
            self.violations.append(message)
            raise TypestateError(message)
        remaining = self._claims.get(key, 0) - dropped
        if remaining:
            self._claims[key] = remaining
        else:
            self._claims.pop(key, None)

    def unreleased_claims(self) -> list[tuple[str, str, int]]:
        """(process, owner, count) for every claim never released.

        Cooperative subsystems legitimately hold claims for the process
        lifetime, so this is a report, not an error — the static
        ``tys-unreleased-claim`` rule flags the *direct* claims that
        must be balanced.
        """
        return [(process, owner, count)
                for (process, owner), count in sorted(self._claims.items())]

    def states(self) -> dict[Any, str]:
        """Current lifecycle state of every monitored object."""
        return {self._objs[key]: state
                for key, state in self._states.items()}
