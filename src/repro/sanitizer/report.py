"""Human-readable sanitizer reports.

One place that renders everything the sanitizer knows — recorded races
(both access sites), typestate violations, unreleased arbitration
claims — so test failures and the example demo print one coherent
artefact instead of scattered fragments.
"""

from __future__ import annotations

from typing import Any


def render_races(detector: Any) -> str:
    """Every recorded race, both access sites each."""
    if not detector.races:
        return "races: none detected"
    lines = [f"races: {len(detector.races)} detected"]
    for race in detector.races:
        lines.append("  " + race.render().replace("\n", "\n  "))
    return "\n".join(lines)


def render_typestate(monitor: Any) -> str:
    """Typestate violations plus any unreleased arbitration claims."""
    lines = []
    if monitor.violations:
        lines.append(f"typestate violations: {len(monitor.violations)}")
        for violation in monitor.violations:
            lines.append(f"  {violation}")
    else:
        lines.append("typestate violations: none")
    pending = monitor.unreleased_claims()
    if pending:
        lines.append("unreleased NIC claims:")
        for process, owner, count in pending:
            lines.append(f"  {process}: {owner} holds {count} claim(s)")
    return "\n".join(lines)


def render_summary(detector: Any = None, monitor: Any = None) -> str:
    """Full sanitizer report; either part may be absent."""
    parts = ["sim-san report"]
    if detector is not None:
        parts.append(render_races(detector))
    if monitor is not None:
        parts.append(render_typestate(monitor))
    return "\n".join(parts)
