"""The ``Sanitizer`` facade: one object that wires everything up.

::

    from repro.sanitizer import Sanitizer

    kernel = SimKernel()
    with Sanitizer(kernel) as san:
        shared = san.tracked({}, label="shared-state")
        ... spawn processes, kernel.run() ...
    # __exit__ raises RaceError if anything raced

Attach to a :class:`~repro.padicotm.runtime.PadicoRuntime` instead to
get the VLink/Circuit typestate monitor as well::

    runtime = PadicoRuntime(topology)
    san = Sanitizer(runtime=runtime)

Everything uninstalls cleanly (:meth:`uninstall`), restoring the
zero-overhead configuration.
"""

from __future__ import annotations

from typing import Any

from repro.sanitizer.monitors import TypestateMonitor
from repro.sanitizer.races import RaceDetector
from repro.sanitizer.report import render_summary
from repro.sanitizer.tracked import tracked as _tracked


class Sanitizer:
    """Installs the race detector on a kernel (and, when given a
    runtime, the typestate monitor too); collects all findings."""

    def __init__(self, kernel: Any = None, runtime: Any = None,
                 on_race: str = "record"):
        if kernel is None and runtime is None:
            raise ValueError("pass a SimKernel and/or a PadicoRuntime")
        if kernel is None:
            kernel = runtime.kernel
        self.kernel = kernel
        self.runtime = runtime
        self.detector = RaceDetector(kernel, on_race=on_race)
        kernel.attach_tracer(self.detector)
        self.monitor: TypestateMonitor | None = None
        if runtime is not None:
            self.monitor = TypestateMonitor()
            runtime.observe(self.monitor)

    # ------------------------------------------------------------------
    def tracked(self, obj: Any, label: str | None = None) -> Any:
        """Wrap ``obj`` so every access feeds the race detector."""
        return _tracked(obj, self.detector, label)

    @property
    def races(self) -> list:
        return self.detector.races

    def check(self) -> None:
        """Raise :class:`~repro.sanitizer.races.RaceError` on any race."""
        self.detector.check()

    def report(self) -> str:
        return render_summary(self.detector, self.monitor)

    def uninstall(self) -> None:
        """Detach all hooks; the kernel/runtime run uninstrumented again.

        Uses the composable attach/detach protocol, so other observers
        (e.g. a :class:`repro.obs.TraceRecorder`) stay attached."""
        self.kernel.detach_tracer(self.detector)
        if self.runtime is not None and self.monitor is not None:
            self.runtime.unobserve(self.monitor)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Sanitizer":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.uninstall()
        if exc_type is None:
            self.check()
