"""Happens-before race detection for the cooperative kernel.

:class:`RaceDetector` is a kernel *tracer*: installed on
``SimKernel.tracer`` it receives every scheduling event and maintains a
vector clock per execution context (context 0 is the kernel event loop;
each :class:`~repro.sim.kernel.SimProcess` gets its own id).  Edges come
from three sources:

1. **the scheduler** — every scheduled event carries the scheduling
   context's clock to the instant it fires (``on_schedule``/``on_fire``),
   which covers spawn, wake, sleep, interrupt and join ordering without
   any knowledge of the primitives built on top;
2. **sync primitives** — ``repro.sim.sync`` reports release-style and
   acquire-style operations (``hb_release``/``hb_acquire``), covering
   the data paths that never block (a mailbox ``get`` finding an item
   already queued must still order the getter after the putter);
3. **joins** — ``SimProcess.join`` reports the join edge directly.

Shared-state accesses are reported by the :mod:`~repro.sanitizer.tracked`
proxies; two accesses to the same cell from different contexts, at least
one a write, with neither ordered before the other, are a race.  Both
access sites (file, line, function) are kept and reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sanitizer.clocks import VectorClock

#: context id of the kernel event loop (timer callbacks, main thread)
KERNEL_CTX = 0


@dataclass(frozen=True)
class Access:
    """One observed read or write of a tracked cell."""

    ctx: int                    # context id
    ctx_name: str               # process name, or "<kernel>"
    write: bool
    site: tuple[str, int, str]  # (filename, line, function)
    clock: VectorClock

    @property
    def kind(self) -> str:
        return "write" if self.write else "read"

    def render(self) -> str:
        filename, line, function = self.site
        return (f"{self.kind} by {self.ctx_name!r} at "
                f"{filename}:{line} in {function}")


@dataclass(frozen=True)
class RaceReport:
    """Two unsynchronised accesses, at least one a write."""

    label: str                  # tracked object label
    key: Any                    # dict key / attribute / index
    prior: Access
    current: Access

    def render(self) -> str:
        return (f"data race on {self.label}[{self.key!r}]:\n"
                f"    {self.prior.render()}\n"
                f"    {self.current.render()}\n"
                f"    (no happens-before edge between the two accesses)")


class RaceError(AssertionError):
    """Raised for (or on :meth:`RaceDetector.check` after) a data race."""

    def __init__(self, races: list[RaceReport]):
        self.races = races
        plural = "s" if len(races) != 1 else ""
        super().__init__(
            f"{len(races)} data race{plural} detected:\n"
            + "\n".join(r.render() for r in races))


class RaceDetector:
    """Kernel tracer + access checker (see module docstring).

    ``on_race="record"`` (default) accumulates :attr:`races` for a later
    :meth:`check`; ``"raise"`` raises :class:`RaceError` at the racing
    access, inside the guilty process.
    """

    def __init__(self, kernel: Any, on_race: str = "record"):
        if on_race not in ("record", "raise"):
            raise ValueError(f"on_race must be 'record' or 'raise', "
                             f"not {on_race!r}")
        self.kernel = kernel
        self.on_race = on_race
        self.races: list[RaceReport] = []
        self._ctx_ids: dict[Any, int] = {}    # SimProcess -> context id
        self._proc_clocks: dict[Any, VectorClock] = {}
        self._kernel_clock = VectorClock()
        self._obj_clocks: dict[Any, VectorClock] = {}
        #: (label, key) -> {(ctx, write): Access} — last access per kind
        self._cells: dict[tuple, dict[tuple[int, bool], Access]] = {}
        self._seen: set[tuple] = set()        # race dedup fingerprints

    # ------------------------------------------------------------------
    # context bookkeeping
    # ------------------------------------------------------------------
    def _ctx_of(self, proc: Any) -> int:
        cid = self._ctx_ids.get(proc)
        if cid is None:
            cid = len(self._ctx_ids) + 1  # 0 is the kernel context
            self._ctx_ids[proc] = cid
        return cid

    def _current(self) -> tuple[int, str, VectorClock]:
        """(context id, name, clock) of whoever is executing right now."""
        proc = self.kernel._current
        if proc is None:
            return KERNEL_CTX, "<kernel>", self._kernel_clock
        cid = self._ctx_of(proc)
        clock = self._proc_clocks.get(proc)
        if clock is None:
            clock = self._proc_clocks[proc] = VectorClock()
        return cid, proc.name, clock

    # ------------------------------------------------------------------
    # kernel tracer protocol
    # ------------------------------------------------------------------
    def on_schedule(self, timer: Any) -> None:
        cid, _name, clock = self._current()
        timer.trace_clock = clock.copy()
        clock.tick(cid)  # later actions are not ordered before the event

    def on_fire(self, timer: Any) -> None:
        snapshot = timer.trace_clock
        self._kernel_clock = snapshot if snapshot is not None \
            else VectorClock()
        self._kernel_clock.tick(KERNEL_CTX)

    def on_switch(self, proc: Any) -> None:
        # called before the kernel hands over the run token, so
        # _current() still names the dispatching context
        cid = self._ctx_of(proc)
        _eid, _name, edge = self._current()
        clock = self._proc_clocks.get(proc)
        if clock is None:
            clock = self._proc_clocks[proc] = VectorClock()
        clock.join(edge)
        clock.tick(cid)

    def on_exit(self, proc: Any) -> None:
        # the exit edge to joiners flows through the wake-up timers the
        # kernel schedules while the exiting process is still current
        pass

    def on_join(self, joiner: Any, target: Any) -> None:
        final = self._proc_clocks.get(target)
        if final is not None:
            _cid, _name, clock = self._current()
            clock.join(final)

    # ------------------------------------------------------------------
    # sync-primitive edges
    # ------------------------------------------------------------------
    def hb_release(self, obj: Any) -> None:
        cid, _name, clock = self._current()
        oc = self._obj_clocks.get(obj)
        if oc is None:
            oc = self._obj_clocks[obj] = VectorClock()
        oc.join(clock)
        clock.tick(cid)  # post-release actions are a new segment

    def hb_acquire(self, obj: Any) -> None:
        oc = self._obj_clocks.get(obj)
        if oc is not None:
            _cid, _name, clock = self._current()
            clock.join(oc)

    # ------------------------------------------------------------------
    # shared-state accesses (called by the tracked() proxies)
    # ------------------------------------------------------------------
    def on_access(self, label: str, key: Any, write: bool,
                  site: tuple[str, int, str]) -> None:
        cid, name, clock = self._current()
        access = Access(cid, name, write, site, clock.copy())
        try:
            cell = (label, key)
            history = self._cells.setdefault(cell, {})
        except TypeError:  # unhashable key: fall back to its repr
            cell = (label, repr(key))
            history = self._cells.setdefault(cell, {})
        for prior in history.values():
            if prior.ctx == cid:
                continue
            if not (write or prior.write):
                continue  # two reads never race
            if clock.get(prior.ctx) >= prior.clock.get(prior.ctx):
                continue  # prior access happens-before this one
            self._report(RaceReport(label, key, prior, access))
        history[(cid, write)] = access

    def _report(self, race: RaceReport) -> None:
        fingerprint = (race.label, repr(race.key),
                       race.prior.site, race.prior.write,
                       race.current.site, race.current.write)
        if fingerprint in self._seen:
            return
        self._seen.add(fingerprint)
        self.races.append(race)
        if self.on_race == "raise":
            raise RaceError([race])

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`RaceError` if any race was recorded."""
        if self.races:
            raise RaceError(list(self.races))
