"""``repro.sanitizer`` — sim-san: a dynamic sanitizer for the
cooperative kernel and the PadicoTM abstraction layer.

Three tools, all opt-in and all zero-overhead when not installed
(see ``docs/SANITIZER.md``):

* **Happens-before race detection** — vector clocks per
  :class:`~repro.sim.kernel.SimProcess`, edges from the scheduler and
  every :mod:`repro.sim.sync` primitive, plus :func:`tracked` proxies
  that flag unsynchronised read/write pairs on shared state with *both*
  access sites reported.
* **Typestate monitoring** — the VLink/Circuit lifecycle DFA (no
  send-before-connect, no use-after-close, no double-bind, balanced
  claims on arbitration drivers), enforced at the violating call.  The
  static twin is the ``tys-*`` rule family in ``repro-lint``.
* **Seeded schedule exploration** — ``SimKernel(seed=N)`` permutes
  same-instant event order deterministically;
  :func:`explore_schedules` / :func:`assert_schedule_deterministic`
  rerun a scenario under N seeds and diff results bit-for-bit, turning
  latent interleaving bugs into seed-stamped, replayable failures.

:class:`Sanitizer` wires the first two onto a kernel/runtime pair.
"""

from repro.sanitizer.api import Sanitizer
from repro.sanitizer.clocks import VectorClock
from repro.sanitizer.explore import (
    ScheduleDivergenceError,
    ScheduleReport,
    ScheduleRun,
    assert_schedule_deterministic,
    explore_schedules,
    run_scenario,
)
from repro.sanitizer.monitors import TypestateError, TypestateMonitor
from repro.sanitizer.races import Access, RaceDetector, RaceError, RaceReport
from repro.sanitizer.report import render_summary
from repro.sanitizer.tracked import tracked

__all__ = [
    "Access",
    "RaceDetector",
    "RaceError",
    "RaceReport",
    "Sanitizer",
    "ScheduleDivergenceError",
    "ScheduleReport",
    "ScheduleRun",
    "TypestateError",
    "TypestateMonitor",
    "VectorClock",
    "assert_schedule_deterministic",
    "explore_schedules",
    "render_summary",
    "run_scenario",
    "tracked",
]
