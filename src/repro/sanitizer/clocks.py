"""Vector clocks for the happens-before race detector.

A clock maps an execution-context id (a small integer assigned by the
detector: 0 is the kernel context, processes get 1, 2, ... in spawn
order) to a logical timestamp.  Missing components are implicitly 0, so
clocks stay sparse even in simulations with thousands of processes.
"""

from __future__ import annotations

from typing import Iterable


class VectorClock:
    """Sparse vector clock over integer context ids."""

    __slots__ = ("_c",)

    def __init__(self, items: Iterable[tuple[int, int]] | None = None):
        self._c: dict[int, int] = dict(items or ())

    def copy(self) -> "VectorClock":
        clone = VectorClock()
        clone._c = dict(self._c)
        return clone

    def get(self, cid: int) -> int:
        return self._c.get(cid, 0)

    def tick(self, cid: int) -> None:
        """Advance this context's own component (start a new segment)."""
        self._c[cid] = self._c.get(cid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Componentwise maximum, in place (the happens-before merge)."""
        mine = self._c
        for cid, t in other._c.items():
            if t > mine.get(cid, 0):
                mine[cid] = t

    def dominates(self, other: "VectorClock") -> bool:
        """True iff ``other <= self`` componentwise (other is visible)."""
        mine = self._c
        return all(t <= mine.get(cid, 0) for cid, t in other._c.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{c}:{t}" for c, t in sorted(self._c.items()))
        return f"<VC {inner}>"
