"""Seeded schedule exploration: turn latent races into reproducible bugs.

The kernel's event order is a total order over ``(time, seq)``; a
*seeded* kernel (``SimKernel(seed=N)``) deterministically permutes the
pop order of same-instant events, which is exactly the freedom a real
scheduler has.  A correctly synchronised scenario produces bit-identical
results under every seed; a racy one diverges — and because each seed is
deterministic, the divergent schedule replays perfectly.

Usage (as a pytest helper)::

    def scenario(kernel):
        ... spawn processes on kernel, kernel.run() ...
        return result            # anything with a stable repr

    assert_schedule_deterministic(scenario, seeds=5)

The fingerprint compared across seeds is ``(repr(result), final
simulated time)`` — bit-for-bit, as the determinism contract demands.
(The raw event count is reported but not compared: a correctly
synchronised scenario may block and wake a different number of times
under different interleavings without its *result* changing.)  A
scenario that *raises* under some seed fingerprints the exception
instead, so crashes are first-class divergences with the seed stamped
on the failure.

``python -m repro.sanitizer --seeds 5`` runs a built-in
producer/consumer smoke scenario (the ``make check`` schedule gate),
once per available switch backend that supports sync primitives —
the seeded order must reproduce bit-for-bit on every backend.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.sim.kernel import SimKernel

Scenario = Callable[[SimKernel], Any]


@dataclass(frozen=True)
class ScheduleRun:
    """Outcome of one scenario execution under one seed."""

    seed: int | None
    fingerprint: tuple[str, float]  # (repr of result or exc, final time)
    events: int = 0
    error: BaseException | None = None

    def render(self) -> str:
        result, now = self.fingerprint
        return (f"seed={self.seed}: events={self.events} t={now!r} "
                f"result={result}")


@dataclass(frozen=True)
class ScheduleReport:
    """All runs of one exploration plus the divergence verdict."""

    runs: tuple[ScheduleRun, ...]
    baseline: ScheduleRun

    @property
    def divergent(self) -> tuple[ScheduleRun, ...]:
        return tuple(r for r in self.runs
                     if r.fingerprint != self.baseline.fingerprint)

    @property
    def deterministic(self) -> bool:
        return not self.divergent

    def render(self) -> str:
        lines = [self.baseline.render() + "  (baseline)"]
        for run in self.runs:
            marker = "" if run.fingerprint == self.baseline.fingerprint \
                else "  << DIVERGES"
            lines.append(run.render() + marker)
        return "\n".join(lines)


class ScheduleDivergenceError(AssertionError):
    """A scenario produced different results under different schedules.

    Carries the first divergent seed so the failure replays exactly:
    rerun the scenario on ``SimKernel(seed=...)``.
    """

    def __init__(self, report: ScheduleReport):
        self.report = report
        first = report.divergent[0]
        super().__init__(
            f"schedule divergence: seed {first.seed} does not reproduce "
            f"the baseline (replay with SimKernel(seed={first.seed}))\n"
            + report.render())


def run_scenario(scenario: Scenario, seed: int | None = None,
                 backend: str | None = None) -> ScheduleRun:
    """Run ``scenario`` on a fresh (optionally seeded) kernel.

    ``backend`` picks the switch backend (None honours
    ``REPRO_SIM_BACKEND`` / the default, like any other kernel)."""
    kernel = SimKernel(seed=seed, backend=backend)
    error: BaseException | None = None
    try:
        with kernel:
            result = scenario(kernel)
        outcome = repr(result)
    except Exception as exc:  # noqa: BLE001 - a crash IS the fingerprint
        error = exc
        outcome = f"raised {type(exc).__name__}: {exc}"
    return ScheduleRun(seed, (outcome, kernel.now),
                       kernel.events_processed, error)


def explore_schedules(scenario: Scenario,
                      seeds: int | Sequence[int] = 5,
                      backend: str | None = None) -> ScheduleReport:
    """Run ``scenario`` under the canonical order plus ``seeds`` seeded
    permutations; diff the fingerprints bit-for-bit.

    ``seeds`` is either a count (seeds ``1..N``) or an explicit seed
    sequence.  The unseeded run is always the baseline.  ``backend``
    selects the switch backend for every run (the exploration must be
    deterministic on any of them).
    """
    if isinstance(seeds, int):
        seed_list: Sequence[int] = range(1, seeds + 1)
    else:
        seed_list = seeds
    baseline = run_scenario(scenario, None, backend)
    runs = tuple(run_scenario(scenario, s, backend) for s in seed_list)
    return ScheduleReport(runs, baseline)


def assert_schedule_deterministic(scenario: Scenario,
                                  seeds: int | Sequence[int] = 5,
                                  backend: str | None = None
                                  ) -> ScheduleReport:
    """Pytest helper: raise :class:`ScheduleDivergenceError` unless every
    seed reproduces the baseline bit-for-bit; returns the report."""
    report = explore_schedules(scenario, seeds, backend)
    if not report.deterministic:
        raise ScheduleDivergenceError(report)
    return report


# ----------------------------------------------------------------------
# built-in smoke scenario (the `make check` schedule gate)
# ----------------------------------------------------------------------
def smoke_scenario(kernel: SimKernel) -> tuple:
    """Producer/consumer pipeline: correctly synchronised, so its result
    must be schedule-invariant.  Three producers stamp distinct items at
    distinct instants into a shared mailbox; a consumer drains them."""
    from repro.sim.sync import Mailbox

    box = Mailbox(kernel)
    collected: list = []

    def producer(p, ident: int):
        for i in range(4):
            p.sleep(0.001 * (ident + 1))
            box.put(p, (ident, i))

    def consumer(p):
        for _ in range(12):
            collected.append(box.get(p))

    for ident in range(3):
        kernel.spawn(producer, ident, name=f"producer-{ident}")
    kernel.spawn(consumer, name="consumer")
    kernel.run()
    return (tuple(sorted(collected)), round(kernel.now, 9))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="Seeded schedule-exploration smoke: run the built-in "
                    "producer/consumer scenario under N seeds and diff "
                    "the results bit-for-bit.")
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of seeded permutations (default 5)")
    parser.add_argument("--backend", default="each",
                        help="switch backend to explore under: a backend "
                             "name, or 'each' (default) for every "
                             "available backend that can run the sync-"
                             "primitive smoke scenario")
    args = parser.parse_args(argv)
    if args.backend == "each":
        # the smoke scenario blocks inside Mailbox, a nested call frame
        # the trampoline backend rejects by design
        from repro.sim.backends import available_backends
        backends = [name for name in available_backends()
                    if name != "trampoline"]
    else:
        backends = [args.backend]
    failed = 0
    for backend in backends:
        report = explore_schedules(smoke_scenario, seeds=args.seeds,
                                   backend=backend)
        print(f"--- backend={backend} ---")
        print(report.render())
        if not report.deterministic:
            print(f"schedule exploration [{backend}]: "
                  f"{len(report.divergent)} divergent seed(s)")
            failed += 1
        else:
            print(f"schedule exploration [{backend}]: "
                  f"{len(report.runs)} seed(s) bit-identical to baseline")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
