"""``python -m repro.sanitizer`` — the schedule-exploration smoke gate.

Delegates to :func:`repro.sanitizer.explore.main` (this entry point
avoids the runpy double-import warning that ``-m repro.sanitizer.explore``
triggers, since the package ``__init__`` already imports ``explore``).
"""

from repro.sanitizer.explore import main

if __name__ == "__main__":
    raise SystemExit(main())
