"""``tracked()`` — opt-in shared-state proxies for the race detector.

Wrap any object shared between simulated processes::

    shared = san.tracked({}, label="routing-table")

Every read and write through the proxy reports the access site to the
:class:`~repro.sanitizer.races.RaceDetector`, which flags pairs of
accesses (at least one a write) from different processes with no
happens-before edge between them — i.e. state shared across a yield
point with no lock, event, mailbox or other ordering primitive.

Container-shape operations (iteration, ``len``, ``append``) are modelled
as accesses to a synthetic ``"<structure>"`` cell so that, say, one
process iterating a dict races with another inserting a new key, while
two processes writing *different* keys do not falsely collide.
"""

from __future__ import annotations

import sys
from typing import Any, Iterator, MutableMapping, MutableSequence

#: synthetic cell for container-shape reads/writes
STRUCTURE = "<structure>"


def _site() -> tuple[str, int, str]:
    """(filename, line, function) of the first caller outside this file."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - unreachable in practice
        return ("<unknown>", 0, "<unknown>")
    return (frame.f_code.co_filename, frame.f_lineno,
            frame.f_code.co_name)


class TrackedDict(MutableMapping):
    """Dict proxy reporting per-key accesses to the race detector."""

    __slots__ = ("_target", "_detector", "_label")

    def __init__(self, target: dict, detector: Any, label: str):
        self._target = target
        self._detector = detector
        self._label = label

    def __getitem__(self, key: Any) -> Any:
        self._detector.on_access(self._label, key, False, _site())
        return self._target[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        site = _site()
        if key not in self._target:
            self._detector.on_access(self._label, STRUCTURE, True, site)
        self._detector.on_access(self._label, key, True, site)
        self._target[key] = value

    def __delitem__(self, key: Any) -> None:
        site = _site()
        self._detector.on_access(self._label, key, True, site)
        self._detector.on_access(self._label, STRUCTURE, True, site)
        del self._target[key]

    def __contains__(self, key: Any) -> bool:
        self._detector.on_access(self._label, key, False, _site())
        return key in self._target

    def __iter__(self) -> Iterator:
        self._detector.on_access(self._label, STRUCTURE, False, _site())
        return iter(self._target)

    def __len__(self) -> int:
        self._detector.on_access(self._label, STRUCTURE, False, _site())
        return len(self._target)

    def __repr__(self) -> str:
        return f"<tracked {self._label} {self._target!r}>"


class TrackedList(MutableSequence):
    """List proxy reporting per-index accesses to the race detector."""

    __slots__ = ("_target", "_detector", "_label")

    def __init__(self, target: list, detector: Any, label: str):
        self._target = target
        self._detector = detector
        self._label = label

    def _key(self, index: Any) -> Any:
        return STRUCTURE if isinstance(index, slice) else index

    def __getitem__(self, index: Any) -> Any:
        self._detector.on_access(self._label, self._key(index), False,
                                 _site())
        return self._target[index]

    def __setitem__(self, index: Any, value: Any) -> None:
        self._detector.on_access(self._label, self._key(index), True,
                                 _site())
        self._target[index] = value

    def __delitem__(self, index: Any) -> None:
        site = _site()
        self._detector.on_access(self._label, self._key(index), True, site)
        self._detector.on_access(self._label, STRUCTURE, True, site)
        del self._target[index]

    def insert(self, index: int, value: Any) -> None:
        self._detector.on_access(self._label, STRUCTURE, True, _site())
        self._target.insert(index, value)

    def __len__(self) -> int:
        self._detector.on_access(self._label, STRUCTURE, False, _site())
        return len(self._target)

    def __repr__(self) -> str:
        return f"<tracked {self._label} {self._target!r}>"


class TrackedObject:
    """Attribute proxy: every attribute read/write is an access."""

    __slots__ = ("_target", "_detector", "_label")

    def __init__(self, target: Any, detector: Any, label: str):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_detector", detector)
        object.__setattr__(self, "_label", label)

    def __getattr__(self, name: str) -> Any:
        detector = object.__getattribute__(self, "_detector")
        label = object.__getattribute__(self, "_label")
        detector.on_access(label, name, False, _site())
        return getattr(object.__getattribute__(self, "_target"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        detector = object.__getattribute__(self, "_detector")
        label = object.__getattribute__(self, "_label")
        detector.on_access(label, name, True, _site())
        setattr(object.__getattribute__(self, "_target"), name, value)

    def __repr__(self) -> str:
        label = object.__getattribute__(self, "_label")
        target = object.__getattribute__(self, "_target")
        return f"<tracked {label} {target!r}>"


def tracked(obj: Any, detector: Any, label: str | None = None) -> Any:
    """Wrap ``obj`` in the matching tracked proxy.

    Dicts and lists get container proxies with per-key/per-index cells;
    anything else gets an attribute proxy.  ``label`` names the object
    in race reports (defaults to the type name + a counter-free id-ish
    tag is deliberately avoided: pass a meaningful label).
    """
    if label is None:
        label = type(obj).__name__
    if isinstance(obj, dict):
        return TrackedDict(obj, detector, label)
    if isinstance(obj, list):
        return TrackedList(obj, detector, label)
    return TrackedObject(obj, detector, label)
