"""Simulated grid network substrate.

This package replaces the paper's physical networking hardware
(Myrinet-2000, SCI, Fast-Ethernet, wide-area links) with a deterministic
flow-level simulation:

- :mod:`repro.net.devices` — calibrated technology models
  (:data:`MYRINET_2000`, :data:`SCI`, :data:`ETHERNET_100`, :data:`WAN`);
- :mod:`repro.net.topology` — hosts, switches, *fabrics* (one network of
  one technology), links, routing (networkx shortest paths);
- :mod:`repro.net.flows` — the max-min fair bandwidth allocator and the
  :class:`FlowNetwork` transfer engine.

Why flow-level?  Every quantity the paper's evaluation reports —
per-middleware peak bandwidth, fair sharing between concurrent CORBA and
MPI traffic, latency accumulation along the software stack — is a
property of *rates on shared links*, which the fluid max-min model
computes exactly, with O(1) events per transfer regardless of message
size.
"""

from repro.net.devices import (
    ETHERNET_100,
    GIGABIT_ETHERNET,
    LOOPBACK,
    MYRINET_2000,
    SCI,
    WAN,
    NetworkTechnology,
)
from repro.net.flows import Flow, FlowNetwork, TransferError
from repro.net.topology import (
    Fabric,
    Host,
    Link,
    NoRouteError,
    Topology,
    build_cluster,
    build_grid,
    build_two_site_grid,
)

__all__ = [
    "NetworkTechnology",
    "MYRINET_2000",
    "SCI",
    "ETHERNET_100",
    "GIGABIT_ETHERNET",
    "WAN",
    "LOOPBACK",
    "Topology",
    "Fabric",
    "Host",
    "Link",
    "NoRouteError",
    "build_cluster",
    "build_grid",
    "build_two_site_grid",
    "FlowNetwork",
    "Flow",
    "TransferError",
]
