"""Network accounting: who moved how many bytes over what.

The flow engine already meters every byte per simplex link
(:attr:`FlowNetwork.link_bytes`); this module rolls those meters up into
fabric- and host-level reports — the observability a grid operator (or a
benchmark harness) wants after a run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.flows import FlowNetwork
from repro.net.topology import Link


@dataclass
class LinkStats:
    link: Link
    bytes: float

    def utilisation(self, elapsed: float) -> float:
        """Mean utilisation over ``elapsed`` seconds (0..1)."""
        if elapsed <= 0:
            return 0.0
        return min(self.bytes / (self.link.bandwidth * elapsed), 1.0)

    def to_json(self, elapsed: float) -> dict:
        return {
            "link": self.link.name,
            "src": self.link.src,
            "dst": self.link.dst,
            "bytes": self.bytes,
            "utilisation": self.utilisation(elapsed),
        }


@dataclass
class FabricStats:
    """Per-fabric roll-up.  ``total_bytes`` is *link-level* volume
    (SNMP-style): a 1 MB transfer over a 2-hop route counts 2 MB."""

    name: str
    technology: str
    total_bytes: float = 0.0
    links: list[LinkStats] = field(default_factory=list)

    @property
    def busiest(self) -> LinkStats | None:
        return max(self.links, key=lambda ls: ls.bytes, default=None)

    def to_json(self, elapsed: float) -> dict:
        return {
            "technology": self.technology,
            "total_bytes": self.total_bytes,
            "links": [ls.to_json(elapsed)
                      for ls in sorted(self.links,
                                       key=lambda ls: ls.link.name)],
        }


@dataclass
class NetworkReport:
    """Aggregated traffic report for one simulation run."""

    elapsed: float
    fabrics: dict[str, FabricStats] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return sum(f.total_bytes for f in self.fabrics.values())

    def _link_stats(self):
        for name in sorted(self.fabrics):
            for ls in self.fabrics[name].links:
                yield ls

    def tx_bytes(self, host: str) -> float:
        """Bytes sent out of ``host`` (links whose source is the host)."""
        return sum(ls.bytes for ls in self._link_stats()
                   if ls.link.src == host)

    def rx_bytes(self, host: str) -> float:
        """Bytes received by ``host`` (links whose destination is it)."""
        return sum(ls.bytes for ls in self._link_stats()
                   if ls.link.dst == host)

    def host_bytes(self, host: str) -> float:
        """Bytes that crossed any NIC of ``host`` (tx + rx).

        A self-loop link (src == dst, e.g. a localhost wire constructed
        directly) appears in both the tx and rx sums but crossed the
        host's NIC once, so its volume is subtracted back out rather
        than double-counted.
        """
        self_loop = sum(ls.bytes for ls in self._link_stats()
                        if ls.link.src == host and ls.link.dst == host)
        return self.tx_bytes(host) + self.rx_bytes(host) - self_loop

    def to_json(self) -> dict:
        """Serialise the report in the same spirit as
        :meth:`repro.obs.BenchResult.to_json`: plain JSON types, keys in
        deterministic (sorted) order."""
        return {
            "elapsed": self.elapsed,
            "total_bytes": self.total_bytes,
            "fabrics": {name: self.fabrics[name].to_json(self.elapsed)
                        for name in sorted(self.fabrics)},
        }

    def format(self) -> str:
        """Human-readable table."""
        lines = [f"network traffic over {self.elapsed * 1e3:.3f} ms "
                 f"(virtual):"]
        for name in sorted(self.fabrics):
            f = self.fabrics[name]
            if f.total_bytes == 0:
                continue
            busiest = f.busiest
            busy_txt = ""
            if busiest is not None and self.elapsed > 0:
                busy_txt = (f"  busiest {busiest.link.name} "
                            f"({busiest.utilisation(self.elapsed):.0%})")
            lines.append(f"  {name:12s} ({f.technology:14s}) "
                         f"{f.total_bytes / 1e6:10.2f} MB{busy_txt}")
        if len(lines) == 1:
            lines.append("  (no traffic)")
        return "\n".join(lines)


def format_timeline(network: FlowNetwork, width: int = 60,
                    max_rows: int = 40) -> str:
    """ASCII timeline of completed transfers (one row per flow).

    Rows show when each transfer occupied the network relative to the
    whole run — a poor man's Gantt chart for spotting serialisation
    (stairs) vs overlap (stacked bars)."""
    log = network.flow_log[:max_rows]
    if not log:
        return "(no transfers recorded)"
    t_end = max(end for _s, end, _b, _l, _ok in network.flow_log)
    if t_end <= 0:
        return "(no transfers recorded)"
    lines = [f"transfer timeline, 0 .. {t_end * 1e3:.3f} ms "
             f"({len(network.flow_log)} flows"
             + (f", first {max_rows} shown" if len(network.flow_log)
                > max_rows else "") + "):"]
    for start, end, nbytes, link, ok in log:
        a = int(start / t_end * (width - 1))
        b = max(int(end / t_end * (width - 1)), a + 1)
        bar = " " * a + ("#" if ok else "x") * (b - a)
        bar = bar.ljust(width)
        label = f"{nbytes / 1e6:8.2f} MB  {link}"
        lines.append(f"|{bar}| {label}")
    return "\n".join(lines)


def collect_report(network: FlowNetwork,
                   elapsed: float | None = None) -> NetworkReport:
    """Build a :class:`NetworkReport` from a flow network's meters."""
    if elapsed is None:
        elapsed = network.kernel.now
    report = NetworkReport(elapsed)
    for fabric_name, fabric in network.topology.fabrics.items():
        fstats = FabricStats(fabric_name, fabric.technology.name)
        for link in fabric.links():
            moved = network.link_bytes.get(link, 0.0)
            if moved:
                fstats.links.append(LinkStats(link, moved))
        fstats.total_bytes = sum(ls.bytes for ls in fstats.links)
        report.fabrics[fabric_name] = fstats
    return report
