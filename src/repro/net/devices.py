"""Calibrated network technology models.

Constants are calibrated to the paper's testbed (§4.4: dual-Pentium III
1 GHz, switched Ethernet-100, Myrinet-2000, Linux 2.2) and to the raw
numbers it reports:

- Myrinet-2000 raw hardware bandwidth 250 MB/s; the paper's best
  middleware reaches 240 MB/s = 96 % of it, which we model as the
  effective data-plane rate of a Myrinet link (protocol framing costs);
- MPI one-way latency over PadicoTM/Myrinet is 11 µs, of which we
  attribute 9 µs to the wire+NIC path and 2 µs to the MPI software layer
  (the split is our choice; only the sum is observable);
- Fast-Ethernet TCP peaks around 11.2 MB/s (the Figure-7 reference
  curve) with ≈ 70 µs one-way latency.

Throughout the package, bandwidth is in **bytes/second** (1 MB/s =
1e6 B/s, matching the paper's MB) and latency in **seconds**.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paradigm tags (paper §4.3.1): parallel-oriented networks are driven by
#: a Madeleine-like low-level library, distributed-oriented ones by
#: sockets.
PARALLEL = "parallel"
DISTRIBUTED = "distributed"


@dataclass(frozen=True)
class NetworkTechnology:
    """Static description of one networking technology.

    Attributes
    ----------
    name:
        Human-readable technology name.
    bandwidth:
        Effective data-plane bandwidth of one link, bytes/second.
    latency:
        One-way propagation + NIC latency of one hop, seconds.
    raw_bandwidth:
        Vendor "raw" hardware bandwidth (for efficiency reporting).
    paradigm:
        ``"parallel"`` (SAN: Myrinet, SCI) or ``"distributed"``
        (LAN/WAN: Ethernet, wide-area).
    secure:
        Whether links of this technology are considered physically
        secure (paper §2 "Communication security": a SAN inside one
        machine room is trusted; a WAN is not).
    exclusive_drivers:
        Low-level driver names that demand exclusive access to the NIC
        (paper §4.3.1: "hardware with exclusive access, e.g. Myrinet
        through BIP"); the arbitration layer enforces this.
    """

    name: str
    bandwidth: float
    latency: float
    raw_bandwidth: float = 0.0
    paradigm: str = DISTRIBUTED
    secure: bool = False
    exclusive_drivers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be >= 0")
        if self.paradigm not in (PARALLEL, DISTRIBUTED):
            raise ValueError(f"{self.name}: bad paradigm {self.paradigm!r}")
        if not self.raw_bandwidth:
            object.__setattr__(self, "raw_bandwidth", self.bandwidth)

    @property
    def efficiency(self) -> float:
        """Effective/raw bandwidth ratio (0.96 for our Myrinet model)."""
        return self.bandwidth / self.raw_bandwidth


#: Myrinet-2000 SAN: 250 MB/s raw, 240 MB/s effective (96 %), 9 µs/hop.
#: The paper's Figure 7 peak (MPI, omniORB) sits on this rate.
MYRINET_2000 = NetworkTechnology(
    name="Myrinet-2000",
    bandwidth=240e6,
    latency=4.5e-6,  # 2 hops through the SAN switch = 9 µs one-way
    raw_bandwidth=250e6,
    paradigm=PARALLEL,
    secure=True,
    exclusive_drivers=("BIP", "GM"),
)

#: SCI: the other SAN the paper names (limited non-shareable mappings).
SCI = NetworkTechnology(
    name="SCI",
    bandwidth=85e6,
    latency=2.5e-6,
    raw_bandwidth=100e6,
    paradigm=PARALLEL,
    secure=True,
    exclusive_drivers=("SISCI",),
)

#: Switched Fast-Ethernet with TCP: ~11.2 MB/s effective, 70 µs one-way.
ETHERNET_100 = NetworkTechnology(
    name="Ethernet-100",
    bandwidth=11.2e6,
    latency=35e-6,  # 2 hops through the LAN switch = 70 µs one-way
    raw_bandwidth=12.5e6,
    paradigm=DISTRIBUTED,
    secure=False,
)

#: Gigabit Ethernet (for what-if deployments beyond the paper's testbed).
GIGABIT_ETHERNET = NetworkTechnology(
    name="Gigabit-Ethernet",
    bandwidth=112e6,
    latency=20e-6,
    raw_bandwidth=125e6,
    paradigm=DISTRIBUTED,
    secure=False,
)

#: Wide-area link between sites: 4 MB/s, 5 ms one-way, insecure.
WAN = NetworkTechnology(
    name="WAN",
    bandwidth=4e6,
    latency=5e-3,
    paradigm=DISTRIBUTED,
    secure=False,
)

#: Intra-host loopback (two middleware processes on one machine).
LOOPBACK = NetworkTechnology(
    name="loopback",
    bandwidth=800e6,
    latency=1e-6,
    paradigm=DISTRIBUTED,
    secure=True,
)
