"""Flow-level network simulation with max-min fair bandwidth sharing.

A :class:`Flow` is one in-flight message occupying a route (a list of
simplex :class:`~repro.net.topology.Link`).  Whenever the set of active
flows changes, every flow's progress is advanced at its previous rate
and rates are re-solved with the classic *progressive filling* (max-min
fairness) algorithm: repeatedly find the most-loaded link, give each
flow crossing it an equal share of that link's remaining capacity, fix
those flows, and subtract what they consume elsewhere.

This is the mechanism behind the paper's concurrency experiment
("Concurrent benchmarks (CORBA and MPI at the same time) show the
bandwidth is efficiently shared: each gets 120 MB/s"): two flows across
one 240 MB/s Myrinet host link each receive exactly half.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.net.topology import Link, Topology
from repro.sim.kernel import SimKernel, SimProcess, Timer

#: Residual byte count below which a flow is considered complete
#: (guards against floating-point drift in progress accounting).
_EPS_BYTES = 1e-6


class TransferError(RuntimeError):
    """A transfer failed mid-flight (link down, aborted)."""


class Flow:
    """One in-flight message on the network."""

    __slots__ = ("route", "size", "remaining", "rate", "waiter",
                 "callback", "error", "done", "start_time", "fid")

    def __init__(self, route: Sequence[Link], size: float,
                 waiter: SimProcess | None, callback: Callable | None,
                 start_time: float):
        self.route = list(route)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.waiter = waiter
        self.callback = callback
        self.error: Exception | None = None
        self.done = False
        self.start_time = start_time
        #: observability id; assigned only while a monitor is attached
        self.fid: int | None = None

    def __repr__(self) -> str:
        return (f"<Flow {self.size:.0f}B remaining={self.remaining:.0f} "
                f"rate={self.rate/1e6:.1f}MB/s done={self.done}>")


def maxmin_rates(flows: Sequence[Flow]) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation.

    Each flow receives the largest rate such that no link capacity is
    exceeded and no flow can be increased without decreasing a flow with
    an equal or smaller rate.  Deterministic: ties broken by link
    insertion order.
    """
    link_flows: dict[Link, list[Flow]] = {}
    for f in flows:
        for link in f.route:
            link_flows.setdefault(link, []).append(f)

    capacity = {link: link.bandwidth for link in link_flows}
    unfixed_count = {link: len(fl) for link, fl in link_flows.items()}
    rates: dict[Flow, float] = {}
    # insertion-ordered dict as a set: iteration below must not depend
    # on hash order, or the rates dict's order varies across runs
    unfixed = dict.fromkeys(flows)

    while unfixed:
        # bottleneck link: smallest equal-share among links with demand
        best_link = None
        best_share = None
        for link, count in unfixed_count.items():
            if count <= 0:
                continue
            share = max(capacity[link], 0.0) / count
            if best_share is None or share < best_share:
                best_share = share
                best_link = link
        if best_link is None:  # no flow crosses any link (empty routes)
            for f in unfixed:
                rates[f] = float("inf")
            break
        for f in link_flows[best_link]:
            if f not in unfixed:
                continue
            rates[f] = best_share
            unfixed.pop(f, None)
            for link in f.route:
                capacity[link] -= best_share
                unfixed_count[link] -= 1
    return rates


class FlowNetwork:
    """Transfer engine binding a :class:`Topology` to a :class:`SimKernel`.

    The blocking entry point is :meth:`transfer`; middleware layers call
    it from inside simulated processes.  Bytes crossing each link are
    accounted in :attr:`link_bytes` for white-box assertions in tests.
    """

    def __init__(self, kernel: SimKernel, topology: Topology):
        self.kernel = kernel
        self.topology = topology
        self._flows: list[Flow] = []
        self._last_update = kernel.now
        self._timer: Timer | None = None
        self.link_bytes: dict[Link, float] = {}
        self.completed_flows = 0
        #: completed-transfer records for timeline analysis:
        #: (start time, end time, size bytes, first link name, ok)
        self.flow_log: list[tuple[float, float, float, str, bool]] = []
        #: observability hook surface (see repro.obs); pushed down by
        #: PadicoRuntime.observe, or set directly for standalone use
        self.monitor: Any = None
        self._flow_seq = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer(self, proc: SimProcess, src: str, dst: str, nbytes: float,
                 fabric: str, extra_latency: float = 0.0) -> float:
        """Move ``nbytes`` from ``src`` to ``dst`` over ``fabric``.

        Blocks the calling process for propagation latency plus the
        fluid transfer time; returns the elapsed virtual seconds.
        Raises :class:`TransferError` if a link on the route goes down
        mid-flight, and :class:`NoRouteError` if there is no live path.
        """
        t0 = self.kernel.now
        mon = self.monitor
        if mon is not None:
            mon.on_span_start("net.transfer", cat="net", src=src, dst=dst,
                              nbytes=float(nbytes), fabric=fabric)
        try:
            route = self.topology.route(src, dst, fabric)
            latency = sum(l.latency for l in route) + extra_latency
            if latency > 0:
                proc.sleep(latency)
            if nbytes > 0:
                self.send_on_route(proc, route, nbytes)
        finally:
            if mon is not None:
                mon.on_span_end("net.transfer")
        return self.kernel.now - t0

    def send_on_route(self, proc: SimProcess, route: Sequence[Link],
                      nbytes: float) -> None:
        """Blocking fluid transfer on an explicit route (no latency)."""
        if nbytes <= 0:
            return
        if not route:  # same-host, zero-cost copy handled by caller
            return
        flow = self._add_flow(route, nbytes, waiter=proc)
        try:
            proc.suspend()
        except BaseException:
            self._abort_flow(flow, TransferError("transfer cancelled"),
                             wake=False)
            raise
        if flow.error is not None:
            raise flow.error

    def start_flow(self, route: Sequence[Link], nbytes: float,
                   callback: Callable[[Flow], None]) -> Flow:
        """Non-blocking transfer; ``callback(flow)`` fires on completion
        (check ``flow.error``).  Used by event-driven transports."""
        if nbytes <= 0:
            raise ValueError("flow size must be positive")
        return self._add_flow(route, nbytes, callback=callback)

    def current_rate(self, flow: Flow) -> float:
        """Instantaneous fair-share rate of an active flow (bytes/s)."""
        return flow.rate

    @property
    def active_flows(self) -> list[Flow]:
        return list(self._flows)

    def fail_link(self, link: Link) -> None:
        """Bring a link down and abort every flow crossing it."""
        link.up = False
        victims = [f for f in self._flows if link in f.route]
        self._advance()
        for f in victims:
            self._abort_flow(
                f, TransferError(f"link {link.name} went down"), wake=True,
                advance=False)
        self._reallocate()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _add_flow(self, route: Sequence[Link], nbytes: float,
                  waiter: SimProcess | None = None,
                  callback: Callable | None = None) -> Flow:
        for link in route:
            if not link.up:
                raise TransferError(f"link {link.name} is down")
        self._advance()
        flow = Flow(route, nbytes, waiter, callback, self.kernel.now)
        self._flows.append(flow)
        self._reallocate()
        mon = self.monitor
        if mon is not None:
            self._flow_seq += 1
            flow.fid = self._flow_seq
            first = flow.route[0] if flow.route else None
            mon.on_flow_start(
                flow.fid,
                src=first.src if first else "",
                dst=flow.route[-1].dst if flow.route else "",
                nbytes=flow.size,
                fabric=first.fabric.name if first else "")
        return flow

    def _advance(self) -> None:
        """Credit every active flow with progress since the last update."""
        now = self.kernel.now
        dt = now - self._last_update
        if dt > 0:
            for f in self._flows:
                moved = f.rate * dt
                f.remaining -= moved
                for link in f.route:
                    self.link_bytes[link] = \
                        self.link_bytes.get(link, 0.0) + moved
        self._last_update = now

    def _reallocate(self) -> None:
        rates = maxmin_rates(self._flows)
        for f in self._flows:
            f.rate = rates.get(f, 0.0)
        self._reschedule()

    def _reschedule(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        next_finish = None
        for f in self._flows:
            if f.rate <= 0:
                continue
            finish = f.remaining / f.rate
            if next_finish is None or finish < next_finish:
                next_finish = finish
        if next_finish is not None:
            self._timer = self.kernel.schedule(max(next_finish, 0.0),
                                               self._on_completion)

    def _on_completion(self) -> None:
        self._timer = None
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS_BYTES]
        for f in finished:
            f.remaining = 0.0
            f.done = True
            self._flows.remove(f)
            self.completed_flows += 1
            self.flow_log.append((f.start_time, self.kernel.now, f.size,
                                  f.route[0].name if f.route else "", True))
            mon = self.monitor
            if mon is not None and f.fid is not None:
                mon.on_flow_end(f.fid, ok=True)
            self._notify(f)
        self._reallocate()

    def _abort_flow(self, flow: Flow, error: Exception, wake: bool,
                    advance: bool = True) -> None:
        if flow.done or flow not in self._flows:
            return
        if advance:
            self._advance()
        flow.error = error
        flow.done = True
        self._flows.remove(flow)
        self.flow_log.append((flow.start_time, self.kernel.now, flow.size,
                              flow.route[0].name if flow.route else "",
                              False))
        mon = self.monitor
        if mon is not None and flow.fid is not None:
            mon.on_flow_end(flow.fid, ok=False)
        if wake:
            self._notify(flow)
        if advance:
            self._reallocate()

    def _notify(self, flow: Flow) -> None:
        if flow.waiter is not None:
            self.kernel.wake(flow.waiter, flow)
        if flow.callback is not None:
            flow.callback(flow)
