"""Flow-level network simulation with max-min fair bandwidth sharing.

A :class:`Flow` is one in-flight message occupying a route (a list of
simplex :class:`~repro.net.topology.Link`).  Whenever the set of active
flows changes, every flow's progress is advanced at its previous rate
and rates are re-solved with the classic *progressive filling* (max-min
fairness) algorithm: repeatedly find the most-loaded link, give each
flow crossing it an equal share of that link's remaining capacity, fix
those flows, and subtract what they consume elsewhere.

This is the mechanism behind the paper's concurrency experiment
("Concurrent benchmarks (CORBA and MPI at the same time) show the
bandwidth is efficiently shared: each gets 120 MB/s"): two flows across
one 240 MB/s Myrinet host link each receive exactly half.

Scaling (see docs/PERFORMANCE.md): the solver state decomposes into
*link-connected components* — flows in different components share no
link, so progressive filling never couples them.  :class:`FlowNetwork`
keeps a persistent link→flows index and, on every flow add/remove,
re-solves only the component(s) touched by the change.  Because the
component-restricted fill performs bit-for-bit the same float
operations as the full fill restricted to that component (same flow
order, same link insertion order, same subtraction sequence), the
incremental rates are *exactly* — not approximately — equal to the
from-scratch ones.  ``FlowNetwork(..., incremental=False)`` keeps the
historical full re-solve for differential testing.

Grid scale adds a second, *hierarchical* tier on top of the component
machinery.  Fabrics carry an optional ``site`` locality tag
(:class:`repro.net.topology.Fabric`); a flow whose route stays inside
one site's fabrics belongs to that site's **shard**, everything else
(wide-area traffic, mixed routes) to the site-less **coupling tier**.
A shard is a union of link-connected components — intra-site links are
never shared with another site — so re-solving a whole dirty shard is
exactly as bit-for-bit correct as re-solving the minimal component,
but needs no per-event graph search: shard membership is one dict
lookup.  A dirty shard is solved wholesale once it holds
``shard_threshold`` live flows *and* the last component walked inside
it spanned at least half the shard (a decaying estimate — densely
coupled sites graduate to shard solves, shards full of small disjoint
components keep the cheaper PR 4 component walk).  Large
subsets additionally switch from the scalar progressive fill to a
numpy-vectorised twin (:func:`_progressive_fill_vec`) above
``vec_threshold`` — same shares, same rounds, same subtraction
sequence, so the results remain byte-identical (the differential suite
pins the cross-over).  Topologies where a flow's route mixes tagged and
untagged fabrics *taint* the sites it touches, and tainted shards fall
back to the always-correct component walk.
"""

from __future__ import annotations

from bisect import bisect_left
from struct import pack
from typing import Any, Callable, Sequence

import numpy as np

from repro.net.topology import Link, Topology
from repro.sim.kernel import SimKernel, SimProcess, Timer

#: Residual byte count below which a flow is considered complete
#: (guards against floating-point drift in progress accounting).
_EPS_BYTES = 1e-6


class TransferError(RuntimeError):
    """A transfer failed mid-flight (link down, aborted)."""


class Flow:
    """One in-flight message on the network."""

    __slots__ = ("route", "size", "remaining", "rate", "waiter",
                 "callback", "error", "done", "start_time", "fid", "seq",
                 "shard", "route_id_bytes", "route_bw_bytes",
                 "route_len_bytes")

    def __init__(self, route: Sequence[Link], size: float,
                 waiter: SimProcess | None, callback: Callable | None,
                 start_time: float):
        self.route = list(route)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.waiter = waiter
        self.callback = callback
        self.error: Exception | None = None
        self.done = False
        self.start_time = start_time
        #: observability id; assigned only while a monitor is attached
        self.fid: int | None = None
        #: creation order within a FlowNetwork; mirrors the flow's
        #: position in the active list so component re-solves can
        #: reproduce the full solve's iteration order exactly
        self.seq = 0
        #: site tag when every link on the route lives in fabrics of one
        #: site; ``None`` for wide-area / mixed routes (coupling tier)
        self.shard: str | None = None
        #: route as interned link ids / link bandwidths / length, cached
        #: once at add time by the owning FlowNetwork as raw little
        #: buffers: ``bytes.join`` + ``np.frombuffer`` assembles a
        #: 100k-flow subset's link arrays in one C pass, where
        #: concatenating 100k tiny numpy arrays would dominate the solve
        self.route_id_bytes: bytes = b""
        self.route_bw_bytes: bytes = b""
        self.route_len_bytes: bytes = b""

    @property
    def progress(self) -> float:
        """Fraction of the transfer completed, clamped to [0.0, 1.0]."""
        size = self.size
        if size <= 0.0:
            return 1.0
        frac = (size - self.remaining) / size
        if frac <= 0.0:
            return 0.0
        return frac if frac < 1.0 else 1.0

    def __repr__(self) -> str:
        # the sanitizer fingerprints reprs in bulk: keep the common
        # terminal states free of float formatting work
        if self.done:
            return (f"<Flow {self.size:.0f}B "
                    f"{'failed' if self.error is not None else 'done'}>")
        if self.rate == 0.0:
            return f"<Flow {self.size:.0f}B remaining={self.remaining:.0f}>"
        return (f"<Flow {self.size:.0f}B remaining={self.remaining:.0f} "
                f"rate={self.rate/1e6:.1f}MB/s done={self.done}>")


class _ShardBuf:
    """Incrementally-maintained concatenation of one shard's per-flow
    route byte caches, in member (ascending ``Flow.seq``) order.

    The vectorised fill assembles its link tables from three byte
    buffers (route lengths, interned link ids, link bandwidths).
    Rebuilding them per solve costs a Python listcomp over every member
    flow; this cache keeps them as ``bytearray`` blobs instead —
    admission appends (amortised O(1)), departure splices the member's
    slice out (a C-level ``memmove``, with the splice point found by
    bisecting the ascending seq list) — so a whole-shard solve starts
    from ready-made buffers.  The blob contents are *by construction*
    byte-identical to ``b"".join(f.route_*_bytes for f in members)``:
    both follow admission order, and removals preserve relative order.

    ``rates`` mirrors the members' current ``Flow.rate`` values the
    same way (valid only while ``rates_valid``; any rate write outside
    the whole-shard solve path invalidates it).  A valid mirror lets
    the solve diff new rates against old ones *in numpy* and assign
    only the changed flows' attributes — under steady churn a couple
    of percent of the shard — instead of looping over every member.
    """

    __slots__ = ("lens", "ids", "bw", "rates", "rates_valid",
                 "seqs", "elens")

    def __init__(self) -> None:
        self.lens = bytearray()
        self.ids = bytearray()
        self.bw = bytearray()
        self.rates = bytearray()
        self.rates_valid = True
        self.seqs: list[int] = []
        self.elens: list[int] = []

    def add(self, flow: Flow) -> None:
        self.seqs.append(flow.seq)
        self.elens.append(len(flow.route))
        self.lens += flow.route_len_bytes
        self.ids += flow.route_id_bytes
        self.bw += flow.route_bw_bytes
        self.rates += pack("=d", flow.rate)

    def remove(self, flow: Flow) -> None:
        i = bisect_left(self.seqs, flow.seq)
        if i >= len(self.seqs) or self.seqs[i] != flow.seq:
            return
        e0 = sum(self.elens[:i])
        n = self.elens[i]
        del self.seqs[i]
        del self.elens[i]
        del self.lens[8 * i:8 * (i + 1)]
        del self.ids[8 * e0:8 * (e0 + n)]
        del self.bw[8 * e0:8 * (e0 + n)]
        del self.rates[8 * i:8 * (i + 1)]


def _progressive_fill(
        flows: Sequence[Flow]) -> tuple[dict[Flow, float], int]:
    """Core progressive-filling loop.

    Returns ``(rates, iterations)`` where ``rates`` assigns every input
    flow a rate and ``iterations`` counts bottleneck-fixing rounds (the
    quantity the incremental solver saves; exported via the
    ``net.maxmin.iterations`` obs counter).
    """
    link_flows: dict[Link, list[Flow]] = {}
    for f in flows:
        for link in f.route:
            link_flows.setdefault(link, []).append(f)

    capacity = {link: link.bandwidth for link in link_flows}
    unfixed_count = {link: len(fl) for link, fl in link_flows.items()}
    rates: dict[Flow, float] = {}
    # insertion-ordered dict as a set: iteration below must not depend
    # on hash order, or the rates dict's order varies across runs
    unfixed = dict.fromkeys(flows)
    iterations = 0

    while unfixed:
        iterations += 1
        # bottleneck link: smallest equal-share among links with demand
        best_link = None
        best_share = None
        for link, count in unfixed_count.items():
            if count <= 0:
                continue
            share = max(capacity[link], 0.0) / count
            if best_share is None or share < best_share:
                best_share = share
                best_link = link
        if best_link is None:  # no flow crosses any link (empty routes)
            for f in unfixed:
                rates[f] = float("inf")
            break
        for f in link_flows[best_link]:
            if f not in unfixed:
                continue
            rates[f] = best_share
            unfixed.pop(f, None)
            for link in f.route:
                capacity[link] -= best_share
                unfixed_count[link] -= 1
    return rates, iterations


def _route_shard(route: Sequence[Link]) -> str | None:
    """Site tag owning every link of ``route``, or ``None``.

    ``None`` marks the coupling tier: wide-area routes (a link in an
    untagged fabric) and routes mixing two sites' fabrics.
    """
    shard: str | None = None
    for link in route:
        tag = link.fabric.site
        if tag is None:
            return None
        if shard is None:
            shard = tag
        elif tag != shard:
            return None
    return shard


def _progressive_fill_vec(
        flows: Sequence[Flow],
        n_ids: int | None = None,
        groups: Sequence[int] | None = None,
        buffers: tuple[bytes, bytes, bytes] | None = None,
        out_array: bool = False,
) -> tuple[list[float] | np.ndarray, int]:
    """Vectorised progressive fill for large flow sets.

    Performs *bit-for-bit* the same computation as
    :func:`_progressive_fill` — identical bottleneck choices (ties
    break on first link in insertion order, which is ``np.argmin``'s
    contract too), identical equal-share divisions, and identical
    capacity-subtraction sequences (every subtraction in one round uses
    the same share value, so the accumulation order inside
    ``np.subtract.at`` cannot change the result) — but replaces the
    per-round Python scan over all links with numpy reductions over
    flat link arrays, themselves assembled by array ops from the
    ``route_ids``/``route_bw`` arrays cached per flow at add time.  The
    per-round cost drops from O(L) dict iterations to a handful of
    array ops and the setup cost to a concatenate-and-rank pass, which
    is what lets one shard hold 100k concurrent flows.

    ``groups`` (optional) declares ``flows`` to be a concatenation of
    *link-disjoint* blocks of the given sizes — the shape
    ``_reallocate_sharded`` produces when several dirty shards pass the
    whole-shard gate in one event.  Because first-appearance ranking
    assigns each block a contiguous link range, the round loop can run
    per block over array *views*: the same rounds, the same float ops
    (rounds of different blocks never touch each other's links, so the
    global fill's interleaving of them is immaterial), but each round's
    reductions cost O(block links) instead of O(all links).  With one
    group (or ``None``) this degenerates to the plain global loop.

    ``buffers`` (optional) supplies the three concatenated byte buffers
    — ``(lens, ids, bw)``, as produced by joining :class:`_ShardBuf`
    blobs — ready-made, skipping the per-flow listcomp assembly
    entirely.  They must equal exactly what the listcomps would build
    for ``flows``; the shard caches guarantee that by construction.
    """
    n = len(flows)
    if n == 0:
        return (np.empty(0, dtype=np.float64) if out_array else []), 0
    inf = float("inf")
    if buffers is not None:
        lens_b, ids_b, bw_b = buffers
        lens = np.frombuffer(lens_b, dtype=np.int64)
    else:
        lens = np.frombuffer(b"".join([f.route_len_bytes for f in flows]),
                             dtype=np.int64)
    total = int(lens.sum())
    if total == 0:  # no flow crosses any link (empty routes)
        if out_array:
            return np.full(n, inf, dtype=np.float64), 1
        return [inf] * n, 1
    # assemble the subset's link arrays from the per-flow id/bandwidth
    # buffers cached at add time — one bytes join + frombuffer per
    # array, no Link objects and no per-flow numpy calls on this path
    # (or zero joins at all when the caller hands in shard-cache blobs)
    if buffers is not None:
        gids = np.frombuffer(ids_b, dtype=np.int64)
        bw = np.frombuffer(bw_b, dtype=np.float64)
    else:
        gids = np.frombuffer(b"".join([f.route_id_bytes for f in flows]),
                             dtype=np.int64)
        bw = np.frombuffer(b"".join([f.route_bw_bytes for f in flows]),
                           dtype=np.float64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    # local link ids must follow *first-appearance* order (the scalar
    # fill's link insertion order, which is what ties break on)
    if n_ids is None:
        # np.unique sorts by global id: rank the uniques by their first
        # position in ``gids`` to recover first-appearance order
        uniq, first, inv = np.unique(gids, return_index=True,
                                     return_inverse=True)
        n_links = len(uniq)
        order = np.argsort(first)
        rank = np.empty(n_links, dtype=np.intp)
        rank[order] = np.arange(n_links, dtype=np.intp)
        local = rank[inv]
    else:
        # ids are dense per-network interns below ``n_ids``: a reversed
        # scatter records each id's first position (last write wins, so
        # writing positions back-to-front leaves the smallest), and
        # only the *present* ids get sorted — much smaller than the 2E
        # element sort np.unique would do
        first = np.full(n_ids, total, dtype=np.int64)
        first[gids[::-1]] = np.arange(total - 1, -1, -1, dtype=np.int64)
        present = np.flatnonzero(first < total)
        n_links = len(present)
        order = np.argsort(first[present], kind="stable")
        rank = np.empty(n_ids, dtype=np.intp)
        rank[present[order]] = np.arange(n_links, dtype=np.intp)
        local = rank[gids]
    cap = np.empty(n_links, dtype=np.float64)
    cap[local] = bw  # duplicate writes all carry the same bandwidth
    counts = np.bincount(local, minlength=n_links)
    cnt = counts.astype(np.int64)
    # flows grouped per link; the stable sort preserves subset order
    # within each group, matching the scalar fill's member lists
    flow_of = np.repeat(np.arange(n, dtype=np.intp), lens)
    grouped = flow_of[np.argsort(local, kind="stable")]
    bounds = np.zeros(n_links + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])

    shares = np.empty(n_links, dtype=np.float64)
    fixed = np.zeros(n, dtype=bool)
    rate_of = np.zeros(n, dtype=np.float64)
    iterations = 0
    if groups is None:
        groups = (n,)
    f_lo = 0
    l_lo = 0
    for gsize in groups:
        f_hi = f_lo + gsize
        e_lo, e_hi = int(offsets[f_lo]), int(offsets[f_hi])
        if e_hi == e_lo:  # block of route-less flows: uncapacitated
            rate_of[f_lo:f_hi] = inf
            iterations += 1
            f_lo = f_hi
            continue
        # first-appearance ranking gives each link-disjoint block the
        # contiguous rank range [l_lo, l_hi); rounds run on views of it
        l_hi = int(local[e_lo:e_hi].max()) + 1
        cap_b = cap[l_lo:l_hi]
        cnt_b = cnt[l_lo:l_hi]
        shares_b = shares[l_lo:l_hi]
        remaining = f_hi - f_lo
        while remaining:
            iterations += 1
            valid = cnt_b > 0
            shares_b.fill(inf)
            # max(cap, 0.0) keeps -0.0 (Python max semantics), so
            # compare strictly against 0.0 rather than clipping
            np.divide(np.where(cap_b < 0.0, 0.0, cap_b), cnt_b,
                      out=shares_b, where=valid)
            bi = int(np.argmin(shares_b))
            if not bool(valid[bi]):
                if not valid.any():
                    # only route-less flows remain: uncapacitated
                    unfixed = ~fixed[f_lo:f_hi]
                    rate_of[f_lo:f_hi][unfixed] = inf
                    break
                # every live share is inf (infinite-bandwidth links):
                # the scalar scan settles on the first live link
                # instead of the inf placeholder of a drained one
                bi = int(np.argmax(valid))
            best = float(shares_b[bi])
            gi = l_lo + bi
            mem = grouped[bounds[gi]:bounds[gi + 1]]
            newly = mem[~fixed[mem]]
            fixed[newly] = True
            rate_of[newly] = best
            # gather the newly-fixed flows' link rows — the
            # concatenation of ranges [offsets[fi], offsets[fi] +
            # lens[fi]) built with the cumsum range trick, no per-flow
            # Python loop.  Every grouped flow crosses >= 1 link, so
            # no zero-length range can corrupt the boundary steps.
            # subtract.at applies element-by-element (unbuffered), so
            # repeated hits on one link reproduce the scalar fill's
            # sequential same-value subtractions exactly.
            if len(newly) == 1:
                # churn rounds usually fix one straggler: its link rows
                # are a single contiguous slice, no range trick needed
                s0 = int(offsets[newly[0]])
                seg = local[s0:s0 + int(lens[newly[0]])]
            else:
                sel_start = offsets[newly]
                sel_len = lens[newly]
                step = np.ones(int(sel_len.sum()), dtype=np.int64)
                ends = np.cumsum(sel_len)
                step[0] = sel_start[0]
                step[ends[:-1]] = sel_start[1:] - sel_start[:-1] \
                    - sel_len[:-1] + 1
                seg = local[np.cumsum(step)]
            np.subtract.at(cap, seg, best)
            np.subtract.at(cnt, seg, 1)
            remaining -= len(newly)
        f_lo, l_lo = f_hi, l_hi
    return (rate_of if out_array else rate_of.tolist()), iterations


def maxmin_rates(flows: Sequence[Flow]) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation.

    Each flow receives the largest rate such that no link capacity is
    exceeded and no flow can be increased without decreasing a flow with
    an equal or smaller rate.  Deterministic: ties broken by link
    insertion order.  The returned dict lists flows in *input* order
    (not fixing order), so two solves over the same flows compare equal
    including iteration order — the property the incremental solver's
    differential tests rely on.
    """
    rates, _ = _progressive_fill(flows)
    return {f: rates[f] for f in flows}


class FlowNetwork:
    """Transfer engine binding a :class:`Topology` to a :class:`SimKernel`.

    The blocking entry point is :meth:`transfer`; middleware layers call
    it from inside simulated processes.  Bytes crossing each link are
    accounted in :attr:`link_bytes` for white-box assertions in tests.

    With ``incremental=True`` (the default) rate re-solves are
    restricted to the link-connected component of the changed flows —
    exactly equivalent to the full solve (see module docstring) but
    O(component) instead of O(network) per event.

    ``sharded=True`` (the default) adds the hierarchical tier: dirty
    flows whose shard (site tag) holds at least ``shard_threshold``
    live flows skip the component walk and re-solve the whole shard,
    and any subset of at least ``vec_threshold`` flows is solved by the
    vectorised fill.  Both paths are bit-for-bit equal to the scalar
    from-scratch solve; the thresholds only move work between
    equally-exact implementations.
    """

    #: live flows a shard needs before whole-shard re-solving beats the
    #: per-event component walk (dict lookup vs O(component) BFS)
    SHARD_THRESHOLD = 64
    #: subset size where the numpy fill's setup cost amortises over the
    #: saved per-round link scans
    VEC_THRESHOLD = 64

    def __init__(self, kernel: SimKernel, topology: Topology,
                 incremental: bool = True, sharded: bool = True,
                 shard_threshold: int | None = None,
                 vec_threshold: int | None = None):
        self.kernel = kernel
        self.topology = topology
        self.incremental = incremental
        self.sharded = sharded
        self.shard_threshold = (self.SHARD_THRESHOLD
                                if shard_threshold is None
                                else shard_threshold)
        self.vec_threshold = (self.VEC_THRESHOLD if vec_threshold is None
                              else vec_threshold)
        self._flows: list[Flow] = []
        #: persistent link→flows index (insertion-ordered dicts used as
        #: ordered sets); maintained in both modes, consulted for
        #: component discovery and link-failure victim lookup
        self._link_flows: dict[Link, dict[Flow, None]] = {}
        #: hierarchical tier: site tag → live flows of that shard, plus
        #: the site-less coupling tier (wide-area / mixed routes); both
        #: insertion-ordered, so iteration follows Flow.seq
        self._shard_flows: dict[str, dict[Flow, None]] = {}
        self._coupling_flows: dict[Flow, None] = {}
        #: sites touched by coupling flows (counts): a tainted site's
        #: shard is not closed under link sharing, so it falls back to
        #: the component walk; _taint_total gates the coupling tier
        self._site_taint: dict[str, int] = {}
        self._taint_total = 0
        #: link → interned int id, assigned on first sight (deterministic:
        #: flow-add order); backs the per-flow route_ids arrays the
        #: vectorised fill assembles its link tables from
        self._link_ids: dict[Link, int] = {}
        #: per-shard-key size of the last component solved inside that
        #: shard (None keys the coupling tier), decremented as member
        #: flows leave.  Whole-shard solving only pays off when the
        #: dirty component covers most of the shard, and this estimate
        #: is how the solver knows without running the BFS; see
        #: _reallocate_sharded
        self._shard_comp: dict[str | None, int] = {}
        #: per-shard-key concatenated route byte caches (None keys the
        #: coupling tier), kept in lockstep with _shard_flows /
        #: _coupling_flows so whole-shard solves skip buffer assembly
        self._shard_buf: dict[str | None, _ShardBuf] = {}
        self._last_update = kernel.now
        self._timer: Timer | None = None
        self.link_bytes: dict[Link, float] = {}
        self.completed_flows = 0
        #: completed-transfer records for timeline analysis:
        #: (start time, end time, size bytes, first link name, ok)
        self.flow_log: list[tuple[float, float, float, str, bool]] = []
        #: observability hook surface (see repro.obs); pushed down by
        #: PadicoRuntime.observe, or set directly for standalone use
        self.monitor: Any = None
        self._flow_seq = 0
        self._flow_counter = 0
        #: solver work counters (plain ints — never routed through the
        #: monitor, so traces stay identical across solver modes; the
        #: wall-clock bench reports them via obs counters after the run)
        self.solver_solves = 0
        self.solver_iterations = 0
        self.solver_flows_resolved = 0
        #: completion-timer pushes avoided because the fire instant was
        #: unchanged (lazy cancellation fast path)
        self.timer_reuses = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer(self, proc: SimProcess, src: str, dst: str, nbytes: float,
                 fabric: str, extra_latency: float = 0.0) -> float:
        """Move ``nbytes`` from ``src`` to ``dst`` over ``fabric``.

        Blocks the calling process for propagation latency plus the
        fluid transfer time; returns the elapsed virtual seconds.
        Raises :class:`TransferError` if a link on the route goes down
        mid-flight, and :class:`NoRouteError` if there is no live path.
        """
        t0 = self.kernel.now
        mon = self.monitor
        if mon is not None:
            mon.on_span_start("net.transfer", cat="net", src=src, dst=dst,
                              nbytes=float(nbytes), fabric=fabric)
        try:
            route = self.topology.route(src, dst, fabric)
            latency = sum(l.latency for l in route) + extra_latency
            if latency > 0:
                proc.sleep(latency)
            if nbytes > 0:
                self.send_on_route(proc, route, nbytes)
        finally:
            if mon is not None:
                mon.on_span_end("net.transfer")
        return self.kernel.now - t0

    def send_on_route(self, proc: SimProcess, route: Sequence[Link],
                      nbytes: float) -> None:
        """Blocking fluid transfer on an explicit route (no latency)."""
        if nbytes <= 0:
            return
        if not route:  # same-host, zero-cost copy handled by caller
            return
        flow = self._add_flow(route, nbytes, waiter=proc)
        try:
            proc.suspend()
        except BaseException:
            self._abort_flow(flow, TransferError("transfer cancelled"),
                             wake=False)
            raise
        if flow.error is not None:
            raise flow.error

    def start_flow(self, route: Sequence[Link], nbytes: float,
                   callback: Callable[[Flow], None]) -> Flow:
        """Non-blocking transfer; ``callback(flow)`` fires on completion
        (check ``flow.error``).  Used by event-driven transports."""
        if nbytes <= 0:
            raise ValueError("flow size must be positive")
        return self._add_flow(route, nbytes, callback=callback)

    def start_flows(self, requests: Sequence[
            tuple[Sequence[Link], float, Callable[[Flow], None]]],
    ) -> list[Flow]:
        """Admit many ``(route, nbytes, callback)`` transfers in one
        re-solve.

        Bit-for-bit equivalent to calling :meth:`start_flow` on each
        request back-to-back at one virtual instant: no virtual time
        passes between admissions, so the intermediate allocations the
        sequential form computes are unobservable — only the rates
        after the last member joins matter, and those come out of the
        same per-component solves either way.  What changes is the
        cost: one re-solve for the whole batch instead of one per flow,
        which is what makes ramping a grid to 100k concurrent flows
        tractable.  Validation is atomic — a bad size or downed link
        anywhere in the batch admits nothing.
        """
        reqs = list(requests)
        for route, nbytes, _callback in reqs:
            if nbytes <= 0:
                raise ValueError("flow size must be positive")
            for link in route:
                if not link.up:
                    raise TransferError(f"link {link.name} is down")
        flows = [self._admit(route, nbytes, None, callback)
                 for route, nbytes, callback in reqs]
        if flows:
            self._reallocate(flows)
            for flow in flows:
                self._notify_start(flow)
        return flows

    def current_rate(self, flow: Flow) -> float:
        """Instantaneous fair-share rate of an active flow (bytes/s)."""
        return flow.rate

    @property
    def active_flows(self) -> list[Flow]:
        return list(self._flows)

    def fail_link(self, link: Link) -> None:
        """Bring a link down and abort every flow crossing it."""
        link.up = False
        victims = list(self._link_flows.get(link, ()))
        self._advance()
        for f in victims:
            self._abort_flow(
                f, TransferError(f"link {link.name} went down"), wake=True,
                advance=False)
        self._reallocate(victims)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _add_flow(self, route: Sequence[Link], nbytes: float,
                  waiter: SimProcess | None = None,
                  callback: Callable | None = None) -> Flow:
        flow = self._admit(route, nbytes, waiter, callback)
        self._reallocate((flow,))
        self._notify_start(flow)
        return flow

    def _admit(self, route: Sequence[Link], nbytes: float,
               waiter: SimProcess | None,
               callback: Callable | None) -> Flow:
        """Validate, create and index one flow — no re-solve, no monitor
        notification; callers compose those (see :meth:`start_flows`)."""
        for link in route:
            if not link.up:
                raise TransferError(f"link {link.name} is down")
        self._advance()
        flow = Flow(route, nbytes, waiter, callback, self.kernel.now)
        flow.shard = _route_shard(flow.route)
        if self.sharded:
            ids = self._link_ids
            fids = []
            for link in flow.route:
                li = ids.get(link)
                if li is None:
                    li = len(ids)
                    ids[link] = li
                fids.append(li)
            flow.route_id_bytes = np.array(fids, dtype=np.int64).tobytes()
            flow.route_bw_bytes = np.array(
                [l.bandwidth for l in flow.route],
                dtype=np.float64).tobytes()
            flow.route_len_bytes = np.int64(len(fids)).tobytes()
        self._flow_counter += 1
        flow.seq = self._flow_counter
        self._flows.append(flow)
        self._index_add(flow)
        return flow

    def _notify_start(self, flow: Flow) -> None:
        mon = self.monitor
        if mon is not None:
            self._flow_seq += 1
            flow.fid = self._flow_seq
            first = flow.route[0] if flow.route else None
            mon.on_flow_start(
                flow.fid,
                src=first.src if first else "",
                dst=flow.route[-1].dst if flow.route else "",
                nbytes=flow.size,
                fabric=first.fabric.name if first else "")

    def _index_add(self, flow: Flow) -> None:
        link_flows = self._link_flows
        for link in flow.route:
            peers = link_flows.get(link)
            if peers is None:
                link_flows[link] = {flow: None}
            else:
                peers[flow] = None
        shard = flow.shard
        if shard is not None:
            members = self._shard_flows.get(shard)
            if members is None:
                self._shard_flows[shard] = {flow: None}
            else:
                members[flow] = None
        else:
            self._coupling_flows[flow] = None
            for tag in self._coupling_tags(flow):
                self._site_taint[tag] = self._site_taint.get(tag, 0) + 1
                self._taint_total += 1
        if self.sharded:
            buf = self._shard_buf.get(shard)
            if buf is None:
                buf = self._shard_buf[shard] = _ShardBuf()
            buf.add(flow)

    def _index_remove(self, flow: Flow) -> None:
        link_flows = self._link_flows
        for link in flow.route:
            peers = link_flows.get(link)
            if peers is not None:
                peers.pop(flow, None)
                if not peers:
                    del link_flows[link]
        shard = flow.shard
        comp = self._shard_comp.get(shard, 0)
        if comp > 0:
            # a departing member can only shrink the component the
            # estimate came from; decaying it forces an eventual BFS
            # re-probe, so the estimate cannot stay optimistic forever
            self._shard_comp[shard] = comp - 1
        if self.sharded:
            buf = self._shard_buf.get(shard)
            if buf is not None:
                buf.remove(flow)
        if shard is not None:
            members = self._shard_flows.get(shard)
            if members is not None:
                members.pop(flow, None)
        else:
            self._coupling_flows.pop(flow, None)
            for tag in self._coupling_tags(flow):
                left = self._site_taint.get(tag, 0) - 1
                if left > 0:
                    self._site_taint[tag] = left
                else:
                    self._site_taint.pop(tag, None)
                self._taint_total -= 1

    @staticmethod
    def _coupling_tags(flow: Flow) -> set[str]:
        """Distinct site tags a coupling flow's route touches."""
        return {link.fabric.site for link in flow.route
                if link.fabric.site is not None}

    def _component(self, seeds: Sequence[Flow]) -> dict[Flow, None]:
        """Flows link-connected to any seed (seeds themselves included).

        Seeds may already have been removed from the index (completion /
        abort); their routes still seed the link frontier, so the
        closure covers every flow whose rate the change can affect.
        Deterministic: plain worklist over insertion-ordered dicts.
        """
        member: dict[Flow, None] = dict.fromkeys(seeds)
        frontier: list[Link] = []
        seen: dict[Link, None] = {}
        for f in seeds:
            for link in f.route:
                if link not in seen:
                    seen[link] = None
                    frontier.append(link)
        link_flows = self._link_flows
        i = 0
        while i < len(frontier):
            peers = link_flows.get(frontier[i])
            i += 1
            if peers is None:
                continue
            for g in peers:
                if g not in member:
                    member[g] = None
                    for link in g.route:
                        if link not in seen:
                            seen[link] = None
                            frontier.append(link)
        return member

    def _advance(self) -> None:
        """Credit every active flow with progress since the last update.

        Deliberately *eager* (per event, not lazily at completion):
        iterated IEEE-754 subtraction is not associative, so crediting
        lazily would change ``remaining`` in the last bits and break the
        byte-identical-results guarantee the solver work relies on.
        """
        now = self.kernel.now
        dt = now - self._last_update
        if dt > 0:
            link_bytes = self.link_bytes
            for f in self._flows:
                moved = f.rate * dt
                f.remaining -= moved
                for link in f.route:
                    link_bytes[link] = link_bytes.get(link, 0.0) + moved
        self._last_update = now

    def _reallocate(self, dirty: Sequence[Flow] | None = None) -> None:
        """Re-solve fair-share rates after a flow-set change.

        ``dirty`` lists the flows added/removed since the last solve.
        In incremental mode only their link-connected component — or,
        with ``sharded=True``, their whole site shard when that is
        cheaper — is re-solved (flows elsewhere keep their — provably
        unchanged — rates); with ``dirty=None`` or
        ``incremental=False`` the whole network is re-solved from
        scratch by the historical scalar fill, the exactness oracle the
        differential suite compares every other path against.
        """
        if self.incremental and dirty is not None:
            if self.sharded:
                self._reallocate_sharded(dirty)
                return
            subset = [f for f in self._component(dirty) if not f.done]
            # iterate in active-list order so link insertion order (and
            # therefore every tie-break and float op) matches the full
            # solve restricted to this component
            subset.sort(key=_flow_seq_key)
            self._solve(subset, vec_ok=False)
        else:
            self._solve(self._flows, vec_ok=False)
        self._reschedule()

    def _reallocate_sharded(self, dirty: Sequence[Flow]) -> None:
        """Hierarchical re-solve: dirty site shards wholesale, the rest
        through the component walk.

        A shard is a union of link-connected components (see module
        docstring), so whole-shard re-solving is exact whenever the
        shard is closed under link sharing — i.e. not tainted by a
        coupling flow touching its fabrics.  Exact, but only *cheaper*
        when the dirty component covers most of the shard: a shard full
        of small disjoint components (the disjoint-pair churn bench) is
        better served by the PR 4 walk.  The ``_shard_comp`` estimate —
        size of the last component the walk solved inside the shard,
        decayed as members leave — decides: whole-shard solving engages
        once a probed component spans at least half the shard, and the
        decay forces a re-probe every ~half-shard's worth of departures
        so the estimate tracks fragmentation.  Seeds whose shard is too
        small, tainted, or fragmented fall back to one combined
        component walk, the always-correct PR 4 path.
        """
        groups: dict[str | None, list[Flow]] = {}
        for f in dirty:
            groups.setdefault(f.shard, []).append(f)
        residual: list[Flow] = []
        threshold = self.shard_threshold
        comp_est = self._shard_comp
        # every gate-passing shard lands in one combined subset solved
        # by a single fill: shards are link-disjoint by construction, so
        # a union fill performs exactly the per-shard fills' arithmetic
        # (each link only ever meets subtractions from its own shard's
        # rounds, in the same relative order) while paying the vec
        # setup once per *event* instead of once per shard; the block
        # sizes ride along so the fill's round loop can work per shard
        # over array views instead of the whole concatenated link range,
        # and the shard-cache blobs ride along so the fill starts from
        # ready-made link buffers instead of per-flow listcomps
        combined: list[Flow] = []
        combined_sizes: list[int] = []
        bufs: list[_ShardBuf] = []
        for key, seeds in groups.items():
            if key is not None:
                members = self._shard_flows.get(key)
                if members is not None and len(members) >= threshold \
                        and not self._site_taint.get(key) \
                        and 2 * comp_est.get(key, 0) >= len(members):
                    combined.extend(members)
                    combined_sizes.append(len(members))
                    bufs.append(self._shard_buf[key])
                    continue
            elif self._taint_total == 0 \
                    and len(self._coupling_flows) >= threshold \
                    and 2 * comp_est.get(None, 0) \
                    >= len(self._coupling_flows):
                combined.extend(self._coupling_flows)
                combined_sizes.append(len(self._coupling_flows))
                bufs.append(self._shard_buf[None])
                continue
            residual.extend(seeds)
        if combined:
            self._solve(combined, vec_ok=True, groups=combined_sizes,
                        bufs=bufs)
        if residual:
            subset = [f for f in self._component(residual) if not f.done]
            subset.sort(key=_flow_seq_key)
            self._solve(subset, vec_ok=True)
            keys = {f.shard for f in subset}
            if len(keys) == 1:
                # the walk just measured one shard's component structure:
                # remember it so the next dirty event can skip the walk
                comp_est[keys.pop()] = len(subset)
        self._reschedule()

    def _solve(self, subset: Sequence[Flow], vec_ok: bool,
               groups: Sequence[int] | None = None,
               bufs: Sequence[_ShardBuf] | None = None) -> None:
        """One fill over ``subset``; applies rates and counts the work.

        ``bufs`` (whole-shard solves only) supplies the shard caches
        whose concatenated members *are* ``subset``: the fill then
        starts from their ready-made byte buffers, and the new rates
        are diffed against the caches' rate mirrors in numpy so only
        the flows whose rate actually changed get attribute writes.
        Skipping a write when old and new compare equal is exactly what
        the scalar assignment loop's ``!=`` guard does (including the
        ``-0.0 == 0.0`` case), so both paths leave identical state.
        """
        if vec_ok and len(subset) >= self.vec_threshold:
            if bufs is not None:
                buffers = (b"".join([b.lens for b in bufs]),
                           b"".join([b.ids for b in bufs]),
                           b"".join([b.bw for b in bufs]))
                rate_arr, iterations = _progressive_fill_vec(
                    subset, len(self._link_ids), groups, buffers,
                    out_array=True)
                if all(b.rates_valid for b in bufs):
                    old = np.frombuffer(b"".join([b.rates for b in bufs]),
                                        dtype=np.float64)
                    for i in np.flatnonzero(rate_arr != old).tolist():
                        subset[i].rate = float(rate_arr[i])
                else:
                    for f, new_rate in zip(subset, rate_arr.tolist()):
                        if new_rate != f.rate:
                            f.rate = new_rate
                lo = 0
                for buf, size in zip(bufs, groups):
                    hi = lo + size
                    buf.rates = bytearray(rate_arr[lo:hi].tobytes())
                    buf.rates_valid = True
                    lo = hi
            else:
                rate_list, iterations = _progressive_fill_vec(
                    subset, len(self._link_ids), groups)
                for f, new_rate in zip(subset, rate_list):
                    if new_rate != f.rate:
                        f.rate = new_rate
                self._stale_rate_mirrors(subset)
        else:
            rates, iterations = _progressive_fill(subset)
            for f in subset:
                new_rate = rates[f]
                if new_rate != f.rate:
                    f.rate = new_rate
            self._stale_rate_mirrors(subset)
        self.solver_solves += 1
        self.solver_iterations += iterations
        self.solver_flows_resolved += len(subset)

    def _stale_rate_mirrors(self, subset: Sequence[Flow]) -> None:
        """Mark shard rate mirrors stale after a non-whole-shard solve.

        Component walks and full re-solves write ``Flow.rate`` without
        going through the shard caches; the touched shards' mirrors no
        longer reflect their members, so the next whole-shard solve
        must fall back to the per-flow assignment loop once (and then
        rebuilds the mirror from its own result).
        """
        if not self.sharded:
            return
        for key in dict.fromkeys(f.shard for f in subset):
            buf = self._shard_buf.get(key)
            if buf is not None:
                buf.rates_valid = False

    def _reschedule(self) -> None:
        next_finish = None
        for f in self._flows:
            if f.rate <= 0:
                continue
            finish = f.remaining / f.rate
            if next_finish is None or finish < next_finish:
                next_finish = finish
        timer = self._timer
        if next_finish is None:
            if timer is not None:
                timer.cancel()
                self._timer = None
            return
        fire = self.kernel.now + max(next_finish, 0.0)
        if timer is not None:
            # lazy cancellation: when the earliest completion instant is
            # unchanged, keep the already-queued timer instead of
            # cancel+repush (the cancelled entry would linger in the
            # heap until popped anyway)
            if not timer.cancelled and timer.time == fire:
                self.timer_reuses += 1
                return
            timer.cancel()
        self._timer = self.kernel.schedule(max(next_finish, 0.0),
                                           self._on_completion)

    def _on_completion(self) -> None:
        self._timer = None
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS_BYTES]
        for f in finished:
            f.remaining = 0.0
            f.done = True
            self._flows.remove(f)
            self._index_remove(f)
            self.completed_flows += 1
            self.flow_log.append((f.start_time, self.kernel.now, f.size,
                                  f.route[0].name if f.route else "", True))
            mon = self.monitor
            if mon is not None and f.fid is not None:
                mon.on_flow_end(f.fid, ok=True, progress=1.0)
            self._notify(f)
        self._reallocate(finished)

    def _abort_flow(self, flow: Flow, error: Exception, wake: bool,
                    advance: bool = True) -> None:
        if flow.done or flow not in self._flows:
            return
        if advance:
            self._advance()
        flow.error = error
        flow.done = True
        self._flows.remove(flow)
        self._index_remove(flow)
        self.flow_log.append((flow.start_time, self.kernel.now, flow.size,
                              flow.route[0].name if flow.route else "",
                              False))
        mon = self.monitor
        if mon is not None and flow.fid is not None:
            mon.on_flow_end(flow.fid, ok=False, progress=flow.progress)
        if wake:
            self._notify(flow)
        if advance:
            self._reallocate((flow,))

    def _notify(self, flow: Flow) -> None:
        if flow.waiter is not None:
            self.kernel.wake(flow.waiter, flow)
        if flow.callback is not None:
            flow.callback(flow)


def _flow_seq_key(flow: Flow) -> int:
    return flow.seq
