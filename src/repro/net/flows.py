"""Flow-level network simulation with max-min fair bandwidth sharing.

A :class:`Flow` is one in-flight message occupying a route (a list of
simplex :class:`~repro.net.topology.Link`).  Whenever the set of active
flows changes, every flow's progress is advanced at its previous rate
and rates are re-solved with the classic *progressive filling* (max-min
fairness) algorithm: repeatedly find the most-loaded link, give each
flow crossing it an equal share of that link's remaining capacity, fix
those flows, and subtract what they consume elsewhere.

This is the mechanism behind the paper's concurrency experiment
("Concurrent benchmarks (CORBA and MPI at the same time) show the
bandwidth is efficiently shared: each gets 120 MB/s"): two flows across
one 240 MB/s Myrinet host link each receive exactly half.

Scaling (see docs/PERFORMANCE.md): the solver state decomposes into
*link-connected components* — flows in different components share no
link, so progressive filling never couples them.  :class:`FlowNetwork`
keeps a persistent link→flows index and, on every flow add/remove,
re-solves only the component(s) touched by the change.  Because the
component-restricted fill performs bit-for-bit the same float
operations as the full fill restricted to that component (same flow
order, same link insertion order, same subtraction sequence), the
incremental rates are *exactly* — not approximately — equal to the
from-scratch ones.  ``FlowNetwork(..., incremental=False)`` keeps the
historical full re-solve for differential testing.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.net.topology import Link, Topology
from repro.sim.kernel import SimKernel, SimProcess, Timer

#: Residual byte count below which a flow is considered complete
#: (guards against floating-point drift in progress accounting).
_EPS_BYTES = 1e-6


class TransferError(RuntimeError):
    """A transfer failed mid-flight (link down, aborted)."""


class Flow:
    """One in-flight message on the network."""

    __slots__ = ("route", "size", "remaining", "rate", "waiter",
                 "callback", "error", "done", "start_time", "fid", "seq")

    def __init__(self, route: Sequence[Link], size: float,
                 waiter: SimProcess | None, callback: Callable | None,
                 start_time: float):
        self.route = list(route)
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.waiter = waiter
        self.callback = callback
        self.error: Exception | None = None
        self.done = False
        self.start_time = start_time
        #: observability id; assigned only while a monitor is attached
        self.fid: int | None = None
        #: creation order within a FlowNetwork; mirrors the flow's
        #: position in the active list so component re-solves can
        #: reproduce the full solve's iteration order exactly
        self.seq = 0

    @property
    def progress(self) -> float:
        """Fraction of the transfer completed, clamped to [0.0, 1.0]."""
        size = self.size
        if size <= 0.0:
            return 1.0
        frac = (size - self.remaining) / size
        if frac <= 0.0:
            return 0.0
        return frac if frac < 1.0 else 1.0

    def __repr__(self) -> str:
        # the sanitizer fingerprints reprs in bulk: keep the common
        # terminal states free of float formatting work
        if self.done:
            return (f"<Flow {self.size:.0f}B "
                    f"{'failed' if self.error is not None else 'done'}>")
        if self.rate == 0.0:
            return f"<Flow {self.size:.0f}B remaining={self.remaining:.0f}>"
        return (f"<Flow {self.size:.0f}B remaining={self.remaining:.0f} "
                f"rate={self.rate/1e6:.1f}MB/s done={self.done}>")


def _progressive_fill(
        flows: Sequence[Flow]) -> tuple[dict[Flow, float], int]:
    """Core progressive-filling loop.

    Returns ``(rates, iterations)`` where ``rates`` assigns every input
    flow a rate and ``iterations`` counts bottleneck-fixing rounds (the
    quantity the incremental solver saves; exported via the
    ``net.maxmin.iterations`` obs counter).
    """
    link_flows: dict[Link, list[Flow]] = {}
    for f in flows:
        for link in f.route:
            link_flows.setdefault(link, []).append(f)

    capacity = {link: link.bandwidth for link in link_flows}
    unfixed_count = {link: len(fl) for link, fl in link_flows.items()}
    rates: dict[Flow, float] = {}
    # insertion-ordered dict as a set: iteration below must not depend
    # on hash order, or the rates dict's order varies across runs
    unfixed = dict.fromkeys(flows)
    iterations = 0

    while unfixed:
        iterations += 1
        # bottleneck link: smallest equal-share among links with demand
        best_link = None
        best_share = None
        for link, count in unfixed_count.items():
            if count <= 0:
                continue
            share = max(capacity[link], 0.0) / count
            if best_share is None or share < best_share:
                best_share = share
                best_link = link
        if best_link is None:  # no flow crosses any link (empty routes)
            for f in unfixed:
                rates[f] = float("inf")
            break
        for f in link_flows[best_link]:
            if f not in unfixed:
                continue
            rates[f] = best_share
            unfixed.pop(f, None)
            for link in f.route:
                capacity[link] -= best_share
                unfixed_count[link] -= 1
    return rates, iterations


def maxmin_rates(flows: Sequence[Flow]) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation.

    Each flow receives the largest rate such that no link capacity is
    exceeded and no flow can be increased without decreasing a flow with
    an equal or smaller rate.  Deterministic: ties broken by link
    insertion order.  The returned dict lists flows in *input* order
    (not fixing order), so two solves over the same flows compare equal
    including iteration order — the property the incremental solver's
    differential tests rely on.
    """
    rates, _ = _progressive_fill(flows)
    return {f: rates[f] for f in flows}


class FlowNetwork:
    """Transfer engine binding a :class:`Topology` to a :class:`SimKernel`.

    The blocking entry point is :meth:`transfer`; middleware layers call
    it from inside simulated processes.  Bytes crossing each link are
    accounted in :attr:`link_bytes` for white-box assertions in tests.

    With ``incremental=True`` (the default) rate re-solves are
    restricted to the link-connected component of the changed flows —
    exactly equivalent to the full solve (see module docstring) but
    O(component) instead of O(network) per event.
    """

    def __init__(self, kernel: SimKernel, topology: Topology,
                 incremental: bool = True):
        self.kernel = kernel
        self.topology = topology
        self.incremental = incremental
        self._flows: list[Flow] = []
        #: persistent link→flows index (insertion-ordered dicts used as
        #: ordered sets); maintained in both modes, consulted for
        #: component discovery and link-failure victim lookup
        self._link_flows: dict[Link, dict[Flow, None]] = {}
        self._last_update = kernel.now
        self._timer: Timer | None = None
        self.link_bytes: dict[Link, float] = {}
        self.completed_flows = 0
        #: completed-transfer records for timeline analysis:
        #: (start time, end time, size bytes, first link name, ok)
        self.flow_log: list[tuple[float, float, float, str, bool]] = []
        #: observability hook surface (see repro.obs); pushed down by
        #: PadicoRuntime.observe, or set directly for standalone use
        self.monitor: Any = None
        self._flow_seq = 0
        self._flow_counter = 0
        #: solver work counters (plain ints — never routed through the
        #: monitor, so traces stay identical across solver modes; the
        #: wall-clock bench reports them via obs counters after the run)
        self.solver_solves = 0
        self.solver_iterations = 0
        self.solver_flows_resolved = 0
        #: completion-timer pushes avoided because the fire instant was
        #: unchanged (lazy cancellation fast path)
        self.timer_reuses = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def transfer(self, proc: SimProcess, src: str, dst: str, nbytes: float,
                 fabric: str, extra_latency: float = 0.0) -> float:
        """Move ``nbytes`` from ``src`` to ``dst`` over ``fabric``.

        Blocks the calling process for propagation latency plus the
        fluid transfer time; returns the elapsed virtual seconds.
        Raises :class:`TransferError` if a link on the route goes down
        mid-flight, and :class:`NoRouteError` if there is no live path.
        """
        t0 = self.kernel.now
        mon = self.monitor
        if mon is not None:
            mon.on_span_start("net.transfer", cat="net", src=src, dst=dst,
                              nbytes=float(nbytes), fabric=fabric)
        try:
            route = self.topology.route(src, dst, fabric)
            latency = sum(l.latency for l in route) + extra_latency
            if latency > 0:
                proc.sleep(latency)
            if nbytes > 0:
                self.send_on_route(proc, route, nbytes)
        finally:
            if mon is not None:
                mon.on_span_end("net.transfer")
        return self.kernel.now - t0

    def send_on_route(self, proc: SimProcess, route: Sequence[Link],
                      nbytes: float) -> None:
        """Blocking fluid transfer on an explicit route (no latency)."""
        if nbytes <= 0:
            return
        if not route:  # same-host, zero-cost copy handled by caller
            return
        flow = self._add_flow(route, nbytes, waiter=proc)
        try:
            proc.suspend()
        except BaseException:
            self._abort_flow(flow, TransferError("transfer cancelled"),
                             wake=False)
            raise
        if flow.error is not None:
            raise flow.error

    def start_flow(self, route: Sequence[Link], nbytes: float,
                   callback: Callable[[Flow], None]) -> Flow:
        """Non-blocking transfer; ``callback(flow)`` fires on completion
        (check ``flow.error``).  Used by event-driven transports."""
        if nbytes <= 0:
            raise ValueError("flow size must be positive")
        return self._add_flow(route, nbytes, callback=callback)

    def current_rate(self, flow: Flow) -> float:
        """Instantaneous fair-share rate of an active flow (bytes/s)."""
        return flow.rate

    @property
    def active_flows(self) -> list[Flow]:
        return list(self._flows)

    def fail_link(self, link: Link) -> None:
        """Bring a link down and abort every flow crossing it."""
        link.up = False
        victims = list(self._link_flows.get(link, ()))
        self._advance()
        for f in victims:
            self._abort_flow(
                f, TransferError(f"link {link.name} went down"), wake=True,
                advance=False)
        self._reallocate(victims)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _add_flow(self, route: Sequence[Link], nbytes: float,
                  waiter: SimProcess | None = None,
                  callback: Callable | None = None) -> Flow:
        for link in route:
            if not link.up:
                raise TransferError(f"link {link.name} is down")
        self._advance()
        flow = Flow(route, nbytes, waiter, callback, self.kernel.now)
        self._flow_counter += 1
        flow.seq = self._flow_counter
        self._flows.append(flow)
        self._index_add(flow)
        self._reallocate((flow,))
        mon = self.monitor
        if mon is not None:
            self._flow_seq += 1
            flow.fid = self._flow_seq
            first = flow.route[0] if flow.route else None
            mon.on_flow_start(
                flow.fid,
                src=first.src if first else "",
                dst=flow.route[-1].dst if flow.route else "",
                nbytes=flow.size,
                fabric=first.fabric.name if first else "")
        return flow

    def _index_add(self, flow: Flow) -> None:
        link_flows = self._link_flows
        for link in flow.route:
            peers = link_flows.get(link)
            if peers is None:
                link_flows[link] = {flow: None}
            else:
                peers[flow] = None

    def _index_remove(self, flow: Flow) -> None:
        link_flows = self._link_flows
        for link in flow.route:
            peers = link_flows.get(link)
            if peers is not None:
                peers.pop(flow, None)
                if not peers:
                    del link_flows[link]

    def _component(self, seeds: Sequence[Flow]) -> dict[Flow, None]:
        """Flows link-connected to any seed (seeds themselves included).

        Seeds may already have been removed from the index (completion /
        abort); their routes still seed the link frontier, so the
        closure covers every flow whose rate the change can affect.
        Deterministic: plain worklist over insertion-ordered dicts.
        """
        member: dict[Flow, None] = dict.fromkeys(seeds)
        frontier: list[Link] = []
        seen: dict[Link, None] = {}
        for f in seeds:
            for link in f.route:
                if link not in seen:
                    seen[link] = None
                    frontier.append(link)
        link_flows = self._link_flows
        i = 0
        while i < len(frontier):
            peers = link_flows.get(frontier[i])
            i += 1
            if peers is None:
                continue
            for g in peers:
                if g not in member:
                    member[g] = None
                    for link in g.route:
                        if link not in seen:
                            seen[link] = None
                            frontier.append(link)
        return member

    def _advance(self) -> None:
        """Credit every active flow with progress since the last update.

        Deliberately *eager* (per event, not lazily at completion):
        iterated IEEE-754 subtraction is not associative, so crediting
        lazily would change ``remaining`` in the last bits and break the
        byte-identical-results guarantee the solver work relies on.
        """
        now = self.kernel.now
        dt = now - self._last_update
        if dt > 0:
            link_bytes = self.link_bytes
            for f in self._flows:
                moved = f.rate * dt
                f.remaining -= moved
                for link in f.route:
                    link_bytes[link] = link_bytes.get(link, 0.0) + moved
        self._last_update = now

    def _reallocate(self, dirty: Sequence[Flow] | None = None) -> None:
        """Re-solve fair-share rates after a flow-set change.

        ``dirty`` lists the flows added/removed since the last solve.
        In incremental mode only their link-connected component is
        re-solved (flows elsewhere keep their — provably unchanged —
        rates); with ``dirty=None`` or ``incremental=False`` the whole
        network is re-solved from scratch.
        """
        if self.incremental and dirty is not None:
            subset = [f for f in self._component(dirty) if not f.done]
            # iterate in active-list order so link insertion order (and
            # therefore every tie-break and float op) matches the full
            # solve restricted to this component
            subset.sort(key=_flow_seq_key)
        else:
            subset = self._flows
        rates, iterations = _progressive_fill(subset)
        for f in subset:
            new_rate = rates[f]
            if new_rate != f.rate:
                f.rate = new_rate
        self.solver_solves += 1
        self.solver_iterations += iterations
        self.solver_flows_resolved += len(subset)
        self._reschedule()

    def _reschedule(self) -> None:
        next_finish = None
        for f in self._flows:
            if f.rate <= 0:
                continue
            finish = f.remaining / f.rate
            if next_finish is None or finish < next_finish:
                next_finish = finish
        timer = self._timer
        if next_finish is None:
            if timer is not None:
                timer.cancel()
                self._timer = None
            return
        fire = self.kernel.now + max(next_finish, 0.0)
        if timer is not None:
            # lazy cancellation: when the earliest completion instant is
            # unchanged, keep the already-queued timer instead of
            # cancel+repush (the cancelled entry would linger in the
            # heap until popped anyway)
            if not timer.cancelled and timer.time == fire:
                self.timer_reuses += 1
                return
            timer.cancel()
        self._timer = self.kernel.schedule(max(next_finish, 0.0),
                                           self._on_completion)

    def _on_completion(self) -> None:
        self._timer = None
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _EPS_BYTES]
        for f in finished:
            f.remaining = 0.0
            f.done = True
            self._flows.remove(f)
            self._index_remove(f)
            self.completed_flows += 1
            self.flow_log.append((f.start_time, self.kernel.now, f.size,
                                  f.route[0].name if f.route else "", True))
            mon = self.monitor
            if mon is not None and f.fid is not None:
                mon.on_flow_end(f.fid, ok=True, progress=1.0)
            self._notify(f)
        self._reallocate(finished)

    def _abort_flow(self, flow: Flow, error: Exception, wake: bool,
                    advance: bool = True) -> None:
        if flow.done or flow not in self._flows:
            return
        if advance:
            self._advance()
        flow.error = error
        flow.done = True
        self._flows.remove(flow)
        self._index_remove(flow)
        self.flow_log.append((flow.start_time, self.kernel.now, flow.size,
                              flow.route[0].name if flow.route else "",
                              False))
        mon = self.monitor
        if mon is not None and flow.fid is not None:
            mon.on_flow_end(flow.fid, ok=False, progress=flow.progress)
        if wake:
            self._notify(flow)
        if advance:
            self._reallocate((flow,))

    def _notify(self, flow: Flow) -> None:
        if flow.waiter is not None:
            self.kernel.wake(flow.waiter, flow)
        if flow.callback is not None:
            flow.callback(flow)


def _flow_seq_key(flow: Flow) -> int:
    return flow.seq
