"""Grid topology: hosts, fabrics, switches, links, routing.

A :class:`Topology` holds a set of :class:`Host` machines and a set of
:class:`Fabric` networks.  A fabric is *one* network of *one*
technology — e.g. the Myrinet SAN of a cluster, a site LAN, or the
wide-area interconnect — mirroring the paper's view that a grid node may
own several NICs on different networks and that the runtime (PadicoTM)
picks which one to use per communication.

Each fabric is an undirected networkx graph whose nodes are host names
and switch names; every edge materialises as a *pair of simplex*
:class:`Link` objects (full-duplex cable), which is what makes the
max-min allocator in :mod:`repro.net.flows` attribute send and receive
bandwidth independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.net.devices import ETHERNET_100, MYRINET_2000, WAN, NetworkTechnology


class NoRouteError(RuntimeError):
    """No live path between two endpoints on the requested fabric."""


class Link:
    """A simplex (one-direction) network link.

    ``up`` supports failure injection: a downed link is skipped by
    routing and kills flows currently crossing it.
    """

    __slots__ = ("name", "src", "dst", "fabric", "bandwidth", "latency", "up")

    def __init__(self, name: str, src: str, dst: str, fabric: "Fabric",
                 bandwidth: float, latency: float):
        self.name = name
        self.src = src
        self.dst = dst
        self.fabric = fabric
        self.bandwidth = bandwidth
        self.latency = latency
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {self.bandwidth/1e6:.0f}MB/s {state}>"


@dataclass
class Host:
    """A grid machine.

    ``cpus`` models the paper's dual-Pentium III nodes: it bounds how
    many simulated processes can burn CPU concurrently without slowdown
    (the CPU model lives in the PadicoTM layer; here it is descriptive
    metadata used by deployment planning).
    """

    name: str
    cpus: int = 2
    site: str = "default"
    labels: frozenset[str] = frozenset()
    fabrics: set[str] = field(default_factory=set)

    def __hash__(self) -> int:
        return hash(self.name)


class Fabric:
    """One network of one technology inside a :class:`Topology`."""

    def __init__(self, name: str, technology: NetworkTechnology):
        self.name = name
        self.technology = technology
        self.graph = nx.Graph()
        self._links: dict[tuple[str, str], Link] = {}

    def _add_edge(self, a: str, b: str, bandwidth: float,
                  latency: float) -> None:
        if a == b:
            raise ValueError(f"self-loop {a!r} in fabric {self.name!r}")
        self.graph.add_edge(a, b)
        for src, dst in ((a, b), (b, a)):
            self._links[(src, dst)] = Link(
                f"{self.name}:{src}->{dst}", src, dst, self,
                bandwidth, latency)

    def link(self, src: str, dst: str) -> Link:
        return self._links[(src, dst)]

    def links(self) -> Iterable[Link]:
        return self._links.values()

    def route(self, src: str, dst: str) -> list[Link]:
        """Directed links along the lowest-latency live path src→dst."""
        if src == dst:
            return []
        if src not in self.graph or dst not in self.graph:
            raise NoRouteError(
                f"{src!r} or {dst!r} not attached to fabric {self.name!r}")

        def weight(a: str, b: str, _attrs: dict) -> float | None:
            link = self._links[(a, b)]
            return link.latency if link.up else None

        try:
            path = nx.shortest_path(self.graph, src, dst, weight=weight)
        except nx.NetworkXNoPath as exc:
            raise NoRouteError(
                f"no live path {src!r}->{dst!r} on fabric {self.name!r}") from exc
        return [self._links[(a, b)] for a, b in zip(path, path[1:])]

    def path_latency(self, src: str, dst: str) -> float:
        return sum(l.latency for l in self.route(src, dst))

    def __repr__(self) -> str:
        return (f"<Fabric {self.name} ({self.technology.name}) "
                f"{self.graph.number_of_nodes()} nodes>")


class Topology:
    """The whole simulated grid: hosts plus fabrics."""

    def __init__(self) -> None:
        self.hosts: dict[str, Host] = {}
        self.fabrics: dict[str, Fabric] = {}

    # -- construction ---------------------------------------------------
    def add_host(self, name: str, cpus: int = 2, site: str = "default",
                 labels: Iterable[str] = ()) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(name, cpus, site, frozenset(labels))
        self.hosts[name] = host
        return host

    def add_fabric(self, name: str, technology: NetworkTechnology) -> Fabric:
        if name in self.fabrics:
            raise ValueError(f"duplicate fabric {name!r}")
        fabric = Fabric(name, technology)
        self.fabrics[name] = fabric
        return fabric

    def add_switch(self, fabric: str | Fabric, name: str) -> str:
        """Register a switch node on a fabric; returns its name."""
        fab = self._fabric(fabric)
        fab.graph.add_node(name)
        return name

    def attach(self, host: str | Host, fabric: str | Fabric,
               peer: str, bandwidth: float | None = None,
               latency: float | None = None) -> None:
        """Cable a host NIC to ``peer`` (a switch or another host)."""
        fab = self._fabric(fabric)
        hostname = host.name if isinstance(host, Host) else host
        if hostname not in self.hosts:
            raise ValueError(f"unknown host {hostname!r}")
        tech = fab.technology
        fab._add_edge(hostname, peer,
                      tech.bandwidth if bandwidth is None else bandwidth,
                      tech.latency if latency is None else latency)
        self.hosts[hostname].fabrics.add(fab.name)

    def link_switches(self, fabric: str | Fabric, a: str, b: str,
                      bandwidth: float | None = None,
                      latency: float | None = None) -> None:
        fab = self._fabric(fabric)
        tech = fab.technology
        fab._add_edge(a, b,
                      tech.bandwidth if bandwidth is None else bandwidth,
                      tech.latency if latency is None else latency)

    # -- queries ---------------------------------------------------------
    def _fabric(self, fabric: str | Fabric) -> Fabric:
        if isinstance(fabric, Fabric):
            return fabric
        try:
            return self.fabrics[fabric]
        except KeyError:
            raise ValueError(f"unknown fabric {fabric!r}") from None

    def route(self, src: str, dst: str, fabric: str | Fabric) -> list[Link]:
        return self._fabric(fabric).route(src, dst)

    def fabrics_connecting(self, src: str, dst: str) -> list[Fabric]:
        """All fabrics offering a live path src→dst, best bandwidth first.

        This is the raw material for PadicoTM's automatic network
        selection (§4.3.2): given two endpoints, which wires could carry
        the traffic and which is fastest.
        """
        out: list[Fabric] = []
        for fab in self.fabrics.values():
            try:
                fab.route(src, dst)
            except NoRouteError:
                continue
            out.append(fab)
        out.sort(key=lambda f: (-f.technology.bandwidth, f.name))
        return out

    def set_link_state(self, fabric: str | Fabric, src: str, dst: str,
                       up: bool, both_directions: bool = True) -> list[Link]:
        """Failure injection: bring a cable down (or back up)."""
        fab = self._fabric(fabric)
        pairs = [(src, dst), (dst, src)] if both_directions else [(src, dst)]
        changed = []
        for a, b in pairs:
            link = fab.link(a, b)
            link.up = up
            changed.append(link)
        return changed


# ---------------------------------------------------------------------------
# convenience builders used across tests, examples and benchmarks
# ---------------------------------------------------------------------------

def build_cluster(topo: Topology, name: str, n_hosts: int,
                  san: NetworkTechnology | None = MYRINET_2000,
                  lan: NetworkTechnology | None = ETHERNET_100,
                  cpus: int = 2, site: str | None = None,
                  labels: Iterable[str] = ()) -> list[Host]:
    """A cluster: ``n_hosts`` dual-CPU machines on a SAN and/or a LAN.

    Mirrors the paper's testbed: every node has a Myrinet-2000 NIC into
    the SAN switch and a Fast-Ethernet NIC into the site LAN switch.
    Fabrics are named ``{name}-san`` / ``{name}-lan``.
    """
    site = site or name
    hosts = []
    san_fab = topo.add_fabric(f"{name}-san", san) if san else None
    lan_fab = topo.add_fabric(f"{name}-lan", lan) if lan else None
    if san_fab:
        topo.add_switch(san_fab, f"{name}-san-sw")
    if lan_fab:
        topo.add_switch(lan_fab, f"{name}-lan-sw")
    for i in range(n_hosts):
        host = topo.add_host(f"{name}{i}", cpus=cpus, site=site, labels=labels)
        if san_fab:
            topo.attach(host, san_fab, f"{name}-san-sw")
        if lan_fab:
            topo.attach(host, lan_fab, f"{name}-lan-sw")
        hosts.append(host)
    return hosts


def build_two_site_grid(topo: Topology | None = None,
                        n_per_site: int = 4,
                        wan_tech: NetworkTechnology = WAN,
                        ) -> tuple[Topology, list[Host], list[Host]]:
    """The paper's §2 deployment: two clusters joined by a wide-area link.

    Returns ``(topology, site_a_hosts, site_b_hosts)``.  The WAN fabric
    reaches every host through its site router (Ethernet hop to the
    router, WAN hop between routers), so cross-site traffic is slow and
    insecure while intra-site traffic can use the SAN.
    """
    topo = topo or Topology()
    a_hosts = build_cluster(topo, "a", n_per_site, site="site-a")
    b_hosts = build_cluster(topo, "b", n_per_site, site="site-b")
    wan = topo.add_fabric("wan", wan_tech)
    topo.add_switch(wan, "router-a")
    topo.add_switch(wan, "router-b")
    topo.link_switches(wan, "router-a", "router-b")
    for h in a_hosts:
        topo.attach(h, wan, "router-a",
                    bandwidth=ETHERNET_100.bandwidth,
                    latency=ETHERNET_100.latency)
    for h in b_hosts:
        topo.attach(h, wan, "router-b",
                    bandwidth=ETHERNET_100.bandwidth,
                    latency=ETHERNET_100.latency)
    return topo, a_hosts, b_hosts
