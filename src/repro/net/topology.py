"""Grid topology: hosts, fabrics, switches, links, routing.

A :class:`Topology` holds a set of :class:`Host` machines and a set of
:class:`Fabric` networks.  A fabric is *one* network of *one*
technology — e.g. the Myrinet SAN of a cluster, a site LAN, or the
wide-area interconnect — mirroring the paper's view that a grid node may
own several NICs on different networks and that the runtime (PadicoTM)
picks which one to use per communication.

Each fabric is an undirected networkx graph whose nodes are host names
and switch names; every edge materialises as a *pair of simplex*
:class:`Link` objects (full-duplex cable), which is what makes the
max-min allocator in :mod:`repro.net.flows` attribute send and receive
bandwidth independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from repro.net.devices import ETHERNET_100, MYRINET_2000, WAN, NetworkTechnology


class NoRouteError(RuntimeError):
    """No live path between two endpoints on the requested fabric."""


class Link:
    """A simplex (one-direction) network link.

    ``up`` supports failure injection: a downed link is skipped by
    routing and kills flows currently crossing it.  Toggling it
    invalidates the owning fabric's route cache, so every mutation
    path (``Topology.set_link_state``, ``FlowNetwork.fail_link``,
    direct assignment in tests) keeps cached routes consistent.
    """

    __slots__ = ("name", "src", "dst", "fabric", "bandwidth", "latency",
                 "_up")

    def __init__(self, name: str, src: str, dst: str, fabric: "Fabric",
                 bandwidth: float, latency: float):
        self.name = name
        self.src = src
        self.dst = dst
        self.fabric = fabric
        self.bandwidth = bandwidth
        self.latency = latency
        self._up = True

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        value = bool(value)
        if value != self._up:
            self._up = value
            self.fabric._invalidate_routes()

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {self.bandwidth/1e6:.0f}MB/s {state}>"


@dataclass
class Host:
    """A grid machine.

    ``cpus`` models the paper's dual-Pentium III nodes: it bounds how
    many simulated processes can burn CPU concurrently without slowdown
    (the CPU model lives in the PadicoTM layer; here it is descriptive
    metadata used by deployment planning).
    """

    name: str
    cpus: int = 2
    site: str = "default"
    labels: frozenset[str] = frozenset()
    fabrics: set[str] = field(default_factory=set)

    def __hash__(self) -> int:
        return hash(self.name)


class Fabric:
    """One network of one technology inside a :class:`Topology`.

    ``site`` is an optional locality tag: fabrics private to one grid
    site (a cluster SAN, a site LAN) carry the site name, the wide-area
    interconnect carries ``None``.  The hierarchical max-min solver in
    :mod:`repro.net.flows` uses the tag to shard flows by site.
    """

    def __init__(self, name: str, technology: NetworkTechnology,
                 site: str | None = None):
        self.name = name
        self.technology = technology
        self.site = site
        self.graph = nx.Graph()
        self._links: dict[tuple[str, str], Link] = {}
        #: shortest-path results keyed on (src, dst); invalidated by any
        #: link state change or graph growth.  Dijkstra over a 10k-host
        #: fabric is a measurable per-transfer cost; repeated transfers
        #: between the same endpoints are the common case.
        self._route_cache: dict[tuple[str, str], list[Link]] = {}
        #: plain-int cache counters, kept off the monitor (like the
        #: FlowNetwork solver counters) so traces stay identical whether
        #: or not the cache hits; benchmarks republish them post-run
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    def _invalidate_routes(self) -> None:
        self._route_cache.clear()

    def _add_edge(self, a: str, b: str, bandwidth: float,
                  latency: float) -> None:
        if a == b:
            raise ValueError(f"self-loop {a!r} in fabric {self.name!r}")
        self.graph.add_edge(a, b)
        for src, dst in ((a, b), (b, a)):
            self._links[(src, dst)] = Link(
                f"{self.name}:{src}->{dst}", src, dst, self,
                bandwidth, latency)
        self._invalidate_routes()

    def link(self, src: str, dst: str) -> Link:
        return self._links[(src, dst)]

    def links(self) -> Iterable[Link]:
        return self._links.values()

    def route(self, src: str, dst: str) -> list[Link]:
        """Directed links along the lowest-latency live path src→dst.

        Results are cached per ``(src, dst)``; the cache is cleared by
        :meth:`Topology.set_link_state`, :meth:`~FlowNetwork.fail_link`
        (any ``Link.up`` write) and by attaching new cables, so a cached
        route is always exactly what a fresh Dijkstra would return.
        """
        if src == dst:
            return []
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            self.route_cache_hits += 1
            return list(cached)
        self.route_cache_misses += 1
        if src not in self.graph or dst not in self.graph:
            raise NoRouteError(
                f"{src!r} or {dst!r} not attached to fabric {self.name!r}")

        def weight(a: str, b: str, _attrs: dict) -> float | None:
            link = self._links[(a, b)]
            return link.latency if link.up else None

        try:
            path = nx.shortest_path(self.graph, src, dst, weight=weight)
        except nx.NetworkXNoPath as exc:
            raise NoRouteError(
                f"no live path {src!r}->{dst!r} on fabric {self.name!r}") from exc
        route = [self._links[(a, b)] for a, b in zip(path, path[1:])]
        self._route_cache[(src, dst)] = route
        return list(route)

    def path_latency(self, src: str, dst: str) -> float:
        return sum(l.latency for l in self.route(src, dst))

    def __repr__(self) -> str:
        return (f"<Fabric {self.name} ({self.technology.name}) "
                f"{self.graph.number_of_nodes()} nodes>")


class Topology:
    """The whole simulated grid: hosts plus fabrics."""

    def __init__(self) -> None:
        self.hosts: dict[str, Host] = {}
        self.fabrics: dict[str, Fabric] = {}

    # -- construction ---------------------------------------------------
    def add_host(self, name: str, cpus: int = 2, site: str = "default",
                 labels: Iterable[str] = ()) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        host = Host(name, cpus, site, frozenset(labels))
        self.hosts[name] = host
        return host

    def add_fabric(self, name: str, technology: NetworkTechnology,
                   site: str | None = None) -> Fabric:
        if name in self.fabrics:
            raise ValueError(f"duplicate fabric {name!r}")
        fabric = Fabric(name, technology, site=site)
        self.fabrics[name] = fabric
        return fabric

    def add_switch(self, fabric: str | Fabric, name: str) -> str:
        """Register a switch node on a fabric; returns its name."""
        fab = self._fabric(fabric)
        fab.graph.add_node(name)
        return name

    def attach(self, host: str | Host, fabric: str | Fabric,
               peer: str, bandwidth: float | None = None,
               latency: float | None = None) -> None:
        """Cable a host NIC to ``peer`` (a switch or another host)."""
        fab = self._fabric(fabric)
        hostname = host.name if isinstance(host, Host) else host
        if hostname not in self.hosts:
            raise ValueError(f"unknown host {hostname!r}")
        tech = fab.technology
        fab._add_edge(hostname, peer,
                      tech.bandwidth if bandwidth is None else bandwidth,
                      tech.latency if latency is None else latency)
        self.hosts[hostname].fabrics.add(fab.name)

    def link_switches(self, fabric: str | Fabric, a: str, b: str,
                      bandwidth: float | None = None,
                      latency: float | None = None) -> None:
        fab = self._fabric(fabric)
        tech = fab.technology
        fab._add_edge(a, b,
                      tech.bandwidth if bandwidth is None else bandwidth,
                      tech.latency if latency is None else latency)

    # -- queries ---------------------------------------------------------
    def _fabric(self, fabric: str | Fabric) -> Fabric:
        if isinstance(fabric, Fabric):
            return fabric
        try:
            return self.fabrics[fabric]
        except KeyError:
            raise ValueError(f"unknown fabric {fabric!r}") from None

    def route(self, src: str, dst: str, fabric: str | Fabric) -> list[Link]:
        return self._fabric(fabric).route(src, dst)

    def fabrics_connecting(self, src: str, dst: str) -> list[Fabric]:
        """All fabrics offering a live path src→dst, best bandwidth first.

        This is the raw material for PadicoTM's automatic network
        selection (§4.3.2): given two endpoints, which wires could carry
        the traffic and which is fastest.
        """
        out: list[Fabric] = []
        for fab in self.fabrics.values():
            try:
                fab.route(src, dst)
            except NoRouteError:
                continue
            out.append(fab)
        out.sort(key=lambda f: (-f.technology.bandwidth, f.name))
        return out

    def route_cache_stats(self) -> tuple[int, int]:
        """Aggregate ``(hits, misses)`` of every fabric's route cache."""
        hits = misses = 0
        for fab in self.fabrics.values():
            hits += fab.route_cache_hits
            misses += fab.route_cache_misses
        return hits, misses

    def set_link_state(self, fabric: str | Fabric, src: str, dst: str,
                       up: bool, both_directions: bool = True) -> list[Link]:
        """Failure injection: bring a cable down (or back up)."""
        fab = self._fabric(fabric)
        pairs = [(src, dst), (dst, src)] if both_directions else [(src, dst)]
        changed = []
        for a, b in pairs:
            link = fab.link(a, b)
            link.up = up
            changed.append(link)
        return changed


# ---------------------------------------------------------------------------
# convenience builders used across tests, examples and benchmarks
# ---------------------------------------------------------------------------

def build_cluster(topo: Topology, name: str, n_hosts: int,
                  san: NetworkTechnology | None = MYRINET_2000,
                  lan: NetworkTechnology | None = ETHERNET_100,
                  cpus: int = 2, site: str | None = None,
                  labels: Iterable[str] = (),
                  switch_fanout: int | None = None,
                  host_prefix: str | None = None) -> list[Host]:
    """A cluster: ``n_hosts`` dual-CPU machines on a SAN and/or a LAN.

    Mirrors the paper's testbed: every node has a Myrinet-2000 NIC into
    the SAN switch and a Fast-Ethernet NIC into the site LAN switch.
    Fabrics are named ``{name}-san`` / ``{name}-lan`` and carry the
    cluster's site as their locality tag (the hierarchical solver's
    shard key).

    ``switch_fanout`` bounds the port count of one switch: above it,
    hosts are spread over leaf switches (``{name}-san-sw0``, ``-sw1``,
    …, ``fanout`` hosts each) that uplink to a spine (``{name}-san-sw``)
    at the technology's native rate — the realistic shape of a large
    Myrinet/SCI island.  With ``None`` (default) every host plugs into
    the single flat switch, exactly as before.

    ``host_prefix`` overrides the host-name prefix (default ``name``):
    callers generating many numbered clusters pass a prefix ending in a
    non-digit so ``{prefix}{i}`` cannot collide across clusters
    (``g1`` + ``10`` vs ``g11`` + ``0``).
    """
    site = site or name
    host_prefix = host_prefix or name
    hosts = []
    san_fab = topo.add_fabric(f"{name}-san", san, site=site) if san else None
    lan_fab = topo.add_fabric(f"{name}-lan", lan, site=site) if lan else None
    fanned = switch_fanout is not None and n_hosts > switch_fanout

    def _spine(fab: Fabric, kind: str) -> str:
        spine = f"{name}-{kind}-sw"
        topo.add_switch(fab, spine)
        if fanned:
            n_leaves = (n_hosts + switch_fanout - 1) // switch_fanout
            for k in range(n_leaves):
                topo.add_switch(fab, f"{spine}{k}")
                topo.link_switches(fab, f"{spine}{k}", spine)
        return spine

    san_spine = _spine(san_fab, "san") if san_fab else None
    lan_spine = _spine(lan_fab, "lan") if lan_fab else None
    for i in range(n_hosts):
        host = topo.add_host(f"{host_prefix}{i}", cpus=cpus, site=site,
                             labels=labels)
        leaf = f"{i // switch_fanout}" if fanned else ""
        if san_fab:
            topo.attach(host, san_fab, f"{san_spine}{leaf}")
        if lan_fab:
            topo.attach(host, lan_fab, f"{lan_spine}{leaf}")
        hosts.append(host)
    return hosts


def build_grid(topo: Topology | None = None, sites: int = 2,
               hosts_per_site: int = 4,
               san: NetworkTechnology | None = MYRINET_2000,
               lan: NetworkTechnology | None = None,
               site_techs: Sequence[NetworkTechnology] | None = None,
               wan_tech: NetworkTechnology = WAN,
               wan_bandwidth: float | None = None,
               wan_latency: float | None = None,
               uplink_bandwidth: float | None = None,
               uplink_latency: float | None = None,
               switch_fanout: int | None = None,
               name: str = "g") -> tuple[Topology, dict[str, list[Host]]]:
    """A multi-site grid: ``sites`` clusters joined by wide-area links.

    The paper's Figure-1 environment scaled up: every site is a
    high-performance cluster built with :func:`build_cluster` (its own
    SAN fabric, tagged with the site name; ``switch_fanout`` spreads
    large sites over leaf switches), and a single site-less ``{name}-wan``
    fabric couples the sites — one router switch per site, all routers
    cabled to a core switch at ``wan_bandwidth``/``wan_latency``
    (defaulting to ``wan_tech``'s numbers), every host cabled to its
    site router at Fast-Ethernet rates unless overridden.

    ``site_techs`` rotates SAN technologies across sites (e.g.
    ``(MYRINET_2000, SCI)`` for alternating Myrinet and SCI islands);
    when ``None`` every site uses ``san``.

    Returns ``(topology, {site_name: hosts})``.  Site names are
    ``{name}0`` … ``{name}{sites-1}``; intra-site traffic routes over
    the site SAN, cross-site traffic over the WAN fabric only — the
    decomposition seam the hierarchical max-min solver shards on.
    """
    if sites < 1:
        raise ValueError("a grid needs at least one site")
    topo = topo or Topology()
    wan = topo.add_fabric(f"{name}-wan", wan_tech)
    core = topo.add_switch(wan, f"{name}-wan-core")
    if uplink_bandwidth is None:
        uplink_bandwidth = ETHERNET_100.bandwidth
    if uplink_latency is None:
        uplink_latency = ETHERNET_100.latency
    site_hosts: dict[str, list[Host]] = {}
    for i in range(sites):
        site = f"{name}{i}"
        tech = site_techs[i % len(site_techs)] if site_techs else san
        hosts = build_cluster(topo, site, hosts_per_site, san=tech, lan=lan,
                              site=site, switch_fanout=switch_fanout,
                              host_prefix=f"{site}n")
        router = topo.add_switch(wan, f"{name}-wan-r{i}")
        topo.link_switches(wan, router, core,
                           bandwidth=wan_bandwidth, latency=wan_latency)
        for h in hosts:
            topo.attach(h, wan, router,
                        bandwidth=uplink_bandwidth, latency=uplink_latency)
        site_hosts[site] = hosts
    return topo, site_hosts


def build_two_site_grid(topo: Topology | None = None,
                        n_per_site: int = 4,
                        wan_tech: NetworkTechnology = WAN,
                        ) -> tuple[Topology, list[Host], list[Host]]:
    """The paper's §2 deployment: two clusters joined by a wide-area link.

    Returns ``(topology, site_a_hosts, site_b_hosts)``.  The WAN fabric
    reaches every host through its site router (Ethernet hop to the
    router, WAN hop between routers), so cross-site traffic is slow and
    insecure while intra-site traffic can use the SAN.
    """
    topo = topo or Topology()
    a_hosts = build_cluster(topo, "a", n_per_site, site="site-a")
    b_hosts = build_cluster(topo, "b", n_per_site, site="site-b")
    wan = topo.add_fabric("wan", wan_tech)
    topo.add_switch(wan, "router-a")
    topo.add_switch(wan, "router-b")
    topo.link_switches(wan, "router-a", "router-b")
    for h in a_hosts:
        topo.attach(h, wan, "router-a",
                    bandwidth=ETHERNET_100.bandwidth,
                    latency=ETHERNET_100.latency)
    for h in b_hosts:
        topo.attach(h, wan, "router-b",
                    bandwidth=ETHERNET_100.bandwidth,
                    latency=ETHERNET_100.latency)
    return topo, a_hosts, b_hosts
