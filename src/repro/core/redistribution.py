"""Redistribution planning: who sends which indices to whom.

Given a source distribution over N client nodes and a target
distribution over M server nodes of the same global index space, the
plan lists every required :class:`Transfer`.  Block→block uses closed
form interval intersection; arbitrary combinations fall back to
vectorised owner arithmetic.  All nodes can compute the full plan
independently (it depends only on the two distributions), which is what
lets every process participate in the transfer with no coordination —
the paper's "all processes of a parallel component participate to
inter-component communications, to avoid bottlenecks".

§4.2.2: the redistribution *site* — client side, server side, or during
communication — is a policy decision; :func:`choose_redistribution_site`
implements the paper's feasibility (memory) / efficiency (network
performance) heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.distribution import (
    BlockDistribution,
    Distribution,
    DistributionError,
)


@dataclass(frozen=True)
class Transfer:
    """One message of a redistribution.

    ``src_local``/``dst_local`` are index arrays into the source part's
    and target part's local arrays; they always have equal length.
    For contiguous transfers both are plain slices encoded as ranges.
    """

    src: int
    dst: int
    src_local: np.ndarray
    dst_local: np.ndarray

    @property
    def size(self) -> int:
        return len(self.src_local)

    @cached_property
    def src_slice(self) -> slice | None:
        """``src_local`` as a slice when it is a unit-stride range.

        Block→block plans always qualify, which is what lets the wire
        path gather pieces as views instead of fancy-index copies."""
        return _as_slice(self.src_local)

    @cached_property
    def dst_slice(self) -> slice | None:
        """``dst_local`` as a slice when it is a unit-stride range."""
        return _as_slice(self.dst_local)

    def __eq__(self, other: object) -> bool:  # ndarray-aware equality
        return (isinstance(other, Transfer) and other.src == self.src
                and other.dst == self.dst
                and np.array_equal(other.src_local, self.src_local)
                and np.array_equal(other.dst_local, self.dst_local))


def _as_slice(idx: np.ndarray) -> slice | None:
    """A slice equivalent to ``idx``, or None if it is not unit-stride."""
    idx = np.asarray(idx)
    n = len(idx)
    if n == 0:
        return slice(0, 0)
    first = int(idx[0])
    if int(idx[-1]) - first != n - 1:
        return None
    if n > 2 and not np.array_equal(idx, np.arange(first, first + n,
                                                   dtype=idx.dtype)):
        return None
    return slice(first, first + n)


@dataclass
class RedistributionPlan:
    """All transfers from ``source`` to ``target`` distribution."""

    source: Distribution
    target: Distribution
    transfers: list[Transfer]

    def outgoing(self, src: int) -> list[Transfer]:
        return [t for t in self.transfers if t.src == src]

    def incoming(self, dst: int) -> list[Transfer]:
        return [t for t in self.transfers if t.dst == dst]

    def apply(self, locals_in: list[np.ndarray]) -> list[np.ndarray]:
        """Execute the plan in-memory (reference semantics for tests).

        ``locals_in[p]`` is part p's local array under ``source``;
        returns the local arrays under ``target``.
        """
        if len(locals_in) != self.source.parts:
            raise DistributionError(
                f"expected {self.source.parts} local arrays")
        dtype = locals_in[0].dtype if locals_in else np.float64
        out = [np.zeros(self.target.local_size(p), dtype=dtype)
               for p in range(self.target.parts)]
        for t in self.transfers:
            out[t.dst][t.dst_local] = locals_in[t.src][t.src_local]
        return out


def redistribute_schedule(source: Distribution,
                          target: Distribution) -> RedistributionPlan:
    """Compute the transfer schedule from ``source`` to ``target``."""
    if source.length != target.length:
        raise DistributionError(
            f"length mismatch: {source.length} != {target.length}")
    if isinstance(source, BlockDistribution) and \
            isinstance(target, BlockDistribution):
        transfers = _block_block(source, target)
    else:
        transfers = _generic(source, target)
    return RedistributionPlan(source, target, transfers)


def _block_block(source: BlockDistribution,
                 target: BlockDistribution) -> list[Transfer]:
    """Closed-form interval intersection: O(N + M) transfers."""
    transfers: list[Transfer] = []
    for src in range(source.parts):
        s0, s1 = source.start(src), source.end(src)
        if s0 == s1:
            continue
        first = target.owner(s0)
        last = target.owner(s1 - 1)
        for dst in range(first, last + 1):
            t0, t1 = target.start(dst), target.end(dst)
            lo, hi = max(s0, t0), min(s1, t1)
            if lo >= hi:
                continue
            transfers.append(Transfer(
                src, dst,
                np.arange(lo - s0, hi - s0, dtype=np.int64),
                np.arange(lo - t0, hi - t0, dtype=np.int64)))
    return transfers


def _generic(source: Distribution, target: Distribution) -> list[Transfer]:
    """Vectorised owner arithmetic for any distribution pair.

    One stable argsort of the owner array replaces the per-destination
    masking pass (which rescanned all ``n`` indices once per distinct
    owner).  A stable sort keeps equal-owner indices in ascending
    position order, so each run of the sorted owner array is exactly
    the index subset the old ``owners == dst`` mask selected, in the
    same order — the equality test in tests/core/ pins that down.
    """
    transfers: list[Transfer] = []
    for src in range(source.parts):
        gidx = source.global_indices(src)
        if len(gidx) == 0:
            continue
        owners = target.owner(gidx)
        src_local = source.local_of_global(src, gidx)
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        cut = np.flatnonzero(np.diff(sorted_owners)) + 1
        starts = np.concatenate(([0], cut))
        ends = np.concatenate((cut, [len(sorted_owners)]))
        for s, e in zip(starts, ends):
            sel = order[s:e]
            dst = int(sorted_owners[s])
            transfers.append(Transfer(
                src, dst,
                src_local[sel],
                target.local_of_global(dst, gidx[sel])))
    return transfers


# ---------------------------------------------------------------------------
# placement policy (§4.2.2)
# ---------------------------------------------------------------------------

CLIENT_SIDE = "client"
SERVER_SIDE = "server"
IN_TRANSIT = "in-transit"


def choose_redistribution_site(nbytes: float,
                               client_free_memory: float,
                               server_free_memory: float,
                               client_net_bandwidth: float,
                               server_net_bandwidth: float,
                               ) -> str:
    """Where should the data be rearranged?

    The paper: "It can perform a redistribution of the data on the
    client side, on the server side or during the communication between
    the client and the server.  The decision depends on several
    constraints like feasibility (mainly memory requirements) and
    efficiency (client network performance versus server network
    performance)."

    - rearranging on a side needs roughly one extra copy of the data in
      that side's memory (feasibility);
    - otherwise prefer rearranging on the side with the *faster*
      internal network, since rearrangement costs intra-component
      traffic there (efficiency);
    - if neither side has the memory, stream pieces and rearrange
      in-transit (no full extra copy, but per-piece overhead).
    """
    client_ok = client_free_memory >= nbytes
    server_ok = server_free_memory >= nbytes
    if not client_ok and not server_ok:
        return IN_TRANSIT
    if client_ok and not server_ok:
        return CLIENT_SIDE
    if server_ok and not client_ok:
        return SERVER_SIDE
    return (CLIENT_SIDE if client_net_bandwidth >= server_net_bandwidth
            else SERVER_SIDE)
