"""Hybrid assembly deployment: standard CCM + GridCCM instances.

The paper's deployment story ends with "Deployment mechanisms should
still be improved"; this module is that improvement: one assembly
descriptor can now mix ordinary components with parallel ones —

    <instance id="transport0" componentfile="trans" nodes="4"/>

— where the software package carries the parallelism description::

    <implementation id="DCE:trans-1">
      <component>App::Transport</component>
      <parallelism component="App::Transport"> ... </parallelism>
    </implementation>

The :class:`HybridDeployer` routes sequential instances through the
standard CCM :class:`~repro.ccm.deployment.DeploymentEngine` and spins
parallel instances up as :class:`~repro.core.runtime.ParallelComponent`
groups; connections from standard receptacles land on the parallel
proxies, which is legal because proxies advertise the original
interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.ccm.component import ImplementationRepository
from repro.ccm.deployment import DeployedApplication, DeploymentEngine
from repro.ccm.descriptors import (
    AssemblyDescriptor,
    DescriptorError,
    InstanceDecl,
)
from repro.core.runtime import GridCcmError, ParallelComponent
from repro.corba.orb import ObjectRef
from repro.corba.profiles import OMNIORB4, OrbProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoRuntime


@dataclass
class HybridApplication:
    """Handle on a deployed hybrid assembly."""

    assembly_id: str
    standard: DeployedApplication
    parallel: dict[str, ParallelComponent] = field(default_factory=dict)

    def component(self, instance_id: str) -> ObjectRef:
        return self.standard.component(instance_id)

    def parallel_component(self, instance_id: str) -> ParallelComponent:
        try:
            return self.parallel[instance_id]
        except KeyError:
            raise DescriptorError(
                f"{instance_id!r} is not a parallel instance") from None

    def teardown(self) -> None:
        self.standard.teardown()
        for comp in self.parallel.values():
            comp.remove()
        self.parallel.clear()


class HybridDeployer:
    """Deploys assemblies mixing sequential and parallel instances."""

    def __init__(self, runtime: "PadicoRuntime", engine: DeploymentEngine,
                 idl_source: str, profile: OrbProfile = OMNIORB4):
        self.runtime = runtime
        self.engine = engine
        self.idl_source = idl_source
        self.profile = profile

    # ------------------------------------------------------------------
    def deploy(self, assembly: AssemblyDescriptor,
               placement: dict[str, Any] | None = None
               ) -> HybridApplication:
        """Deploy ``assembly``; call from a simulated thread.

        ``placement`` entries for parallel instances are *lists* of
        PadicoTM process names (one per node); sequential instances use
        plain process names as usual."""
        placement = dict(placement or {})
        parallel_insts = [i for i in assembly.instances
                          if self._is_parallel(assembly, i)]
        parallel_ids = {i.id for i in parallel_insts}

        # 1. parallel instances first (their proxies must exist before
        #    the standard engine wires connections to them)
        parallel: dict[str, ParallelComponent] = {}
        for inst in parallel_insts:
            parallel[inst.id] = self._deploy_parallel(assembly, inst,
                                                      placement)

        # 2. standard instances through the normal engine, with the
        #    parallel pieces carved out of the descriptor
        sub = self._sequential_subassembly(assembly, parallel_ids)
        app = self.engine.deploy(sub, placement={
            k: v for k, v in placement.items() if k not in parallel_ids})

        # 3. connections that touch a parallel instance
        for conn in assembly.connections:
            provider_par = conn.provider_instance in parallel_ids
            user_par = conn.user_instance in parallel_ids
            if not provider_par and not user_par:
                continue  # already wired by the engine
            if user_par:
                raise DescriptorError(
                    f"connection {conn.user_instance!r}->"
                    f"{conn.provider_instance!r}: uses/emits ports on "
                    f"parallel instances are not supported yet")
            if conn.kind != "interface":
                raise DescriptorError(
                    f"event connections to parallel instance "
                    f"{conn.provider_instance!r} are not supported yet")
            comp = parallel[conn.provider_instance]
            proxy = self.engine.orb.adopt(
                comp.proxy_refs.get(conn.provider_port))
            if proxy is None:
                raise DescriptorError(
                    f"parallel instance {conn.provider_instance!r} has "
                    f"no parallel port {conn.provider_port!r}")
            app.component(conn.user_instance).connect(conn.user_port,
                                                      proxy)

        # 4. configuration of parallel instances + activation
        for inst_id, name, value in assembly.properties:
            if inst_id in parallel_ids:
                parallel[inst_id].configure(name, value)
        for comp in parallel.values():
            comp.activate()

        return HybridApplication(assembly.id, app, parallel)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_parallel(assembly: AssemblyDescriptor,
                     inst: InstanceDecl) -> bool:
        return inst.nodes > 1

    def _implementation(self, assembly: AssemblyDescriptor,
                        inst: InstanceDecl):
        pkg_name = assembly.componentfiles[inst.componentfile]
        pkg = self.engine.packages.get(pkg_name)
        if pkg is None:
            raise DescriptorError(f"unknown software package {pkg_name!r}")
        impl = pkg.implementations[0]
        return impl.component, impl

    def _deploy_parallel(self, assembly: AssemblyDescriptor,
                         inst: InstanceDecl,
                         placement: dict[str, Any]) -> ParallelComponent:
        component, impl = self._implementation(assembly, inst)
        if impl.parallelism is None:
            raise DescriptorError(
                f"instance {inst.id!r} requests {inst.nodes} nodes but "
                f"implementation {impl.impl_id!r} declares no "
                f"<parallelism>")
        process_names = placement.get(inst.id)
        if not isinstance(process_names, (list, tuple)) or \
                len(process_names) != inst.nodes:
            raise DescriptorError(
                f"parallel instance {inst.id!r} needs a placement list "
                f"of exactly {inst.nodes} process names")
        processes = [self.runtime.process(p) for p in process_names]
        declared, factory = ImplementationRepository.lookup(impl.impl_id)
        if declared != component:
            raise DescriptorError(
                f"implementation {impl.impl_id!r} implements "
                f"{declared!r}, not {component!r}")
        try:
            return ParallelComponent.create(
                self.runtime, inst.id, processes, self.idl_source,
                impl.parallelism, factory, profile=self.profile)
        except GridCcmError as exc:
            raise DescriptorError(
                f"cannot deploy parallel instance {inst.id!r}: {exc}") \
                from exc

    @staticmethod
    def _sequential_subassembly(assembly: AssemblyDescriptor,
                                parallel_ids: set[str]
                                ) -> AssemblyDescriptor:
        sub = AssemblyDescriptor(assembly.id)
        sub.componentfiles = dict(assembly.componentfiles)
        sub.instances = [i for i in assembly.instances
                         if i.id not in parallel_ids]
        sub.connections = [
            c for c in assembly.connections
            if c.user_instance not in parallel_ids
            and c.provider_instance not in parallel_ids]
        sub.properties = [
            p for p in assembly.properties if p[0] not in parallel_ids]
        return sub
