"""XML description of a component's parallelism (paper Figure 5).

The GridCCM compiler consumes the component's IDL *and* an XML document
describing which provided operations are parallel and how their
arguments are distributed::

    <parallelism component="App::Transport">
      <port name="input">
        <operation name="setDensity">
          <argument name="values" distribution="block"/>
          <result policy="none"/>
        </operation>
        <operation name="relax">
          <argument name="field" distribution="block-cyclic" blocksize="64"/>
          <result policy="sum"/>
        </operation>
      </port>
    </parallelism>

Result policies describe how per-node return values combine at the
client layer: ``none`` (void), ``first`` (all nodes agree; take one),
``sum`` (reduce), ``concat`` (distributed result: concatenate chunks in
node order).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

DISTRIBUTION_KINDS = ("block", "cyclic", "block-cyclic")
RESULT_POLICIES = ("none", "first", "sum", "concat")


class ParallelismError(Exception):
    """Malformed or inconsistent parallelism description."""


@dataclass(frozen=True)
class ParallelArgSpec:
    name: str
    distribution: str = "block"
    block_size: int | None = None

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTION_KINDS:
            raise ParallelismError(
                f"unknown distribution {self.distribution!r} "
                f"(one of {DISTRIBUTION_KINDS})")
        if self.distribution == "block-cyclic" and not self.block_size:
            raise ParallelismError(
                f"argument {self.name!r}: block-cyclic needs blocksize")


@dataclass(frozen=True)
class ParallelOpSpec:
    port: str
    name: str
    args: tuple[ParallelArgSpec, ...] = ()
    result_policy: str = "first"

    def __post_init__(self) -> None:
        if self.result_policy not in RESULT_POLICIES:
            raise ParallelismError(
                f"unknown result policy {self.result_policy!r}")

    def arg(self, name: str) -> ParallelArgSpec | None:
        for a in self.args:
            if a.name == name:
                return a
        return None


@dataclass
class ParallelismDescriptor:
    """Which operations of which ports are parallel, and how."""

    component: str
    operations: dict[tuple[str, str], ParallelOpSpec] = \
        field(default_factory=dict)

    @classmethod
    def parse(cls, xml_text: str) -> "ParallelismDescriptor":
        try:
            root = ET.fromstring(xml_text)
        except ET.ParseError as exc:
            raise ParallelismError(f"malformed XML: {exc}") from exc
        if root.tag != "parallelism":
            raise ParallelismError(
                f"expected <parallelism>, got <{root.tag}>")
        component = root.get("component")
        if not component:
            raise ParallelismError("<parallelism> needs a component name")
        desc = cls(component)
        for port_el in root.findall("port"):
            port = port_el.get("name")
            if not port:
                raise ParallelismError("<port> needs a name")
            for op_el in port_el.findall("operation"):
                opname = op_el.get("name")
                if not opname:
                    raise ParallelismError("<operation> needs a name")
                args = []
                for arg_el in op_el.findall("argument"):
                    aname = arg_el.get("name")
                    if not aname:
                        raise ParallelismError("<argument> needs a name")
                    bs = arg_el.get("blocksize")
                    args.append(ParallelArgSpec(
                        aname, arg_el.get("distribution", "block"),
                        int(bs) if bs else None))
                result_el = op_el.find("result")
                policy = result_el.get("policy", "first") \
                    if result_el is not None else "first"
                desc.add(ParallelOpSpec(port, opname, tuple(args), policy))
        if not desc.operations:
            raise ParallelismError(
                f"{component}: no parallel operations declared")
        return desc

    def add(self, spec: ParallelOpSpec) -> None:
        key = (spec.port, spec.name)
        if key in self.operations:
            raise ParallelismError(
                f"operation {spec.name!r} on port {spec.port!r} declared "
                f"twice")
        self.operations[key] = spec

    def spec_for(self, port: str, opname: str) -> ParallelOpSpec | None:
        return self.operations.get((port, opname))

    def ports(self) -> list[str]:
        return sorted({port for port, _ in self.operations})
