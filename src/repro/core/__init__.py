"""GridCCM — parallel CORBA components (the paper's core contribution).

GridCCM extends CCM with *parallel components*: an SPMD code (its
processes communicating through MPI) is encapsulated behind ordinary
CORBA interfaces, and remote invocations carrying distributed arguments
are intercepted by a generated software layer that splits, redistributes
and reassembles the data **node-to-node** — every process of both
components participates, so no master node bottlenecks the transfer
(paper Figure 3/4).

Pipeline (paper Figure 5):

1. describe the component's parallelism in XML
   (:class:`ParallelismDescriptor`);
2. the GridCCM compiler (:class:`GridCcmCompiler`) derives an *internal*
   interface — distributed ``sequence<T>`` arguments become chunk
   parameters with offset/total metadata — without touching the user
   IDL or the ORB;
3. at runtime, :class:`ParallelComponent` deploys one component
   instance per node plus a :class:`proxy <ParallelProxy>` so
   *sequential* clients still see a standard component, while
   parallel-aware clients attach a :class:`ParallelClient` layer that
   talks to all server nodes directly.
"""

from repro.core.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    Distribution,
    DistributionError,
)
from repro.core.redistribution import (
    RedistributionPlan,
    Transfer,
    choose_redistribution_site,
    redistribute_schedule,
)
from repro.core.parallelism import (
    ParallelArgSpec,
    ParallelismDescriptor,
    ParallelismError,
    ParallelOpSpec,
)
from repro.core.compiler import GridCcmCompiler, ParallelOpInfo, ParallelPlan
from repro.core.assembly import HybridApplication, HybridDeployer
from repro.core.runtime import (
    GRIDCCM_COPY_COST,
    ParallelClient,
    ParallelComponent,
)

__all__ = [
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "DistributionError",
    "Transfer",
    "RedistributionPlan",
    "redistribute_schedule",
    "choose_redistribution_site",
    "ParallelismDescriptor",
    "ParallelOpSpec",
    "ParallelArgSpec",
    "ParallelismError",
    "GridCcmCompiler",
    "ParallelPlan",
    "ParallelOpInfo",
    "ParallelComponent",
    "ParallelClient",
    "GRIDCCM_COPY_COST",
    "HybridDeployer",
    "HybridApplication",
]
