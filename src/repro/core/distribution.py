"""1D data distributions (block, cyclic, block-cyclic).

A distribution maps the ``length`` global indices of a 1D array onto
``parts`` owners.  GridCCM's current model distributes IDL sequences —
1D arrays — exactly as the paper describes ("one dimension distribution
can automatically be applied"); multidimensional arrays map to nested
sequences whose outer dimension is distributed.

All index math is vectorised (numpy) so redistribution planning stays
cheap even for large index spaces.
"""

from __future__ import annotations

import numpy as np


class DistributionError(ValueError):
    """Invalid distribution parameters or indices."""


class Distribution:
    """Base class: a partition of ``range(length)`` into ``parts``."""

    kind = "abstract"

    def __init__(self, parts: int, length: int):
        if parts < 1:
            raise DistributionError(f"parts must be >= 1, got {parts}")
        if length < 0:
            raise DistributionError(f"length must be >= 0, got {length}")
        self.parts = parts
        self.length = length

    # -- interface --------------------------------------------------------
    def owner(self, index: int | np.ndarray) -> int | np.ndarray:
        """Owning part of global index/indices."""
        raise NotImplementedError

    def global_indices(self, part: int) -> np.ndarray:
        """Sorted global indices owned by ``part``."""
        raise NotImplementedError

    def local_size(self, part: int) -> int:
        return len(self.global_indices(part))

    def local_of_global(self, part: int, global_idx: np.ndarray) -> np.ndarray:
        """Positions of ``global_idx`` within ``part``'s local array."""
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------
    def _check_part(self, part: int) -> None:
        if not 0 <= part < self.parts:
            raise DistributionError(
                f"part {part} out of range (parts={self.parts})")

    def __eq__(self, other: object) -> bool:
        return (type(other) is type(self)
                and other.__dict__ == self.__dict__)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            self.__dict__.items()))))

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} parts={self.parts} "
                f"length={self.length}>")


class BlockDistribution(Distribution):
    """Contiguous blocks; the first ``length % parts`` blocks get one
    extra element (standard HPF BLOCK)."""

    kind = "block"

    def _bounds(self) -> np.ndarray:
        base, extra = divmod(self.length, self.parts)
        sizes = np.full(self.parts, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.concatenate(([0], np.cumsum(sizes)))

    def start(self, part: int) -> int:
        self._check_part(part)
        return int(self._bounds()[part])

    def end(self, part: int) -> int:
        self._check_part(part)
        return int(self._bounds()[part + 1])

    def owner(self, index):
        idx = np.asarray(index)
        if self.length == 0:
            raise DistributionError("empty distribution has no owners")
        if np.any((idx < 0) | (idx >= self.length)):
            raise DistributionError(f"index out of range: {index}")
        bounds = self._bounds()
        out = np.searchsorted(bounds, idx, side="right") - 1
        return out if isinstance(index, np.ndarray) else int(out)

    def global_indices(self, part: int) -> np.ndarray:
        self._check_part(part)
        bounds = self._bounds()
        return np.arange(bounds[part], bounds[part + 1], dtype=np.int64)

    def local_size(self, part: int) -> int:
        self._check_part(part)
        bounds = self._bounds()
        return int(bounds[part + 1] - bounds[part])

    def local_of_global(self, part: int, global_idx: np.ndarray) -> np.ndarray:
        return np.asarray(global_idx, dtype=np.int64) - self.start(part)


class CyclicDistribution(Distribution):
    """Round-robin element distribution (HPF CYCLIC)."""

    kind = "cyclic"

    def owner(self, index):
        idx = np.asarray(index)
        if np.any((idx < 0) | (idx >= self.length)):
            raise DistributionError(f"index out of range: {index}")
        out = idx % self.parts
        return out if isinstance(index, np.ndarray) else int(out)

    def global_indices(self, part: int) -> np.ndarray:
        self._check_part(part)
        return np.arange(part, self.length, self.parts, dtype=np.int64)

    def local_size(self, part: int) -> int:
        self._check_part(part)
        if part >= self.length:
            return 0
        return int((self.length - part - 1) // self.parts + 1)

    def local_of_global(self, part: int, global_idx: np.ndarray) -> np.ndarray:
        g = np.asarray(global_idx, dtype=np.int64)
        return (g - part) // self.parts


class BlockCyclicDistribution(Distribution):
    """Blocks of ``block_size`` dealt round-robin (HPF CYCLIC(k))."""

    kind = "block-cyclic"

    def __init__(self, parts: int, length: int, block_size: int):
        super().__init__(parts, length)
        if block_size < 1:
            raise DistributionError(
                f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size

    def owner(self, index):
        idx = np.asarray(index)
        if np.any((idx < 0) | (idx >= self.length)):
            raise DistributionError(f"index out of range: {index}")
        out = (idx // self.block_size) % self.parts
        return out if isinstance(index, np.ndarray) else int(out)

    def global_indices(self, part: int) -> np.ndarray:
        self._check_part(part)
        all_idx = np.arange(self.length, dtype=np.int64)
        return all_idx[(all_idx // self.block_size) % self.parts == part]

    def local_of_global(self, part: int, global_idx: np.ndarray) -> np.ndarray:
        g = np.asarray(global_idx, dtype=np.int64)
        block = g // self.block_size
        round_idx = block // self.parts
        return round_idx * self.block_size + g % self.block_size


def make_distribution(kind: str, parts: int, length: int,
                      block_size: int | None = None) -> Distribution:
    """Factory used by the parallelism descriptor."""
    if kind == "block":
        return BlockDistribution(parts, length)
    if kind == "cyclic":
        return CyclicDistribution(parts, length)
    if kind == "block-cyclic":
        if block_size is None:
            raise DistributionError("block-cyclic needs a block_size")
        return BlockCyclicDistribution(parts, length, block_size)
    raise DistributionError(f"unknown distribution kind {kind!r}")
