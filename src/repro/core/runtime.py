"""GridCCM runtime: parallel components, proxies, client layers.

Call path for a parallel invocation (paper Figures 3 & 4):

1. every client rank calls the operation on its
   :class:`ParallelClient` port with its *local* chunk of each
   distributed argument (canonical block distribution over the client
   group);
2. the client layer agrees on global sizes (one small allgather on the
   client's own MPI world), computes the redistribution schedule, and
   sends each piece **directly** to the server node that owns it — one
   internal CORBA invocation per target, issued concurrently from
   helper threads;
3. each server node's layer collects the pieces it expects, assembles
   the local block, and runs the user operation *once* (all handler
   threads of that invocation return its result);
4. results combine client-side according to the declared policy.

Sequential clients never see any of this: the :class:`ParallelProxy` on
node 0 implements the original interface and performs the scatter
itself, so a parallel component remains a perfectly ordinary CORBA
component from the outside.

Cost model: the layer's split/assemble copies cost
``GRIDCCM_COPY_COST`` seconds per byte on each side, calibrated so a
1→1 GridCCM invocation over Mico/Myrinet peaks at the paper's 43 MB/s
(Figure 8 first row)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.ccm.container import Container
from repro.ccm.component import ComponentImpl
from repro.core.compiler import GridCcmCompiler, ParallelOpInfo, ParallelPlan
from repro.core.distribution import (
    BlockDistribution,
    Distribution,
    make_distribution,
)
from repro.core.parallelism import ParallelismDescriptor
from repro.core.redistribution import RedistributionPlan, redistribute_schedule
from repro.corba.idl.compiler import compile_idl
from repro.corba.ior import IOR
from repro.corba.orb import ObjectRef, Orb, SystemException
from repro.corba.profiles import OMNIORB4, OrbProfile
from repro.mpi.communicator import Comm
from repro.mpi.ops import SUM
from repro.mpi.world import World, create_world
from repro.sim.kernel import SimProcess
from repro.sim.sync import SimEvent, SimLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime

#: per-byte CPU cost of the GridCCM split/assembly copy, each side.
#: 1/43 MB/s = 2·GRIDCCM_COPY_COST + Mico's 2·7.0 ns/B + 1/240 MB/s.
GRIDCCM_COPY_COST = 2.55e-9

#: fixed bookkeeping per internal invocation, each side (the Figure-8
#: 1→1 latency is dominated by Mico, so this is small).
GRIDCCM_CALL_OVERHEAD = 0.5e-6


class GridCcmError(RuntimeError):
    """GridCCM layer usage or protocol error."""


def _target_distribution(info: ParallelOpInfo, pos: int, parts: int,
                         total: int) -> Distribution:
    pname = info.original.in_params[pos][0]
    spec = info.spec.arg(pname)
    assert spec is not None
    return make_distribution(spec.distribution, parts, total,
                             spec.block_size)


def _is_nested(seqtype) -> bool:
    """2D argument: sequence<sequence<numeric>>, distributed by rows."""
    from repro.corba.idl.types import SequenceType

    return isinstance(seqtype.element, SequenceType)


def _elem_dtype(seqtype) -> np.dtype:
    elem = seqtype.element
    if _is_nested(seqtype):
        elem = elem.element
    return np.dtype(elem.dtype)


def _as_dist_array(seqtype, value) -> np.ndarray:
    """Normalise a distributed argument to a contiguous 1D or 2D array."""
    arr = np.ascontiguousarray(np.asarray(value, dtype=_elem_dtype(seqtype)))
    want = 2 if _is_nested(seqtype) else 1
    if arr.ndim != want:
        raise GridCcmError(
            f"distributed argument of type {seqtype.typename()} must be "
            f"{want}-dimensional, got shape {arr.shape}")
    return arr


def _row_nbytes(arr: np.ndarray) -> int:
    """Bytes per distributed element (a scalar, or a 2D row)."""
    return arr.itemsize * (arr.shape[1] if arr.ndim == 2 else 1)


def _chunk_nbytes(chunk) -> int:
    """Payload bytes of one wire chunk without materialising it.

    Equals ``np.asarray(chunk).nbytes`` for every chunk shape the wire
    produces (ndarray, list of row views, list of numbers)."""
    nb = getattr(chunk, "nbytes", None)
    if nb is not None:
        return int(nb)
    total = 0
    for row in chunk:
        nb = getattr(row, "nbytes", None)
        if nb is None:
            return int(np.asarray(chunk).nbytes)
        total += int(nb)
    return total


# ---------------------------------------------------------------------------
# server side
# ---------------------------------------------------------------------------

class _Pending:
    """Pieces of one collective invocation arriving at one server node."""

    def __init__(self, kernel, expected: int):
        self.expected = expected
        self.pieces: list[tuple] = []
        self.event = SimEvent(kernel)
        self.result: Any = None
        self.error: BaseException | None = None
        self.returned = 0


class _ServerPortLayer:
    """Per-(node, port) GridCCM layer: chunk collection + dispatch."""

    def __init__(self, container: Container, executor: ComponentImpl,
                 comm: Comm, rank: int, size: int, port: str,
                 infos: list[ParallelOpInfo], internal_idef,
                 key_prefix: str):
        self.container = container
        self.executor = executor
        self.comm = comm
        self.rank = rank
        self.size = size
        self.port = port
        self.infos = {info.name: info for info in infos}
        self._pending: dict[tuple[str, str], _Pending] = {}
        self._plan_cache: dict[tuple, RedistributionPlan] = {}
        kernel = container.process.runtime.kernel
        self._exec_lock = SimLock(kernel)
        self._kernel = kernel

        # build a servant class with one method per parallel operation
        namespace: dict[str, Any] = {"_idef": internal_idef}
        for info in infos:
            namespace[info.name] = _make_server_method(self, info)
        servant_cls = type(f"GridCcm{port.capitalize()}Servant", (object,),
                           namespace)
        self.ref = container.orb.poa.activate_object(
            servant_cls(), key=f"{key_prefix}.gridccm.{port}")

    # -- piece handling -----------------------------------------------------
    def handle(self, info: ParallelOpInfo, proc: SimProcess,
               request: str, src_rank: int, src_parts: int, expected: int,
               wire_args: tuple) -> Any:
        mon = self.container.process.runtime.monitor
        if mon is not None:
            mon.on_span_start("gridccm.gather", cat="gridccm",
                              op=info.name, request=request,
                              src_rank=src_rank, expected=expected)
        try:
            return self._handle_piece(info, proc, request, src_rank,
                                      src_parts, expected, wire_args, mon)
        finally:
            if mon is not None:
                mon.on_span_end("gridccm.gather")

    def _handle_piece(self, info: ParallelOpInfo, proc: SimProcess,
                      request: str, src_rank: int, src_parts: int,
                      expected: int, wire_args: tuple, mon) -> Any:
        plains, chunks = self._split_wire_args(info, wire_args)
        nbytes = sum(_chunk_nbytes(c) for _pos, _total, c in chunks)
        if mon is not None:
            mon.on_counter("gridccm.redistribution_bytes", float(nbytes))
        proc.sleep(GRIDCCM_CALL_OVERHEAD + nbytes * GRIDCCM_COPY_COST)

        key = (info.name, request)
        pend = self._pending.get(key)
        if pend is None:
            pend = _Pending(self._kernel, expected)
            self._pending[key] = pend
        if pend.expected != expected:
            raise GridCcmError(
                f"{info.name}/{request}: inconsistent expected-piece "
                f"counts ({pend.expected} vs {expected})")
        pend.pieces.append((src_rank, src_parts, plains, chunks))

        if len(pend.pieces) == pend.expected:
            try:
                args = self._assemble(info, pend, mon)
                self._exec_lock.acquire(proc)
                try:
                    self.comm.bind(proc)
                    method = getattr(self.executor, info.name, None)
                    if method is None:
                        raise GridCcmError(
                            f"{type(self.executor).__name__} does not "
                            f"implement {info.name!r}")
                    pend.result = method(*args)
                finally:
                    self._exec_lock.release(proc)
            except BaseException as exc:  # noqa: BLE001 → all callers
                pend.error = exc
            pend.event.set()
        else:
            pend.event.wait(proc)

        pend.returned += 1
        if pend.returned == pend.expected:
            self._pending.pop(key, None)
        if pend.error is not None:
            raise pend.error
        return pend.result

    def _split_wire_args(self, info: ParallelOpInfo, wire_args: tuple
                         ) -> tuple[dict[int, Any], list[tuple]]:
        """wire args → ({pos: plain value}, [(pos, total, chunk), ...])"""
        plains: dict[int, Any] = {}
        chunks: list[tuple] = []
        it = iter(wire_args)
        for pos, (pname, _ptype) in enumerate(info.original.in_params):
            if pos in info.dist_positions:
                total = next(it)
                chunk = next(it)
                chunks.append((pos, total, chunk))
            else:
                plains[pos] = next(it)
        return plains, chunks

    def _assemble(self, info: ParallelOpInfo, pend: _Pending,
                  mon=None) -> list[Any]:
        """Rebuild this node's local arguments from the pieces.

        This is the one unavoidable copy of the zero-copy scatter path:
        incoming pieces (views over wire buffers) are placed into the
        node's fresh local block — metered as
        ``wire.copied_bytes.gridccm``."""
        in_params = info.original.in_params
        args: list[Any] = [None] * len(in_params)
        _src, _parts, plains, _chunks = pend.pieces[0]
        for pos, value in plains.items():
            args[pos] = value

        for pos, seqtype in info.dist_positions.items():
            totals = {int(t) for _s, _p, _pl, cl in pend.pieces
                      for (p2, t, _c) in cl if p2 == pos}
            if len(totals) != 1:
                raise GridCcmError(
                    f"{info.name}: inconsistent total lengths {totals}")
            total = totals.pop()
            target = _target_distribution(info, pos, self.size, total)
            dtype = _elem_dtype(seqtype)
            nested = _is_nested(seqtype)

            # decode pieces (and, for 2D, learn the row width)
            decoded: list[tuple[int, int, np.ndarray]] = []
            ncols = 0
            for src_rank, src_parts, _pl, chunk_list in pend.pieces:
                chunk = next(c for (p2, _t, c) in chunk_list if p2 == pos)
                # asarray keeps already-2D collocated pieces as views;
                # remote nested pieces (lists of row views) materialise
                # into one 2D array — a single metered copy per piece
                data = np.asarray(chunk, dtype=dtype) if not nested else \
                    (np.asarray(chunk, dtype=dtype) if len(chunk)
                     else np.zeros((0, 0), dtype=dtype))
                if nested and len(chunk) and not isinstance(chunk,
                                                            np.ndarray):
                    if mon is not None:
                        mon.on_counter("wire.copied_bytes.gridccm",
                                       float(data.nbytes))
                if nested and len(data):
                    if ncols and data.shape[1] != ncols:
                        raise GridCcmError(
                            f"{info.name}: ragged 2D argument "
                            f"({data.shape[1]} vs {ncols} columns)")
                    ncols = data.shape[1]
                decoded.append((src_rank, src_parts, data))

            shape = (target.local_size(self.rank), ncols) if nested \
                else target.local_size(self.rank)
            local = np.zeros(shape, dtype=dtype)
            for src_rank, src_parts, data in decoded:
                if len(data) == 0:
                    continue  # kick piece
                plan = self._plan(src_parts, total, target)
                transfer = next(
                    (t for t in plan.outgoing(src_rank)
                     if t.dst == self.rank), None)
                if transfer is None or transfer.size != len(data):
                    raise GridCcmError(
                        f"{info.name}: piece from rank {src_rank} does "
                        f"not match the redistribution schedule")
                sl = transfer.dst_slice
                if sl is not None:
                    local[sl] = data
                else:
                    local[transfer.dst_local] = data
                if mon is not None:
                    mon.on_counter("wire.copied_bytes.gridccm",
                                   float(data.nbytes))
            args[pos] = local
        return args

    def _plan(self, src_parts: int, total: int,
              target: Distribution) -> RedistributionPlan:
        key = (src_parts, total, target.kind,
               getattr(target, "block_size", None))
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = redistribute_schedule(
                BlockDistribution(src_parts, total), target)
            self._plan_cache[key] = plan
        return plan


def _make_server_method(layer: _ServerPortLayer,
                        info: ParallelOpInfo) -> Callable:
    def method(self, request: str, src_rank: int, src_parts: int,
               expected: int, *wire_args: Any) -> Any:
        proc = layer._kernel.current
        return layer.handle(info, proc, request, src_rank, src_parts,
                            expected, wire_args)

    method.__name__ = info.name
    return method


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------

class _CallEngine:
    """Shared invocation machinery for parallel clients and the proxy."""

    def __init__(self, orb: Orb, plan: ParallelPlan, port: str,
                 node_refs: list[ObjectRef], comm: Comm | None,
                 group_id: str):
        self.orb = orb
        self.plan = plan
        self.port = port
        self.nodes = node_refs
        self.comm = comm
        self.group_id = group_id
        self._seq = 0
        self._plan_cache: dict[tuple, RedistributionPlan] = {}

    @property
    def n_clients(self) -> int:
        return self.comm.size if self.comm is not None else 1

    @property
    def my_rank(self) -> int:
        return self.comm.rank if self.comm is not None else 0

    def call(self, info: ParallelOpInfo, args: tuple) -> Any:
        proc = self.orb._current()
        in_params = info.original.in_params
        if len(args) != len(in_params):
            raise GridCcmError(
                f"{info.name} takes {len(in_params)} arguments, got "
                f"{len(args)}")
        n, me, m = self.n_clients, self.my_rank, len(self.nodes)
        self._seq += 1
        request = f"{self.group_id}#{self._seq}"
        mon = self.orb.process.runtime.monitor
        if mon is not None:
            mon.on_span_start("gridccm.call", cat="gridccm", op=info.name,
                              request=request, rank=me, nodes=m)
        try:
            return self._call_body(info, args, proc, n, me, m, request,
                                   mon)
        finally:
            if mon is not None:
                mon.on_span_end("gridccm.call")

    def _call_body(self, info: ParallelOpInfo, args: tuple, proc,
                   n: int, me: int, m: int, request: str, mon) -> Any:
        in_params = info.original.in_params

        # agree on global lengths (one allgather over the client world)
        local_lens = tuple(len(np.asarray(args[pos]))
                           for pos in sorted(info.dist_positions))
        if self.comm is not None:
            all_lens = self.comm.allgather(local_lens)
        else:
            all_lens = [local_lens]

        dist_data: dict[int, np.ndarray] = {}
        plans: dict[int, RedistributionPlan] = {}
        for i, pos in enumerate(sorted(info.dist_positions)):
            total = sum(lens[i] for lens in all_lens)
            src = BlockDistribution(n, total)
            if src.local_size(me) != local_lens[i]:
                raise GridCcmError(
                    f"{info.name}: rank {me} passed {local_lens[i]} "
                    f"elements but the canonical block distribution of "
                    f"{total} over {n} expects {src.local_size(me)}")
            seqtype = info.dist_positions[pos]
            dist_data[pos] = _as_dist_array(seqtype, args[pos])
            pname = info.original.in_params[pos][0]
            spec = info.spec.arg(pname)
            cache_key = (n, m, total, spec.distribution, spec.block_size)
            plan = self._plan_cache.get(cache_key)
            if plan is None:
                plan = redistribute_schedule(
                    src, _target_distribution(info, pos, m, total))
                self._plan_cache[cache_key] = plan
            plans[pos] = plan

        # expected pieces per server node (union across arguments)
        senders: dict[int, set[int]] = {r: set() for r in range(m)}
        for plan in plans.values():
            for t in plan.transfers:
                senders[t.dst].add(t.src)
        kick_targets = [r for r in range(m) if not senders[r]]
        expected = {r: max(len(s), 1) for r, s in senders.items()}

        my_targets = sorted({t.dst for plan in plans.values()
                             for t in plan.outgoing(me)})
        if me == 0:
            my_targets = sorted(set(my_targets) | set(kick_targets))

        # layer cost: gather processing of every outgoing piece; pure
        # arithmetic (size × row bytes) — identical to the nbytes of a
        # materialised gather, without performing one
        out_bytes = sum(
            t.size * _row_nbytes(dist_data[pos])
            for pos, plan in plans.items() for t in plan.outgoing(me))
        proc.sleep(GRIDCCM_CALL_OVERHEAD + out_bytes * GRIDCCM_COPY_COST)

        if mon is not None:
            mon.on_counter("gridccm.redistribution_bytes", float(out_bytes))
            mon.on_span_start("gridccm.scatter", cat="gridccm",
                              op=info.name, targets=len(my_targets),
                              nbytes=float(out_bytes))
        results: dict[int, Any] = {}
        errors: list[BaseException] = []
        try:
            workers = []
            for r in my_targets:
                wire = self._wire_args(info, plans, dist_data, args, me, n,
                                       expected[r], request, r, mon)
                workers.append(
                    self._spawn_call(info, r, wire, results, errors))
            for w in workers:
                proc.join(w)
        finally:
            if mon is not None:
                mon.on_span_end("gridccm.scatter")
        if errors:
            raise errors[0]
        # several clients may have contacted the same server node and
        # all hold its (identical) result; for global reductions each
        # server result must count exactly once — the lowest-ranked
        # contacting client "owns" it (kick targets belong to rank 0)
        owned = {r: v for r, v in results.items()
                 if me == min(senders[r], default=0)}
        return self._combine(info, results, owned, senders)

    # -- helpers ------------------------------------------------------------
    def _wire_args(self, info: ParallelOpInfo,
                   plans: dict[int, RedistributionPlan],
                   dist_data: dict[int, np.ndarray], args: tuple,
                   me: int, n: int, expected: int, request: str,
                   target: int, mon=None) -> tuple:
        """Build one server node's piece message.

        Unit-stride transfers (every block→block plan) gather the piece
        as a *view* of the caller's array — zero client-side copies;
        only genuinely scattered index sets fall back to a fancy-index
        copy.  A nested (2D) piece stays one contiguous 2D array: the
        CDR layer encodes its rows as contiguous views, so the old
        copy-per-row is gone."""
        wire: list[Any] = [request, me, n, expected]
        for pos, (pname, _t) in enumerate(info.original.in_params):
            if pos in info.dist_positions:
                plan = plans[pos]
                transfer = next((t for t in plan.outgoing(me)
                                 if t.dst == target), None)
                data = dist_data[pos]
                if transfer is None:
                    piece = data[:0]
                else:
                    sl = transfer.src_slice
                    piece = data[sl] if sl is not None \
                        else data[transfer.src_local]
                    if not piece.flags["C_CONTIGUOUS"]:
                        piece = np.ascontiguousarray(piece)
                    if mon is not None:
                        kind = ("referenced" if piece.base is not None
                                else "copied")
                        mon.on_counter(f"wire.{kind}_bytes.gridccm",
                                       float(piece.nbytes))
                wire.append(plan.source.length)
                wire.append(piece)
            else:
                wire.append(args[pos])
        return tuple(wire)

    def _spawn_call(self, info: ParallelOpInfo, target: int, wire: tuple,
                    results: dict[int, Any],
                    errors: list[BaseException]) -> SimProcess:
        stub = self.nodes[target]
        opname = info.name

        def worker(p: SimProcess) -> None:
            try:
                results[target] = getattr(stub, opname)(*wire)
            except BaseException as exc:  # noqa: BLE001 → collected
                errors.append(exc)

        return self.orb.process.spawn(worker, name=f"gridccm-{opname}",
                                      daemon=True)

    def _combine(self, info: ParallelOpInfo, results: dict[int, Any],
                 owned: dict[int, Any],
                 senders: dict[int, set[int]]) -> Any:
        policy = info.spec.result_policy
        if policy == "none":
            return None
        if policy == "first":
            if self.comm is None:
                return results[min(results)] if results else None
            # the client rank owning server 0's result shares it
            root = min(senders.get(0, ()), default=0)
            return self.comm.bcast(owned.get(0), root=root)
        if policy == "sum":
            partial = sum(owned.values()) if owned else 0
            if self.comm is not None:
                return self.comm.allreduce(partial, SUM)
            return partial
        # concat: every rank needs every server chunk in rank order
        if self.comm is not None:
            gathered = self.comm.allgather(
                {r: np.asarray(v) for r, v in owned.items()})
            merged: dict[int, np.ndarray] = {}
            for d in gathered:
                for r, v in d.items():
                    merged.setdefault(r, v)
        else:
            merged = {r: np.asarray(v) for r, v in results.items()}
        if not merged:
            return np.zeros(0)
        return np.concatenate([merged[r] for r in sorted(merged)])


class ParallelClient:
    """Client-side GridCCM layer for one port of a parallel component.

    Parallel clients pass ``comm`` (their rank's communicator) and call
    operations SPMD-style with local chunks; ``comm=None`` gives a
    sequential client that passes whole arrays."""

    def __init__(self, engine: _CallEngine, proxy: ObjectRef):
        self._engine = engine
        self._proxy = proxy

    @classmethod
    def attach(cls, orb: Orb, plan: ParallelPlan, port: str,
               proxy_url: str, comm: Comm | None = None,
               group_id: str | None = None) -> "ParallelClient":
        """Connect to a parallel component's port (call in a sim thread).

        Every rank of a parallel client group must use the same
        ``group_id`` (and distinct groups distinct ids)."""
        proxy_iface = plan.proxy_interfaces[port]
        proxy = orb.narrow(orb.string_to_object(proxy_url),
                           proxy_iface.scoped_name)
        size = proxy.gridccm_size()
        nodes = [proxy.gridccm_node(i) for i in range(size)]
        gid = group_id or f"{port}-client"
        if comm is not None:
            gid = f"{gid}/{comm.size}"
        engine = _CallEngine(orb, plan, port, nodes, comm, gid)
        return cls(engine, proxy)

    @property
    def n_nodes(self) -> int:
        return len(self._engine.nodes)

    def __getattr__(self, name: str) -> Any:
        info = self._engine.plan.ops.get((self._engine.port, name))
        if info is not None:
            return lambda *args: self._engine.call(info, args)
        # non-parallel operations go through the proxy (standard CORBA)
        return getattr(self._proxy, name)


# ---------------------------------------------------------------------------
# the parallel component itself
# ---------------------------------------------------------------------------

@dataclass
class _NodeRuntime:
    process: "PadicoProcess"
    container: Container
    executor: ComponentImpl
    layers: dict[str, _ServerPortLayer]
    instance_key: str


class ParallelComponent:
    """A deployed GridCCM parallel component (one instance per node)."""

    def __init__(self, name: str, plan: ParallelPlan, world: World,
                 nodes: list[_NodeRuntime],
                 proxy_refs: dict[str, ObjectRef]):
        self.name = name
        self.plan = plan
        self.world = world
        self.nodes = nodes
        self.proxy_refs = proxy_refs

    @classmethod
    def create(cls, runtime: "PadicoRuntime", name: str,
               processes: list["PadicoProcess"], idl_source: str,
               parallelism_xml: str,
               executor_factory: Callable[[], ComponentImpl],
               profile: OrbProfile = OMNIORB4,
               fabric: str | None = None) -> "ParallelComponent":
        """Deploy the SPMD executor over ``processes``.

        Creates per node: a container (ORB with the given ``profile``),
        the CCM component instance, and the GridCCM server layer; plus
        the MPI world binding the nodes together and the proxy on node 0.
        """
        descriptor = ParallelismDescriptor.parse(parallelism_xml)
        world = create_world(runtime, f"gridccm:{name}", processes,
                             fabric=fabric)
        nodes: list[_NodeRuntime] = []
        plan0: ParallelPlan | None = None
        for rank, process in enumerate(processes):
            idl = compile_idl(idl_source)
            plan = GridCcmCompiler(idl, descriptor).compile()
            container = Container(process, idl, profile=profile,
                                  port=f"gridccm-{name}")
            home = container.install_home(descriptor.component,
                                          executor_factory,
                                          name=f"{name}-home")
            instance = home.create()
            executor = instance.executor
            executor.mpi = world.comm(rank)
            executor.grid_rank = rank
            executor.grid_size = len(processes)
            layers = {}
            for port in descriptor.ports():
                layers[port] = _ServerPortLayer(
                    container, executor, world.comm(rank), rank,
                    len(processes), port, plan.ops_for_port(port),
                    plan.internal_interfaces[port], instance.key)
            nodes.append(_NodeRuntime(process, container, executor,
                                      layers, instance.key))
            if rank == 0:
                plan0 = plan
        assert plan0 is not None

        proxy_refs = cls._build_proxies(name, plan0, nodes)
        return cls(name, plan0, world, nodes, proxy_refs)

    @classmethod
    def _build_proxies(cls, name: str, plan: ParallelPlan,
                       nodes: list[_NodeRuntime]) -> dict[str, ObjectRef]:
        """Node-0 proxies hiding the nodes from the outside (§4.2.1)."""
        head = nodes[0]
        orb0 = head.container.orb
        proxy_refs: dict[str, ObjectRef] = {}
        for port, proxy_idef in plan.proxy_interfaces.items():
            node_refs = [
                orb0.create_reference(IOR(
                    plan.internal_interfaces[port].repo_id,
                    node.process.name, node.container.orb.port,
                    f"{node.instance_key}.gridccm.{port}"))
                for node in nodes]
            engine = _CallEngine(orb0, plan, port, node_refs, None,
                                 f"proxy-{name}-{port}")
            servant = _make_proxy_servant(proxy_idef, plan, port, engine,
                                          head.executor, node_refs)
            # the proxy advertises the ORIGINAL interface: sequential
            # clients see a perfectly standard component reference
            original = plan.component.provides[port]
            original_repo = f"IDL:{original.replace('::', '/')}:1.0"
            proxy_refs[port] = orb0.poa.activate_object(
                servant, key=f"{name}.proxy.{port}",
                type_id=original_repo)
        return proxy_refs

    # -- lifecycle -----------------------------------------------------------
    def activate(self) -> None:
        """Run ``ccm_activate`` on every node's component instance."""
        for node in self.nodes:
            node.container.instance(node.instance_key).activate()

    def configure(self, name: str, value: Any) -> None:
        """Set an IDL attribute on every node executor (SPMD config)."""
        for node in self.nodes:
            if name not in node.container.idl.component(
                    self.plan.component.scoped_name).attributes:
                raise GridCcmError(
                    f"{self.plan.component.scoped_name} has no attribute "
                    f"{name!r}")
            setattr(node.executor, name, value)

    def remove(self) -> None:
        """Tear down every node instance."""
        for node in self.nodes:
            node.container.instance(node.instance_key).remove()

    # -- accessors -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.nodes)

    def proxy_url(self, port: str) -> str:
        ref = self.proxy_refs.get(port)
        if ref is None:
            raise GridCcmError(f"no parallel port {port!r} "
                               f"(ports: {sorted(self.proxy_refs)})")
        return self.nodes[0].container.orb.object_to_string(ref)

    def executors(self) -> list[ComponentImpl]:
        return [n.executor for n in self.nodes]


def _make_proxy_servant(proxy_idef, plan: ParallelPlan, port: str,
                        engine: _CallEngine, head_executor: ComponentImpl,
                        node_refs: list[ObjectRef]):
    """Servant for the proxy interface: sequential gateway + navigation."""
    namespace: dict[str, Any] = {"_idef": proxy_idef}

    namespace["gridccm_size"] = lambda self: len(node_refs)
    namespace["gridccm_node"] = lambda self, rank: node_refs[int(rank)]

    for info in plan.ops_for_port(port):
        def make(info=info):
            def op(self, *args: Any) -> Any:
                return engine.call(info, args)
            op.__name__ = info.name
            return op
        namespace[info.name] = make()

    def passthrough(self, attr_name: str) -> Any:
        return getattr(head_executor, attr_name)

    namespace["__getattr__"] = passthrough
    return type(f"{proxy_idef.name}Servant", (object,), namespace)()
