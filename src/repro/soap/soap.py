"""Minimal SOAP 1.1-style RPC: XML envelopes over VLink.

Value mapping: int/float/bool/str/None, lists, dicts with string keys,
and 1D numeric numpy arrays (encoded as whitespace-separated text —
deliberately faithful to how early SOAP toolkits shipped arrays, and the
reason Web Services lose the Figure-7 race so badly)."""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.padicotm.abstraction.vlink import VLink
from repro.padicotm.modules import PadicoModule
from repro.sim.kernel import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

#: CPU cost of text (de)serialisation, per payload byte and side.
#: Roughly 10× CDR copying cost: printf/strtod per value.
SOAP_TEXT_COST = 7.0e-8

#: per-message envelope processing overhead, per side
SOAP_CALL_OVERHEAD = 80e-6


class SoapError(RuntimeError):
    """Malformed SOAP message or transport failure."""


class SoapFault(RuntimeError):
    """A SOAP Fault returned by the server."""

    def __init__(self, faultcode: str, faultstring: str):
        super().__init__(f"{faultcode}: {faultstring}")
        self.faultcode = faultcode
        self.faultstring = faultstring


# ---------------------------------------------------------------------------
# envelope codec
# ---------------------------------------------------------------------------

def _encode_value(parent: ET.Element, name: str, value: Any) -> None:
    el = ET.SubElement(parent, name)
    if value is None:
        el.set("nil", "true")
    elif isinstance(value, bool):
        el.set("type", "xsd:boolean")
        el.text = "true" if value else "false"
    elif isinstance(value, (int, np.integer)):
        el.set("type", "xsd:int")
        el.text = str(int(value))
    elif isinstance(value, (float, np.floating)):
        el.set("type", "xsd:double")
        el.text = repr(float(value))
    elif isinstance(value, str):
        el.set("type", "xsd:string")
        el.text = value
    elif isinstance(value, np.ndarray):
        el.set("type", "enc:Array")
        el.set("arrayType", str(value.dtype))
        el.text = " ".join(repr(float(x)) for x in value.ravel())
    elif isinstance(value, (list, tuple)):
        el.set("type", "enc:List")
        for item in value:
            _encode_value(el, "item", item)
    elif isinstance(value, dict):
        el.set("type", "enc:Struct")
        for key, item in value.items():
            if not isinstance(key, str):
                raise SoapError(f"struct keys must be strings, got {key!r}")
            _encode_value(el, key, item)
    else:
        raise SoapError(f"cannot encode {type(value).__name__} as SOAP")


def _decode_value(el: ET.Element) -> Any:
    if el.get("nil") == "true":
        return None
    kind = el.get("type", "xsd:string")
    text = el.text or ""
    if kind == "xsd:boolean":
        return text == "true"
    if kind == "xsd:int":
        return int(text)
    if kind == "xsd:double":
        return float(text)
    if kind == "xsd:string":
        return text
    if kind == "enc:Array":
        dtype = el.get("arrayType", "f8")
        if not text.strip():
            return np.zeros(0, dtype=dtype)
        return np.array([float(x) for x in text.split()], dtype=dtype)
    if kind == "enc:List":
        return [_decode_value(child) for child in el]
    if kind == "enc:Struct":
        return {child.tag: _decode_value(child) for child in el}
    raise SoapError(f"unknown xsi:type {kind!r}")


def encode_envelope(operation: str, payload: dict[str, Any],
                    fault: tuple[str, str] | None = None) -> bytes:
    """Build a SOAP envelope; ``fault`` makes it a Fault response."""
    env = ET.Element("Envelope")
    body = ET.SubElement(env, "Body")
    if fault is not None:
        f = ET.SubElement(body, "Fault")
        ET.SubElement(f, "faultcode").text = fault[0]
        ET.SubElement(f, "faultstring").text = fault[1]
    else:
        op = ET.SubElement(body, operation)
        for name, value in payload.items():
            _encode_value(op, name, value)
    return ET.tostring(env)


def decode_envelope(data: bytes) -> tuple[str, dict[str, Any]]:
    """Parse an envelope → ``(operation, payload)``; raises SoapFault."""
    try:
        env = ET.fromstring(data)
    except ET.ParseError as exc:
        raise SoapError(f"malformed envelope: {exc}") from exc
    body = env.find("Body")
    if body is None or len(body) != 1:
        raise SoapError("envelope must contain exactly one body element")
    op = body[0]
    if op.tag == "Fault":
        raise SoapFault(op.findtext("faultcode", "soap:Server"),
                        op.findtext("faultstring", ""))
    return op.tag, {child.tag: _decode_value(child) for child in op}


# ---------------------------------------------------------------------------
# RPC endpoints
# ---------------------------------------------------------------------------

class SoapModule(PadicoModule):
    """gSOAP as a loadable PadicoTM module."""

    name = "soap/gsoap-2.x"
    thread_policy = "pthread"


class SoapServer:
    """Serves registered handlers at a VLink port."""

    def __init__(self, process: "PadicoProcess", port: str = "http"):
        if not process.modules.is_loaded(SoapModule.name):
            process.modules.load(SoapModule())
        self.process = process
        self.port = port
        self._handlers: dict[str, Callable] = {}
        self._listener = VLink.listen(process, port)
        process.spawn(self._acceptor, name="soap-acceptor", daemon=True)

    def register(self, operation: str, handler: Callable) -> None:
        """``handler(**payload) -> result-payload dict``."""
        if operation in self._handlers:
            raise SoapError(f"operation {operation!r} already registered")
        self._handlers[operation] = handler

    @property
    def url(self) -> str:
        return f"soap://{self.process.name}/{self.port}"

    # -- internals ------------------------------------------------------------
    def _acceptor(self, proc: SimProcess) -> None:
        while True:
            endpoint = self._listener.accept(proc)
            self.process.spawn(self._serve, endpoint, name="soap-conn",
                               daemon=True)

    def _serve(self, proc: SimProcess, endpoint) -> None:
        while True:
            item = endpoint.recv(proc)
            if item is None:
                endpoint.close()
                return
            data, nbytes = item
            proc.sleep(SOAP_CALL_OVERHEAD + nbytes * SOAP_TEXT_COST)
            reply = self._dispatch(data)
            proc.sleep(len(reply) * SOAP_TEXT_COST)
            endpoint.send(proc, reply, float(len(reply)))

    def _dispatch(self, data: bytes) -> bytes:
        try:
            operation, payload = decode_envelope(data)
            handler = self._handlers.get(operation)
            if handler is None:
                return encode_envelope(
                    operation, {}, fault=("soap:Client",
                                          f"unknown operation {operation}"))
            result = handler(**payload)
            return encode_envelope(f"{operation}Response", result or {})
        except SoapFault as f:
            return encode_envelope("Fault", {},
                                   fault=(f.faultcode, f.faultstring))
        except Exception as exc:  # noqa: BLE001 → server fault
            return encode_envelope(
                "Fault", {}, fault=("soap:Server",
                                    f"{type(exc).__name__}: {exc}"))


class SoapClient:
    """Connects to a :class:`SoapServer` and issues calls."""

    def __init__(self, process: "PadicoProcess", url: str):
        if not process.modules.is_loaded(SoapModule.name):
            process.modules.load(SoapModule())
        if not url.startswith("soap://"):
            raise SoapError(f"bad SOAP url {url!r}")
        target, _, port = url[len("soap://"):].partition("/")
        self.process = process
        self.target = target
        self.port = port or "http"
        self._endpoint = None

    def call(self, proc: SimProcess, operation: str,
             **payload: Any) -> dict[str, Any]:
        """Invoke ``operation``; returns the response payload dict."""
        if self._endpoint is None or self._endpoint.closed:
            self._endpoint = VLink.connect(proc, self.process, self.target,
                                           self.port)
        request = encode_envelope(operation, payload)
        proc.sleep(SOAP_CALL_OVERHEAD + len(request) * SOAP_TEXT_COST)
        self._endpoint.send(proc, request, float(len(request)))
        item = self._endpoint.recv(proc)
        if item is None:
            raise SoapError("connection closed mid-call")
        data, nbytes = item
        proc.sleep(nbytes * SOAP_TEXT_COST)
        op, result = decode_envelope(data)
        if op != f"{operation}Response":
            raise SoapError(f"unexpected response {op!r}")
        return result

    def close(self) -> None:
        if self._endpoint is not None:
            self._endpoint.close()
