"""gSOAP-style SOAP messaging over PadicoTM (paper §4.3.4 / §5).

The paper ports gSOAP onto PadicoTM unchanged and notes that Web
Services "do not appear well suited to build grid-aware high-performance
applications ... their performance is poor".  This package provides a
real XML envelope codec and an HTTP-like RPC layer over VLink so that
claim can be *measured* (see the marshalling ablation bench): text
encoding inflates payloads several-fold and costs far more CPU per byte
than CDR."""

from repro.soap.soap import (
    SoapClient,
    SoapError,
    SoapFault,
    SoapModule,
    SoapServer,
    decode_envelope,
    encode_envelope,
)

__all__ = [
    "SoapServer",
    "SoapClient",
    "SoapModule",
    "SoapFault",
    "SoapError",
    "encode_envelope",
    "decode_envelope",
]
