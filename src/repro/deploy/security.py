"""Per-link communication security (paper §2 and §6).

§2: "A grid can be made of secure and insecure networks.  The data ...
need to be secured on insecure networks."  §6 flags the open issue that
blanket CORBA security is too coarse: "if two components are placed
inside the same parallel machine, we can assume that communications are
secure and thus can be optimized by disabling the encryption."

:class:`GridSecurityPolicy` implements exactly that trade-off as a
VLink security hook with three modes:

- ``"wan-only"`` (the paper's proposal): encrypt only on wires whose
  technology is untrusted (WAN, shared LAN); SAN traffic is cleartext;
- ``"always"`` (the coarse CORBA-security baseline);
- ``"never"`` (the insecure baseline).

The cipher cost models 3DES-class software encryption on a 1 GHz
Pentium III: ~20 MB/s, i.e. painful on a 240 MB/s Myrinet and nearly
free on a 4 MB/s WAN — which is the whole argument."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

#: software 3DES throughput on the paper's hardware: ~20 MB/s
CIPHER_COST_PER_BYTE = 5.0e-8

#: per-message cipher setup (IV, key schedule reuse)
CIPHER_SETUP = 2.0e-6

MODES = ("wan-only", "always", "never")


class GridSecurityPolicy:
    """VLink security hook: decide and charge encryption per wire."""

    def __init__(self, mode: str = "wan-only",
                 cipher_cost_per_byte: float = CIPHER_COST_PER_BYTE,
                 cipher_setup: float = CIPHER_SETUP):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.cipher_cost_per_byte = cipher_cost_per_byte
        self.cipher_setup = cipher_setup

    def should_encrypt(self, fabric_name: str | None,
                       secure_wire: bool) -> bool:
        if self.mode == "never":
            return False
        if self.mode == "always":
            return True
        return not secure_wire  # wan-only: trust the SAN/loopback

    def transform_cost(self, nbytes: float, fabric_name: str | None,
                       secure_wire: bool) -> float:
        if not self.should_encrypt(fabric_name, secure_wire):
            return 0.0
        return self.cipher_setup + nbytes * self.cipher_cost_per_byte

    def __repr__(self) -> str:
        return f"<GridSecurityPolicy {self.mode}>"


def secure_process(process: "PadicoProcess",
                   policy: GridSecurityPolicy) -> None:
    """Install ``policy`` as the default for every VLink endpoint this
    process creates or accepts from now on."""
    process.security_policy = policy
