"""Grid deployment services: discovery, planning, security (paper §2).

The paper's usage scenarios demand machine discovery ("a mechanism to
find, to deploy and to execute their codes on machines they get access
to"), localization constraints ("the chemistry code must be on the
machines of the company") and per-network communication security ("the
data computed by the simulation need to be secured on insecure
networks").  This package supplies each as a small, testable service:

- :class:`MachineRegistry` — advertises machines and answers discovery
  queries over labels, sites, fabrics, CPUs and memory;
- :class:`DeploymentPlanner` — maps assembly instances to discovered
  machines, honouring constraints and preferring placements whose
  connected components share the fastest networks;
- :class:`GridSecurityPolicy` — the VLink security hook: encrypt on
  untrusted wires, skip the cipher inside a trusted SAN (the §6
  optimisation), or force either behaviour for ablations.
"""

from repro.deploy.auth import (
    AccessPolicy,
    AuthenticationError,
    GridCredential,
    grant_credentials,
)
from repro.deploy.registry import MachineInfo, MachineRegistry, DiscoveryError
from repro.deploy.planner import DeploymentPlanner, PlanningError
from repro.deploy.security import (
    CIPHER_COST_PER_BYTE,
    GridSecurityPolicy,
    secure_process,
)

__all__ = [
    "GridCredential",
    "AccessPolicy",
    "AuthenticationError",
    "grant_credentials",
    "MachineRegistry",
    "MachineInfo",
    "DiscoveryError",
    "DeploymentPlanner",
    "PlanningError",
    "GridSecurityPolicy",
    "secure_process",
    "CIPHER_COST_PER_BYTE",
]
