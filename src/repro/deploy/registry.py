"""Machine registry and discovery.

Machines willing to host components advertise themselves (typically at
component-server startup); deployers query by capability.  The paper's
"machine discovery" scenario: "The features of the machines (network
technologies, processors, etc.) are not known statically."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.net.topology import Topology


class DiscoveryError(LookupError):
    """No machine satisfies a discovery query."""


@dataclass
class MachineInfo:
    """One advertised machine."""

    host: str
    process: str              # PadicoTM process name of its component server
    site: str = "default"
    labels: frozenset[str] = frozenset()
    cpus: int = 2
    memory: float = 512e6     # bytes (the paper's nodes have 512 MB)
    fabrics: frozenset[str] = frozenset()
    #: running component instances (load metric for the planner)
    load: int = 0

    def satisfies(self, labels: Iterable[str] = (), site: str | None = None,
                  fabric: str | None = None, min_cpus: int = 0,
                  min_memory: float = 0.0) -> bool:
        return (set(labels) <= self.labels
                and (site is None or self.site == site)
                and (fabric is None or fabric in self.fabrics)
                and self.cpus >= min_cpus
                and self.memory >= min_memory)


class MachineRegistry:
    """Registry + discovery over advertised machines."""

    def __init__(self, topology: Topology | None = None):
        self.topology = topology
        self._machines: dict[str, MachineInfo] = {}

    # -- advertisement --------------------------------------------------------
    def advertise(self, host: str, process: str,
                  labels: Iterable[str] = (), memory: float = 512e6,
                  ) -> MachineInfo:
        """Register a machine; topology-derived facts are filled in."""
        if process in self._machines:
            raise ValueError(f"process {process!r} already advertised")
        site, cpus, fabrics = "default", 2, frozenset()
        extra_labels: frozenset[str] = frozenset()
        if self.topology is not None:
            if host not in self.topology.hosts:
                raise ValueError(f"unknown host {host!r}")
            h = self.topology.hosts[host]
            site, cpus = h.site, h.cpus
            fabrics = frozenset(h.fabrics)
            extra_labels = h.labels
        info = MachineInfo(host, process, site,
                           frozenset(labels) | extra_labels, cpus,
                           memory, fabrics)
        self._machines[process] = info
        return info

    def withdraw(self, process: str) -> None:
        self._machines.pop(process, None)

    def machine(self, process: str) -> MachineInfo:
        try:
            return self._machines[process]
        except KeyError:
            raise DiscoveryError(f"no machine advertised as {process!r}") \
                from None

    def machines(self) -> list[MachineInfo]:
        return sorted(self._machines.values(), key=lambda m: m.process)

    # -- discovery --------------------------------------------------------------
    def discover(self, labels: Iterable[str] = (), site: str | None = None,
                 fabric: str | None = None, min_cpus: int = 0,
                 min_memory: float = 0.0,
                 require: bool = True) -> list[MachineInfo]:
        """Machines matching every criterion, least-loaded first."""
        found = [m for m in self.machines()
                 if m.satisfies(labels, site, fabric, min_cpus, min_memory)]
        found.sort(key=lambda m: (m.load, m.process))
        if require and not found:
            raise DiscoveryError(
                f"no machine matches labels={sorted(labels)} site={site!r} "
                f"fabric={fabric!r} min_cpus={min_cpus}")
        return found
