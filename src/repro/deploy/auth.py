"""Grid-wide authentication for deployment (paper §6 future work).

"In particular, we investigate the relationship between CCM and Globus:
component servers could be deployed within a grid-wide authentication
mechanism."  We model the essentials of that mechanism (GSI-style, sans
actual cryptography, which the simulation does not need):

- a :class:`GridCredential` is an identity issued by a certificate
  authority; :func:`grant_credentials` attaches it to an ORB, which
  stamps it into the Principal field of every outgoing request;
- an :class:`AccessPolicy` is the ACL a component server enforces:
  ``install_home`` from an unauthenticated or unauthorised deployer is
  refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.corba.orb import Orb


class AuthenticationError(PermissionError):
    """Caller identity missing or not permitted."""


@dataclass(frozen=True)
class GridCredential:
    """An identity issued by a grid certificate authority."""

    subject: str                 # e.g. "alice@site-a"
    issuer: str = "grid-ca"

    @property
    def token(self) -> str:
        """Wire form carried in the GIOP Principal field."""
        return f"{self.issuer}:{self.subject}"

    @classmethod
    def parse(cls, token: str) -> "GridCredential":
        issuer, _, subject = token.partition(":")
        if not issuer or not subject:
            raise AuthenticationError(f"malformed credential {token!r}")
        return cls(subject, issuer)


def grant_credentials(orb: "Orb", credential: GridCredential) -> None:
    """Attach ``credential`` to every request this ORB sends."""
    orb.credentials = credential.token


class AccessPolicy:
    """ACL enforced by services (component servers, registries)."""

    def __init__(self, subjects: Iterable[str] = (),
                 issuers: Iterable[str] = ("grid-ca",)):
        self.subjects = frozenset(subjects)
        self.issuers = frozenset(issuers)

    def check(self, principal: str) -> GridCredential:
        """Validate a wire principal; raises :class:`AuthenticationError`."""
        if not principal:
            raise AuthenticationError("anonymous caller refused")
        cred = GridCredential.parse(principal)
        if cred.issuer not in self.issuers:
            raise AuthenticationError(
                f"issuer {cred.issuer!r} is not trusted")
        if self.subjects and cred.subject not in self.subjects:
            raise AuthenticationError(
                f"subject {cred.subject!r} is not authorised")
        return cred

    def permits(self, principal: str) -> bool:
        try:
            self.check(principal)
        except AuthenticationError:
            return False
        return True
