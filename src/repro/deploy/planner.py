"""Deployment planning: instances → machines.

Implements the paper's §2 deployment scenarios as one greedy planner:

- **localization constraints**: an instance with ``<constraint
  label="company-x"/>`` only lands on machines advertising that label;
- **communication flexibility**: among feasible machines, prefer the one
  maximising the bandwidth of the best fabric shared with the already
  placed instances this one connects to — so two coupled codes land on
  one SAN when a big enough cluster exists, and fall back to the WAN
  split otherwise, with no change to the assembly;
- **load spreading**: ties break towards the least-loaded machine.
"""

from __future__ import annotations

from repro.ccm.descriptors import AssemblyDescriptor
from repro.deploy.registry import MachineInfo, MachineRegistry
from repro.net.topology import Topology


class PlanningError(RuntimeError):
    """No feasible placement exists."""


class DeploymentPlanner:
    """Greedy constraint-aware placement of assembly instances."""

    def __init__(self, registry: MachineRegistry,
                 topology: Topology | None = None):
        self.registry = registry
        self.topology = topology or registry.topology

    def plan(self, assembly: AssemblyDescriptor,
             instances_per_machine: int | None = None
             ) -> dict[str, str]:
        """Compute ``instance id → component-server process name``.

        Honours explicit ``destination`` fields, label constraints, and
        optionally caps how many instances may share one machine.
        """
        placement: dict[str, str] = {}
        loads: dict[str, int] = {m.process: m.load
                                 for m in self.registry.machines()}
        neighbours = self._neighbour_map(assembly)

        for inst in assembly.instances:
            if inst.destination is not None:
                machine = self.registry.machine(inst.destination)
                self._check_constraints(inst.id, machine, inst.constraints)
                placement[inst.id] = machine.process
                loads[machine.process] = loads.get(machine.process, 0) + 1
                continue
            candidates = self.registry.discover(labels=inst.constraints,
                                                require=False)
            if instances_per_machine is not None:
                candidates = [m for m in candidates
                              if loads.get(m.process, 0) <
                              instances_per_machine]
            if not candidates:
                raise PlanningError(
                    f"no machine satisfies instance {inst.id!r} "
                    f"(constraints={list(inst.constraints)})")
            best = max(candidates, key=lambda m: (
                self._affinity(m, inst.id, placement, neighbours),
                -loads.get(m.process, 0),
                # deterministic final tie-break
                [-ord(c) for c in m.process]))
            placement[inst.id] = best.process
            loads[best.process] = loads.get(best.process, 0) + 1
        return placement

    # ------------------------------------------------------------------
    def _neighbour_map(self, assembly: AssemblyDescriptor
                       ) -> dict[str, set[str]]:
        out: dict[str, set[str]] = {i.id: set() for i in assembly.instances}
        for conn in assembly.connections:
            out[conn.user_instance].add(conn.provider_instance)
            out[conn.provider_instance].add(conn.user_instance)
        return out

    def _affinity(self, machine: MachineInfo, inst_id: str,
                  placement: dict[str, str],
                  neighbours: dict[str, set[str]]) -> float:
        """Bandwidth of the best fabric shared with placed neighbours."""
        if self.topology is None:
            return 0.0
        score = 0.0
        for other_id in neighbours.get(inst_id, ()):
            other_proc = placement.get(other_id)
            if other_proc is None:
                continue
            other = self.registry.machine(other_proc)
            score += self._best_bandwidth(machine.host, other.host)
        return score

    def _best_bandwidth(self, host_a: str, host_b: str) -> float:
        if host_a == host_b:
            return 1e9  # same machine: shared memory beats any NIC
        for fabric in self.topology.fabrics_connecting(host_a, host_b):
            return fabric.technology.bandwidth  # sorted best-first
        return 0.0

    @staticmethod
    def _check_constraints(inst_id: str, machine: MachineInfo,
                           constraints: tuple[str, ...]) -> None:
        missing = set(constraints) - machine.labels
        if missing:
            raise PlanningError(
                f"instance {inst_id!r} pinned to {machine.process!r} "
                f"which lacks required labels {sorted(missing)}")
