"""Command-line tools.

- ``python -m repro.tools.idlc file.idl`` — compile IDL, print a model
  summary (the classic ``idlc``-style front end);
- ``python -m repro.tools.gridccm_gen file.idl parallel.xml`` — run the
  GridCCM compiler and emit the generated internal IDL (the "New
  Component IDL description" box of the paper's Figure 5).
"""
