"""``idlc``: compile an IDL file and print the resulting model.

Usage::

    python -m repro.tools.idlc [--repo-ids] file.idl [more.idl ...]

Multiple files are compiled into one model (cross-file references work
as long as definitions precede uses across the file list)."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.corba.idl import IdlError, compile_idl
from repro.corba.idl.compiler import CompiledIdl


def format_model(idl: CompiledIdl, repo_ids: bool = False) -> str:
    """Human-readable summary of a compiled IDL model."""
    lines: list[str] = []

    def tag(scoped: str, rid: str) -> str:
        return f"{scoped}  [{rid}]" if repo_ids else scoped

    if idl.interfaces:
        lines.append("interfaces:")
        for name, idef in sorted(idl.interfaces.items()):
            lines.append(f"  {tag(name, idef.repo_id)}")
            for op in idef.operations.values():
                params = ", ".join(f"{d} {t.typename()} {n}"
                                   for n, d, t in op.params)
                suffix = " oneway" if op.oneway else ""
                raises = (" raises(" + ", ".join(
                    e.scoped_name for e in op.raises) + ")"
                    if op.raises else "")
                lines.append(f"    {op.return_type.typename()} "
                             f"{op.name}({params}){raises}{suffix}")
            for attr in idef.attributes.values():
                ro = "readonly " if attr.readonly else ""
                lines.append(f"    {ro}attribute "
                             f"{attr.type.typename()} {attr.name}")
    if idl.components:
        lines.append("components:")
        for name, cdef in sorted(idl.components.items()):
            lines.append(f"  {tag(name, cdef.repo_id)}")
            for pname, (kind, tname) in sorted(cdef.all_ports().items()):
                lines.append(f"    {kind} {tname} {pname}")
            for attr in cdef.attributes.values():
                lines.append(f"    attribute {attr.type.typename()} "
                             f"{attr.name}")
    if idl.homes:
        lines.append("homes:")
        for name, hdef in sorted(idl.homes.items()):
            lines.append(f"  {name} manages {hdef.manages}")
    if idl.types:
        lines.append("types:")
        for name, t in sorted(idl.types.items()):
            lines.append(f"  {name} = {t.typename()}")
    if idl.constants:
        lines.append("constants:")
        for name, value in sorted(idl.constants.items()):
            lines.append(f"  {name} = {value!r}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="idlc", description="compile IDL and print the model")
    parser.add_argument("files", nargs="+", type=Path,
                        help="IDL source files")
    parser.add_argument("--repo-ids", action="store_true",
                        help="show OMG repository ids")
    args = parser.parse_args(argv)

    merged = CompiledIdl()
    for path in args.files:
        try:
            source = path.read_text()
        except OSError as exc:
            print(f"idlc: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        try:
            merged.merge(compile_idl(source))
        except IdlError as exc:
            print(f"idlc: {path}: {exc}", file=sys.stderr)
            return 1
    sys.stdout.write(format_model(merged, repo_ids=args.repo_ids))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
