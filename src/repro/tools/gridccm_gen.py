"""``gridccm_gen``: run the GridCCM compiler, emit generated IDL.

Usage::

    python -m repro.tools.gridccm_gen component.idl parallelism.xml

Prints the internal + proxy interface IDL the GridCCM layer will use —
the "New Component IDL description" of the paper's Figure 5."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import GridCcmCompiler, ParallelismDescriptor, ParallelismError
from repro.corba.idl import IdlError, compile_idl


def generate(idl_source: str, xml_source: str) -> str:
    idl = compile_idl(idl_source)
    descriptor = ParallelismDescriptor.parse(xml_source)
    plan = GridCcmCompiler(idl, descriptor).compile()
    header = (f"// GridCCM compiler output for component "
              f"{descriptor.component}\n"
              f"// parallel operations: "
              f"{sorted(n for _p, n in plan.ops)}\n")
    return header + plan.emit_internal_idl()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gridccm_gen",
        description="generate GridCCM internal interfaces (Figure 5)")
    parser.add_argument("idl", type=Path, help="component IDL file")
    parser.add_argument("xml", type=Path,
                        help="XML parallelism description")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="write generated IDL here (default stdout)")
    args = parser.parse_args(argv)

    try:
        text = generate(args.idl.read_text(), args.xml.read_text())
    except OSError as exc:
        print(f"gridccm_gen: {exc}", file=sys.stderr)
        return 2
    except (IdlError, ParallelismError) as exc:
        print(f"gridccm_gen: {exc}", file=sys.stderr)
        return 1
    if args.output is not None:
        args.output.write_text(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
