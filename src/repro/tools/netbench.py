"""``netbench``: quick middleware bandwidth/latency probe.

Usage::

    python -m repro.tools.netbench --middleware omniORB4 --size 8M
    python -m repro.tools.netbench --middleware mpi --latency
    python -m repro.tools.netbench --middleware Mico --lan --size 1M

Spins up a two-node simulated cluster, runs the requested middleware's
transfer path, and prints virtual-clock results — the command-line
equivalent of one Figure-7 data point."""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.corba import (
    MICO,
    OMNIORB3,
    OMNIORB4,
    ORBACUS,
    Orb,
    compile_idl,
)
from repro.corba.profiles import OPENCCM_JAVA, OrbProfile
from repro.mpi import create_world, spmd
from repro.net import MYRINET_2000, Topology, build_cluster
from repro.padicotm import PadicoRuntime

PROFILES: dict[str, OrbProfile] = {
    "omniORB3": OMNIORB3,
    "omniORB4": OMNIORB4,
    "Mico": MICO,
    "ORBacus": ORBACUS,
    "OpenCCM": OPENCCM_JAVA,
}

_IDL = """
module NB { typedef sequence<octet> Blob;
            interface Sink { void push(in Blob data); }; };
"""


def parse_size(text: str) -> int:
    """'8M', '32K', '100' → bytes."""
    text = text.strip().upper()
    factor = 1
    if text.endswith("K"):
        factor, text = 1024, text[:-1]
    elif text.endswith("M"):
        factor, text = 1024 * 1024, text[:-1]
    try:
        return int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None


def _build_runtime(lan_only: bool) -> PadicoRuntime:
    topo = Topology()
    build_cluster(topo, "n", 2, san=None if lan_only else MYRINET_2000)
    return PadicoRuntime(topo)


def corba_probe(profile: OrbProfile, size: int, lan_only: bool,
                protocol: str) -> dict[str, float]:
    rt = _build_runtime(lan_only)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")
    s_orb = Orb(server, profile, compile_idl(_IDL), protocol=protocol)
    s_orb.start()
    c_orb = Orb(client, profile, compile_idl(_IDL), protocol=protocol)

    class Sink(s_orb.servant_base("NB::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    out: dict[str, float] = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")
        t0 = rt.kernel.now
        stub.push(b"")
        out["latency_us"] = (rt.kernel.now - t0) / 2 * 1e6
        if size:
            t0 = rt.kernel.now
            stub.push(bytes(size))
            rtt = rt.kernel.now - t0
            out["bandwidth_mbps"] = size / rtt / 1e6
            out["fabric"] = c_orb._connections[
                (server.name, s_orb.port)].endpoint.fabric_name

    client.spawn(main)
    rt.run()
    rt.shutdown()
    return out


def mpi_probe(size: int, lan_only: bool) -> dict[str, float]:
    rt = _build_runtime(lan_only)
    procs = [rt.create_process(f"n{i}", f"rank{i}") for i in range(2)]
    world = create_world(rt, "nb", procs)
    out: dict[str, float] = {}

    def main(proc, comm):
        buf = np.zeros(max(size, 1), dtype="u1")
        if comm.rank == 0:
            comm.Send(buf[:1], dest=1, tag=0)
            comm.Recv(buf[:1], source=1, tag=0)
            t0 = comm.Wtime()
            comm.Send(buf[:1], dest=1, tag=1)
            comm.Recv(buf[:1], source=1, tag=1)
            out["latency_us"] = (comm.Wtime() - t0) / 2 * 1e6
            if size:
                t0 = comm.Wtime()
                comm.Send(buf, dest=1, tag=2)
                out["bandwidth_mbps"] = size / (comm.Wtime() - t0) / 1e6
        else:
            comm.Recv(buf[:1], source=0, tag=0)
            comm.Send(buf[:1], dest=0, tag=0)
            comm.Recv(buf[:1], source=0, tag=1)
            comm.Send(buf[:1], dest=0, tag=1)
            if size:
                comm.Recv(buf, source=0, tag=2)

    spmd(world, main)
    rt.run()
    rt.shutdown()
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="netbench",
        description="probe middleware performance on a simulated cluster")
    parser.add_argument("--middleware", default="omniORB4",
                        choices=["mpi"] + sorted(PROFILES),
                        help="transfer path to exercise")
    parser.add_argument("--size", type=parse_size, default=parse_size("8M"),
                        help="payload size (e.g. 8M, 32K); 0 = latency only")
    parser.add_argument("--lan", action="store_true",
                        help="Fast-Ethernet only (no Myrinet SAN)")
    parser.add_argument("--protocol", default="giop",
                        choices=["giop", "esiop"],
                        help="CORBA wire protocol")
    parser.add_argument("--latency", action="store_true",
                        help="shorthand for --size 0")
    args = parser.parse_args(argv)
    size = 0 if args.latency else args.size

    if args.middleware == "mpi":
        out = mpi_probe(size, args.lan)
        label = "MPI (MPICH/Madeleine)"
    else:
        out = corba_probe(PROFILES[args.middleware], size, args.lan,
                          args.protocol)
        label = f"CORBA {PROFILES[args.middleware].key} ({args.protocol})"

    wire = "Fast-Ethernet" if args.lan else "Myrinet-2000"
    print(f"middleware : {label}")
    print(f"wire       : {wire}" + (f" via {out['fabric']}"
                                    if "fabric" in out else ""))
    print(f"latency    : {out['latency_us']:.1f} us one-way")
    if "bandwidth_mbps" in out:
        print(f"bandwidth  : {out['bandwidth_mbps']:.1f} MB/s "
              f"({size / 1e6:.2f} MB payload)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
