"""``padico-trace``: record, inspect and validate deterministic traces.

Usage::

    python -m repro.tools.trace demo --out trace.json
    python -m repro.tools.trace demo --size 1M --profile Mico --lan
    python -m repro.tools.trace summary trace.json
    python -m repro.tools.trace bench BENCH_padico.json

``demo`` runs the paper's Figure-7 workload — a GIOP ping-pong between
two PadicoTM processes over Myrinet — under ``runtime.trace()`` and
writes a Chrome ``trace_event`` JSON that loads directly into Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  ``summary`` prints
the metrics roll-up embedded in such a file; ``bench`` schema-checks a
``padico-bench/1`` or ``padico-wallclock/1`` document."""

from __future__ import annotations

import argparse
import json
import sys

from repro.corba import MICO, OMNIORB3, OMNIORB4, ORBACUS, Orb, compile_idl
from repro.corba.profiles import OrbProfile
from repro.net import MYRINET_2000, Topology, build_cluster
from repro.obs import (
    BENCH_SCHEMA,
    WALLCLOCK_SCHEMA,
    BenchSchemaError,
    TraceRecorder,
    metrics,
    validate_bench_doc,
    write_chrome_trace,
)
from repro.padicotm import PadicoRuntime

PROFILES: dict[str, OrbProfile] = {
    "omniORB3": OMNIORB3,
    "omniORB4": OMNIORB4,
    "Mico": MICO,
    "ORBacus": ORBACUS,
}

_IDL = """
module Demo { typedef sequence<octet> Blob;
              interface Echo { Blob bounce(in Blob data); }; };
"""


def parse_size(text: str) -> int:
    """'8M', '32K', '100' → bytes."""
    text = text.strip().upper()
    factor = 1
    if text.endswith("K"):
        factor, text = 1024, text[:-1]
    elif text.endswith("M"):
        factor, text = 1024 * 1024, text[:-1]
    try:
        return int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None


def record_pingpong(profile: OrbProfile, size: int, rounds: int,
                    lan_only: bool) -> TraceRecorder:
    """Trace a GIOP ping-pong; returns the detached recorder."""
    topo = Topology()
    build_cluster(topo, "n", 2, san=None if lan_only else MYRINET_2000)
    rt = PadicoRuntime(topo)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")
    s_orb = Orb(server, profile, compile_idl(_IDL))
    s_orb.start()
    c_orb = Orb(client, profile, compile_idl(_IDL))

    class Echo(s_orb.servant_base("Demo::Echo")):
        def bounce(self, data):
            return data

    url = s_orb.object_to_string(s_orb.poa.activate_object(Echo()))

    def main(proc):
        stub = c_orb.string_to_object(url)
        payload = bytes(size)
        for _ in range(rounds):
            stub.bounce(payload)

    with rt.trace() as recorder:
        client.spawn(main)
        rt.run()
    rt.shutdown()
    return recorder


def _print_metrics(flat: dict) -> None:
    spans = flat.get("spans", {})
    if spans:
        print("spans (count, total virtual s):")
        for name in sorted(spans):
            entry = spans[name]
            print(f"  {name:24s} x{entry['count']:<4d} "
                  f"{entry['total']:.6f}")
    for key in ("counters", "driver_io"):
        table = flat.get(key, {})
        if table:
            print(f"{key}:")
            for name in sorted(table):
                print(f"  {name:24s} {table[name]}")
    for key in ("fabric_bytes", "flows", "context_switches",
                "events_fired"):
        if key in flat:
            print(f"{key}: {flat[key]}")


def cmd_demo(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]
    recorder = record_pingpong(profile, parse_size(args.size),
                               args.rounds, args.lan)
    write_chrome_trace(recorder, args.out)
    n_spans = len(recorder.spans)
    print(f"wrote {args.out}: {n_spans} spans, "
          f"{len(recorder.flows)} flows "
          f"({args.rounds}x {args.size} ping-pong, {args.profile}, "
          f"{'Ethernet-100' if args.lan else 'Myrinet-2000'})")
    if args.tree:
        print(recorder.render_tree())
    else:
        _print_metrics(metrics(recorder))
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    with open(args.file, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {})
    if other.get("schema") != "padico-trace/1":
        print(f"warning: {args.file} is not a padico-trace/1 document",
              file=sys.stderr)
    complete = [e for e in events if e.get("ph") == "X"]
    print(f"{args.file}: {len(events)} events "
          f"({len(complete)} spans)")
    flat = other.get("padicoMetrics")
    if flat:
        _print_metrics(flat)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    with open(args.file, encoding="utf-8") as fh:
        doc = json.load(fh)
    # both envelopes share structure; the tag says which gate applies
    schema = (WALLCLOCK_SCHEMA if doc.get("schema") == WALLCLOCK_SCHEMA
              else BENCH_SCHEMA)
    try:
        names = validate_bench_doc(doc, schema=schema)
    except BenchSchemaError as exc:
        print(f"{args.file}: INVALID — {exc}", file=sys.stderr)
        return 1
    print(f"{args.file}: valid {schema} document, "
          f"{len(names)} series")
    for name in names:
        print(f"  {name}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="padico-trace",
        description="deterministic trace recording and inspection")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "demo", aliases=["pingpong"],
        help="trace a Figure-7 GIOP ping-pong and write Chrome JSON")
    demo.add_argument("--out", default="trace.json",
                      help="output path (default: trace.json)")
    demo.add_argument("--size", default="32K",
                      help="payload size, e.g. 32K or 8M (default: 32K)")
    demo.add_argument("--rounds", type=int, default=3,
                      help="ping-pong iterations (default: 3)")
    demo.add_argument("--profile", choices=sorted(PROFILES),
                      default="omniORB4", help="ORB profile")
    demo.add_argument("--lan", action="store_true",
                      help="pin to Fast-Ethernet instead of Myrinet")
    demo.add_argument("--tree", action="store_true",
                      help="print the span tree instead of metrics")
    demo.set_defaults(func=cmd_demo)

    summary = sub.add_parser("summary",
                             help="summarise a recorded trace file")
    summary.add_argument("file")
    summary.set_defaults(func=cmd_summary)

    bench = sub.add_parser(
        "bench", help="validate a padico-bench/1 or padico-wallclock/1 "
                      "(BENCH_*.json) file")
    bench.add_argument("file")
    bench.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
