"""CORBA Component Model (CCM) runtime — paper §3.2.

Implements the four CCM models the paper describes:

- **abstract model**: components with facets, receptacles, event
  sources/sinks and attributes, declared in IDL 3
  (:mod:`repro.corba.idl` handles ``component``/``home``/``eventtype``);
- **programming model**: executors (:class:`ComponentImpl`) with
  lifecycle callbacks and a session context for port access;
- **execution model**: :class:`Container` + :class:`Home` hosting
  component instances on an ORB, with every port interaction carried
  over GIOP;
- **deployment model**: software packages and assembly descriptors (XML,
  :mod:`repro.ccm.descriptors`) deployed over the grid through
  :class:`ComponentServer` objects (:mod:`repro.ccm.deployment`).
"""

from repro.ccm.cidl import (
    CidlError,
    CompositionDef,
    bind_compositions,
    compile_cidl,
)
from repro.ccm.component import (
    ComponentImpl,
    ImplementationRepository,
    implementation,
)
from repro.ccm.container import (
    CcmContext,
    CcmError,
    ComponentInstance,
    Container,
    Home,
)
from repro.ccm.descriptors import (
    AssemblyDescriptor,
    ConnectionDecl,
    DescriptorError,
    InstanceDecl,
    SoftwarePackage,
)
from repro.ccm.deployment import ComponentServer, DeploymentEngine
from repro.ccm.idl import COMPONENTS_IDL, components_idl

__all__ = [
    "compile_cidl",
    "bind_compositions",
    "CompositionDef",
    "CidlError",
    "ComponentImpl",
    "ImplementationRepository",
    "implementation",
    "Container",
    "Home",
    "CcmContext",
    "CcmError",
    "ComponentInstance",
    "SoftwarePackage",
    "AssemblyDescriptor",
    "InstanceDecl",
    "ConnectionDecl",
    "DescriptorError",
    "ComponentServer",
    "DeploymentEngine",
    "COMPONENTS_IDL",
    "components_idl",
]
