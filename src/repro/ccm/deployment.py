"""CCM deployment: component servers and the deployment engine.

This is the machinery behind the paper's deployment scenarios (§2): a
:class:`ComponentServer` runs on every grid node willing to host
components and registers itself with the Naming Service; the
:class:`DeploymentEngine`, running anywhere on the grid, reads an
assembly descriptor, installs homes through the component servers
(looking executor factories up in the implementation repository — the
stand-in for binary packages), instantiates components, wires ports and
finally signals ``configuration_complete`` — all over ordinary GIOP."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.ccm.component import ImplementationRepository
from repro.ccm.container import Container
from repro.ccm.descriptors import (
    AssemblyDescriptor,
    DescriptorError,
    SoftwarePackage,
)
from repro.corba.naming import NamingContext
from repro.corba.orb import ObjectRef, Orb


class ComponentServer:
    """Per-node component hosting service.

    With ``access_policy`` set, home installation requires the caller's
    GIOP Principal to carry an authorised grid credential (the paper's
    §6 'grid-wide authentication mechanism')."""

    NAME_PREFIX = "ComponentServer."

    def __init__(self, container: Container,
                 naming: NamingContext | None = None,
                 access_policy=None):
        self.container = container
        self.access_policy = access_policy
        orb = container.orb
        base = orb.servant_base("Components::ComponentServer")
        server = self

        class _Servant(base):  # type: ignore[misc, valid-type]
            def install_home(self, component: str,
                             impl_id: str) -> ObjectRef:
                try:
                    server._authenticate()
                    home = server._install(component, impl_id)
                except Exception as exc:  # noqa: BLE001 → CreateFailure
                    raise orb.idl.type("Components::CreateFailure").make(
                        why=f"{type(exc).__name__}: {exc}") from exc
                return home.ref

            def installed_homes(self) -> list[str]:
                return sorted(server.container.homes)

        self.ref = orb.poa.activate_object(_Servant(),
                                           key="ComponentServer")
        self._naming = naming

    def _authenticate(self) -> None:
        if self.access_policy is not None:
            self.access_policy.check(self.container.orb.caller_principal())

    @property
    def registry_name(self) -> str:
        return f"{self.NAME_PREFIX}{self.container.process.name}"

    def register(self) -> None:
        """Advertise this server in the naming service (in a sim thread)."""
        if self._naming is None:
            raise RuntimeError("component server has no naming context")
        self._naming.rebind(self.registry_name, self.ref)

    def _install(self, component: str, impl_id: str):
        declared, factory = ImplementationRepository.lookup(impl_id)
        if declared != component:
            raise DescriptorError(
                f"implementation {impl_id!r} implements {declared!r}, "
                f"not {component!r}")
        safe_impl = impl_id.replace(":", "_").replace("/", "_") \
            .replace("#", "_")
        name = f"{component.replace('::', '_')}-{safe_impl}"
        if name in self.container.homes:
            return self.container.homes[name]
        return self.container.install_home(component, factory, name=name)


@dataclass
class DeployedApplication:
    """Handle on a deployed assembly: instance id → component ref."""

    assembly_id: str
    components: dict[str, ObjectRef] = field(default_factory=dict)
    placement: dict[str, str] = field(default_factory=dict)

    def component(self, instance_id: str) -> ObjectRef:
        try:
            return self.components[instance_id]
        except KeyError:
            raise DescriptorError(
                f"no deployed instance {instance_id!r}") from None

    def teardown(self) -> None:
        """Destroy every component instance (call from a sim thread)."""
        for ref in self.components.values():
            ref.remove()
        self.components.clear()


class DeploymentEngine:
    """Drives a whole assembly deployment across the grid."""

    def __init__(self, orb: Orb, naming: NamingContext,
                 packages: dict[str, SoftwarePackage]):
        self.orb = orb
        self.naming = naming
        self.packages = packages

    # -- resolution helpers ---------------------------------------------------
    def _component_server(self, process_name: str) -> ObjectRef:
        ref = self.naming.resolve(
            f"{ComponentServer.NAME_PREFIX}{process_name}")
        return self.orb.narrow(ref, "Components::ComponentServer")

    def _implementation(self, assembly: AssemblyDescriptor,
                        componentfile: str) -> tuple[str, str]:
        """componentfile id → (component scoped name, impl id)."""
        pkg_name = assembly.componentfiles[componentfile]
        try:
            pkg = self.packages[pkg_name]
        except KeyError:
            raise DescriptorError(
                f"unknown software package {pkg_name!r}") from None
        impl = pkg.implementations[0]
        return impl.component, impl.impl_id

    # -- the deployment pipeline ----------------------------------------------
    def deploy(self, assembly: AssemblyDescriptor,
               placement: dict[str, str] | None = None
               ) -> DeployedApplication:
        """Deploy ``assembly``; must run inside a simulated thread.

        ``placement`` overrides/extends the descriptor's ``destination``
        fields (instance id → PadicoTM process name) — typically produced
        by the deployment planner from machine discovery (§2).
        """
        placement = dict(placement or {})
        app = DeployedApplication(assembly.id)

        # 1. instantiate every component on its destination node
        for inst in assembly.instances:
            destination = placement.get(inst.id, inst.destination)
            if destination is None:
                raise DescriptorError(
                    f"instance {inst.id!r} has no destination (descriptor "
                    f"or placement)")
            placement[inst.id] = destination
            component, impl_id = self._implementation(
                assembly, inst.componentfile)
            server = self._component_server(destination)
            home = self.orb.narrow(server.install_home(component, impl_id),
                                   "Components::CCMHome")
            comp = self.orb.narrow(home.create(), "Components::CCMObject")
            app.components[inst.id] = comp
        app.placement = placement

        # 2. configure attributes
        for inst_id, name, value in assembly.properties:
            comp = app.component(inst_id)
            component, _impl = self._implementation(
                assembly, assembly.instance(inst_id).componentfile)
            attr = self.orb.idl.component(component).attributes.get(name)
            if attr is None:
                raise DescriptorError(
                    f"{component} has no attribute {name!r}")
            comp.configure(name, (attr.type, value))

        # 3. wire connections
        for conn in assembly.connections:
            provider = app.component(conn.provider_instance)
            user = app.component(conn.user_instance)
            endpoint = provider.provide_facet(conn.provider_port)
            if conn.kind == "interface":
                user.connect(conn.user_port, endpoint)
            else:
                consumer = self.orb.narrow(endpoint,
                                           "Components::EventConsumer")
                user.subscribe(conn.user_port, consumer)

        # 4. activation
        for comp in app.components.values():
            comp.configuration_complete()
        return app
