"""CCM deployment descriptors (XML).

The CCM deployment model ships components as software packages with XML
descriptors (the OSD vocabulary) and wires applications with assembly
descriptors.  We implement the subset the paper's scenarios need:

Software package (``.csd``-flavoured)::

    <softpkg name="chemistry" version="1.2">
      <implementation id="DCE:chem-1">
        <component>App::Chemistry</component>
        <os name="Linux"/> <processor name="i686"/>
      </implementation>
    </softpkg>

Assembly (``.cad``-flavoured)::

    <componentassembly id="coupling">
      <componentfiles>
        <componentfile id="chem" softpkg="chemistry"/>
      </componentfiles>
      <instance id="chem0" componentfile="chem" destination="nodeA"/>
      <connection>
        <uses instance="chem0" port="output"/>
        <provides instance="transport0" port="input"/>
      </connection>
      <connectevent>
        <emitter instance="chem0" port="done"/>
        <consumer instance="viz0" port="tick"/>
      </connectevent>
      <property instance="chem0" name="tolerance" value="0.01"/>
    </componentassembly>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any


class DescriptorError(Exception):
    """Malformed or inconsistent deployment descriptor."""


@dataclass(frozen=True)
class ImplementationDecl:
    impl_id: str
    component: str
    os: str | None = None
    processor: str | None = None
    #: inline GridCCM parallelism description (XML text), when the
    #: packaged code is an SPMD parallel component
    parallelism: str | None = None


@dataclass(frozen=True)
class SoftwarePackage:
    """Parsed software package descriptor."""

    name: str
    version: str
    implementations: tuple[ImplementationDecl, ...]

    @classmethod
    def parse(cls, xml_text: str) -> "SoftwarePackage":
        root = _parse_root(xml_text, "softpkg")
        impls = []
        for impl in root.findall("implementation"):
            comp = impl.findtext("component")
            if not comp:
                raise DescriptorError("implementation needs a <component>")
            os_el = impl.find("os")
            cpu_el = impl.find("processor")
            par_el = impl.find("parallelism")
            parallelism = (ET.tostring(par_el, encoding="unicode")
                           if par_el is not None else None)
            impls.append(ImplementationDecl(
                _req_attr(impl, "id"), comp.strip(),
                os_el.get("name") if os_el is not None else None,
                cpu_el.get("name") if cpu_el is not None else None,
                parallelism))
        if not impls:
            raise DescriptorError("softpkg declares no implementation")
        return cls(_req_attr(root, "name"), root.get("version", "1.0"),
                   tuple(impls))

    def implementation_for(self, component: str) -> ImplementationDecl:
        for impl in self.implementations:
            if impl.component == component:
                return impl
        raise DescriptorError(
            f"package {self.name!r} has no implementation of {component!r}")


@dataclass(frozen=True)
class InstanceDecl:
    id: str
    componentfile: str
    destination: str | None  # process name; None = planner decides
    constraints: tuple[str, ...] = ()  # host label constraints (§2)
    #: SPMD width for GridCCM parallel components (1 = sequential)
    nodes: int = 1


@dataclass(frozen=True)
class ConnectionDecl:
    kind: str            # "interface" | "event"
    user_instance: str   # uses / emitter side
    user_port: str
    provider_instance: str
    provider_port: str


@dataclass
class AssemblyDescriptor:
    """Parsed component assembly."""

    id: str
    componentfiles: dict[str, str] = field(default_factory=dict)
    instances: list[InstanceDecl] = field(default_factory=list)
    connections: list[ConnectionDecl] = field(default_factory=list)
    properties: list[tuple[str, str, Any]] = field(default_factory=list)

    @classmethod
    def parse(cls, xml_text: str) -> "AssemblyDescriptor":
        root = _parse_root(xml_text, "componentassembly")
        asm = cls(_req_attr(root, "id"))
        files = root.find("componentfiles")
        if files is not None:
            for cf in files.findall("componentfile"):
                asm.componentfiles[_req_attr(cf, "id")] = \
                    _req_attr(cf, "softpkg")
        for inst in root.findall("instance"):
            constraints = tuple(
                c.get("label", "") for c in inst.findall("constraint"))
            nodes = int(inst.get("nodes", "1"))
            if nodes < 1:
                raise DescriptorError(
                    f"instance {inst.get('id')!r}: nodes must be >= 1")
            asm.instances.append(InstanceDecl(
                _req_attr(inst, "id"), _req_attr(inst, "componentfile"),
                inst.get("destination"), constraints, nodes))
        for conn in root.findall("connection"):
            uses = conn.find("uses")
            provides = conn.find("provides")
            if uses is None or provides is None:
                raise DescriptorError(
                    "<connection> needs <uses> and <provides>")
            asm.connections.append(ConnectionDecl(
                "interface",
                _req_attr(uses, "instance"), _req_attr(uses, "port"),
                _req_attr(provides, "instance"), _req_attr(provides, "port")))
        for conn in root.findall("connectevent"):
            emitter = conn.find("emitter")
            consumer = conn.find("consumer")
            if emitter is None or consumer is None:
                raise DescriptorError(
                    "<connectevent> needs <emitter> and <consumer>")
            asm.connections.append(ConnectionDecl(
                "event",
                _req_attr(emitter, "instance"), _req_attr(emitter, "port"),
                _req_attr(consumer, "instance"), _req_attr(consumer, "port")))
        for prop in root.findall("property"):
            asm.properties.append((
                _req_attr(prop, "instance"), _req_attr(prop, "name"),
                _parse_value(prop)))
        asm.validate()
        return asm

    def validate(self) -> None:
        ids = [i.id for i in self.instances]
        if len(set(ids)) != len(ids):
            raise DescriptorError(f"duplicate instance ids in {self.id!r}")
        known = set(ids)
        for inst in self.instances:
            if inst.componentfile not in self.componentfiles:
                raise DescriptorError(
                    f"instance {inst.id!r} references unknown "
                    f"componentfile {inst.componentfile!r}")
        for conn in self.connections:
            for ref in (conn.user_instance, conn.provider_instance):
                if ref not in known:
                    raise DescriptorError(
                        f"connection references unknown instance {ref!r}")
        for inst_id, _name, _v in self.properties:
            if inst_id not in known:
                raise DescriptorError(
                    f"property references unknown instance {inst_id!r}")

    def instance(self, inst_id: str) -> InstanceDecl:
        for inst in self.instances:
            if inst.id == inst_id:
                return inst
        raise DescriptorError(f"no instance {inst_id!r}")


def _parse_root(xml_text: str, expected_tag: str) -> ET.Element:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DescriptorError(f"malformed XML: {exc}") from exc
    if root.tag != expected_tag:
        raise DescriptorError(
            f"expected <{expected_tag}> document, got <{root.tag}>")
    return root


def _req_attr(el: ET.Element, name: str) -> str:
    value = el.get(name)
    if not value:
        raise DescriptorError(f"<{el.tag}> is missing attribute {name!r}")
    return value


def _parse_value(el: ET.Element) -> Any:
    """Property values: typed by the ``type`` attribute."""
    raw = el.get("value", "")
    kind = el.get("type", "string")
    if kind == "string":
        return raw
    if kind in ("long", "short", "ulong"):
        return int(raw, 0)
    if kind in ("double", "float"):
        return float(raw)
    if kind == "boolean":
        return raw.lower() in ("true", "1", "yes")
    raise DescriptorError(f"unsupported property type {kind!r}")
