"""The CCM equivalent interfaces (Components module).

Every component instance is reachable through a ``CCMObject`` reference
offering generic navigation (facets), connection management
(receptacles), event subscription and attribute configuration — the
runtime face of the CCM abstract model.  Event delivery uses
``EventConsumer`` references; homes and component servers are plain
CORBA objects too, so the whole deployment machinery runs over GIOP."""

from __future__ import annotations

from repro.corba.idl.compiler import CompiledIdl, compile_idl

COMPONENTS_IDL = """
module Components {
    exception InvalidName { string name; };
    exception InvalidConnection { string why; };
    exception AlreadyConnected { string port; };
    exception NoConnection { string port; };
    exception CreateFailure { string why; };

    interface EventConsumer {
        void push(in any event);
    };

    interface CCMObject {
        Object provide_facet(in string name) raises (InvalidName);
        void connect(in string name, in Object target)
            raises (InvalidName, AlreadyConnected, InvalidConnection);
        void disconnect(in string name)
            raises (InvalidName, NoConnection);
        void subscribe(in string name, in EventConsumer consumer)
            raises (InvalidName);
        void unsubscribe(in string name, in EventConsumer consumer)
            raises (InvalidName, NoConnection);
        void configure(in string name, in any value) raises (InvalidName);
        any get_attribute(in string name) raises (InvalidName);
        string component_type();
        void configuration_complete();
        void remove();
    };

    interface CCMHome {
        CCMObject create() raises (CreateFailure);
        void remove_component(in CCMObject comp);
    };

    interface ComponentServer {
        CCMHome install_home(in string component_type, in string impl_id)
            raises (CreateFailure);
        sequence<string> installed_homes();
    };
};
"""


def components_idl() -> CompiledIdl:
    """A fresh compiled copy of the Components module."""
    return compile_idl(COMPONENTS_IDL)
