"""Component executors and the implementation repository.

A :class:`ComponentImpl` subclass is the *executor*: the user code
inside a component (the paper's encapsulated legacy code).  Conventions:

- for each ``provides`` port, define ``provide_<port>()`` returning the
  object implementing the facet's interface (often ``self``);
- for each ``consumes`` port, define ``push_<port>(event)``;
- IDL attributes map to plain Python attributes;
- the container injects :attr:`context` before activation; use it to
  reach receptacles (``context.get_connection``) and emit events
  (``context.push_event``).

The :class:`ImplementationRepository` stands in for the binary archives
of CCM software packages: deployment descriptors reference an
implementation UUID; component servers look the executor factory up at
install time (the paper's "deployment of components in binary form")."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.ccm.container import CcmContext


class ComponentImpl:
    """Base class for component executors (CCM programming model)."""

    context: "CcmContext"

    # -- lifecycle callbacks (CCM session component) ----------------------
    def ccm_activate(self) -> None:
        """Called once the component is fully connected and configured."""

    def ccm_passivate(self) -> None:
        """Called before the component is disconnected."""

    def ccm_remove(self) -> None:
        """Called when the component is destroyed."""

    def set_session_context(self, context: "CcmContext") -> None:
        self.context = context


class ImplementationRepository:
    """Global registry: implementation UUID → executor factory."""

    _factories: dict[str, tuple[str, Callable[[], ComponentImpl]]] = {}

    @classmethod
    def register(cls, impl_id: str, component: str,
                 factory: Callable[[], ComponentImpl]) -> None:
        """Register ``factory`` as the implementation ``impl_id`` of the
        IDL component type ``component`` (scoped name)."""
        if impl_id in cls._factories:
            raise ValueError(f"implementation {impl_id!r} already registered")
        cls._factories[impl_id] = (component, factory)

    @classmethod
    def lookup(cls, impl_id: str) -> tuple[str, Callable[[], ComponentImpl]]:
        try:
            return cls._factories[impl_id]
        except KeyError:
            raise LookupError(
                f"no implementation {impl_id!r} in the repository "
                f"(known: {sorted(cls._factories)})") from None

    @classmethod
    def unregister(cls, impl_id: str) -> None:
        cls._factories.pop(impl_id, None)

    @classmethod
    def clear(cls) -> None:
        cls._factories.clear()


def implementation(impl_id: str, component: str) -> Callable:
    """Class decorator registering an executor in the repository::

        @implementation("DCE:1234", "App::Chemistry")
        class ChemistryImpl(ComponentImpl): ...
    """
    def wrap(cls: type) -> type:
        ImplementationRepository.register(impl_id, component, cls)
        return cls

    return wrap
