"""CCM execution model: containers, homes, component instances.

A :class:`Container` hosts component instances inside one PadicoTM
process on top of an ORB.  It activates, for each instance:

- one ``Components::CCMObject`` servant (generic navigation/lifecycle),
- one servant per *facet* (typed by the facet's IDL interface),
- one ``Components::EventConsumer`` servant per *event sink*.

Everything a component shows the outside world is therefore an ordinary
CORBA object — which is exactly what lets GridCCM later substitute its
parallel proxies without the model noticing."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.ccm.component import ComponentImpl
from repro.ccm.idl import COMPONENTS_IDL
from repro.corba.idl.compiler import CompiledIdl, ComponentDef
from repro.corba.idl.types import StructType
from repro.corba.orb import ObjectRef, Orb
from repro.corba.profiles import OMNIORB4, OrbProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess


class CcmError(Exception):
    """Local CCM usage error."""


class CcmContext:
    """Session context: the executor's window on its ports."""

    def __init__(self, instance: "ComponentInstance"):
        self._instance = instance

    def get_connection(self, port: str) -> ObjectRef:
        """The object connected to receptacle ``port``."""
        inst = self._instance
        if port not in inst.cdef.uses:
            raise CcmError(f"{inst.cdef.scoped_name} has no receptacle "
                           f"{port!r}")
        target = inst.receptacles.get(port)
        if target is None:
            raise CcmError(f"receptacle {port!r} is not connected")
        return target

    def push_event(self, port: str, event: Any) -> None:
        """Emit ``event`` (a generated event struct value) on ``port``."""
        inst = self._instance
        if port in inst.cdef.emits:
            event_type_name = inst.cdef.emits[port]
        elif port in inst.cdef.publishes:
            event_type_name = inst.cdef.publishes[port]
        else:
            raise CcmError(f"{inst.cdef.scoped_name} has no event source "
                           f"{port!r}")
        etype = inst.container.idl.type(event_type_name)
        assert isinstance(etype, StructType)
        for consumer in inst.consumers_of(port):
            consumer.push((etype, event))

    @property
    def component_ref(self) -> ObjectRef:
        """This component's own CCMObject reference."""
        return self._instance.ccm_ref


class ComponentInstance:
    """One live component: executor + servants + port state."""

    def __init__(self, container: "Container", cdef: ComponentDef,
                 executor: ComponentImpl, key: str):
        self.container = container
        self.cdef = cdef
        self.executor = executor
        self.key = key
        self.receptacles: dict[str, ObjectRef | None] = {
            p: None for p in cdef.uses}
        self._subscribers: dict[str, list[ObjectRef]] = {
            p: [] for p in list(cdef.emits) + list(cdef.publishes)}
        self.facet_refs: dict[str, ObjectRef] = {}
        self.sink_refs: dict[str, ObjectRef] = {}
        self.removed = False
        self.activated = False

        executor.set_session_context(CcmContext(self))
        orb = container.orb
        for port, iface in cdef.provides.items():
            servant = self._facet_servant(port, iface)
            self.facet_refs[port] = orb.poa.activate_object(
                servant, key=f"{key}.facet.{port}")
        for port in cdef.consumes:
            servant = self._sink_servant(port)
            self.sink_refs[port] = orb.poa.activate_object(
                servant, key=f"{key}.sink.{port}")
        self.ccm_ref = orb.poa.activate_object(
            _CcmObjectServant(orb, self), key=key)

    # -- servant builders ---------------------------------------------------
    def _facet_servant(self, port: str, iface: str):
        orb = self.container.orb
        provider = getattr(self.executor, f"provide_{port}", None)
        impl = provider() if provider is not None else self.executor
        base = orb.servant_base(iface)

        class _Facet(base):  # type: ignore[misc, valid-type]
            """Thin delegator so one executor can serve several facets."""

            def __getattr__(self, name: str) -> Any:
                return getattr(impl, name)

            def __setattr__(self, name: str, value: Any) -> None:
                if name.startswith("_"):
                    object.__setattr__(self, name, value)
                else:  # IDL attribute writes reach the implementation
                    setattr(impl, name, value)

        return _Facet()

    def _sink_servant(self, port: str):
        orb = self.container.orb
        base = orb.servant_base("Components::EventConsumer")
        handler = getattr(self.executor, f"push_{port}", None)
        if handler is None:
            raise CcmError(
                f"{type(self.executor).__name__} must define "
                f"push_{port}(event) for its consumes port {port!r}")

        class _Sink(base):  # type: ignore[misc, valid-type]
            def push(self, event: tuple) -> None:
                _etype, value = event
                handler(value)

        return _Sink()

    # -- port state -----------------------------------------------------------
    def consumers_of(self, port: str) -> list[ObjectRef]:
        return list(self._subscribers.get(port, ()))

    def subscribe(self, port: str, consumer: ObjectRef) -> None:
        if port not in self._subscribers:
            raise CcmError(f"no event source {port!r}")
        if port in self.cdef.emits and self._subscribers[port]:
            raise CcmError(f"emits port {port!r} is already connected")
        self._subscribers[port].append(consumer)

    def unsubscribe(self, port: str, consumer: ObjectRef) -> None:
        subs = self._subscribers.get(port)
        if not subs or consumer not in subs:
            raise CcmError(f"consumer not subscribed on {port!r}")
        subs.remove(consumer)

    def activate(self) -> None:
        if not self.activated:
            self.activated = True
            self.executor.ccm_activate()

    def remove(self) -> None:
        if self.removed:
            return
        if self.activated:
            self.executor.ccm_passivate()
        self.executor.ccm_remove()
        self.removed = True
        orb = self.container.orb
        for port in self.facet_refs:
            orb.poa.deactivate_object(f"{self.key}.facet.{port}")
        for port in self.sink_refs:
            orb.poa.deactivate_object(f"{self.key}.sink.{port}")
        orb.poa.deactivate_object(self.key)
        self.container._instances.pop(self.key, None)


class _CcmObjectServant:
    """Servant for Components::CCMObject delegating to the instance."""

    def __init__(self, orb: Orb, instance: ComponentInstance):
        self._idef = orb.idl.interface("Components::CCMObject")
        self._orb = orb
        self._inst = instance

    def _exc(self, exc_name: str, **fields: Any):
        return self._orb.idl.type(f"Components::{exc_name}").make(**fields)

    def provide_facet(self, name: str) -> ObjectRef:
        ref = self._inst.facet_refs.get(name)
        if ref is None:
            ref = self._inst.sink_refs.get(name)
        if ref is None:
            raise self._exc("InvalidName", name=name)
        return ref

    def connect(self, name: str, target: ObjectRef) -> None:
        inst = self._inst
        if name not in inst.cdef.uses:
            raise self._exc("InvalidName", name=name)
        if inst.receptacles[name] is not None:
            raise self._exc("AlreadyConnected", port=name)
        if target is None:
            raise self._exc("InvalidConnection", why="nil reference")
        target = self._orb.adopt(target)
        expected = inst.cdef.uses[name]
        expected_repo = f"IDL:{expected.replace('::', '/')}:1.0"
        if target.ior.type_id != expected_repo and \
                not target._is_a(expected_repo):
            raise self._exc(
                "InvalidConnection",
                why=f"{target.ior.type_id} does not satisfy {expected}")
        inst.receptacles[name] = target

    def disconnect(self, name: str) -> None:
        inst = self._inst
        if name not in inst.cdef.uses:
            raise self._exc("InvalidName", name=name)
        if inst.receptacles[name] is None:
            raise self._exc("NoConnection", port=name)
        inst.receptacles[name] = None

    def subscribe(self, name: str, consumer: ObjectRef) -> None:
        try:
            self._inst.subscribe(name, self._orb.adopt(consumer))
        except CcmError as e:
            raise self._exc("InvalidName", name=str(e)) from None

    def unsubscribe(self, name: str, consumer: ObjectRef) -> None:
        try:
            self._inst.unsubscribe(name, self._orb.adopt(consumer))
        except CcmError:
            raise self._exc("NoConnection", port=name) from None

    def configure(self, name: str, value: tuple) -> None:
        inst = self._inst
        if name not in inst.cdef.attributes:
            raise self._exc("InvalidName", name=name)
        _t, v = value
        setattr(inst.executor, name, v)

    def get_attribute(self, name: str) -> tuple:
        inst = self._inst
        attr = inst.cdef.attributes.get(name)
        if attr is None:
            raise self._exc("InvalidName", name=name)
        return (attr.type, getattr(inst.executor, name))

    def component_type(self) -> str:
        return self._inst.cdef.scoped_name

    def configuration_complete(self) -> None:
        self._inst.activate()

    def remove(self) -> None:
        self._inst.remove()


class Home:
    """A CCM home: factory for one component type."""

    def __init__(self, container: "Container", cdef: ComponentDef,
                 factory, name: str):
        self.container = container
        self.cdef = cdef
        self.factory = factory
        self.name = name
        self._counter = 0
        orb = container.orb
        base = orb.servant_base("Components::CCMHome")
        home = self

        class _HomeServant(base):  # type: ignore[misc, valid-type]
            def create(self) -> ObjectRef:
                try:
                    return home.create().ccm_ref
                except Exception as exc:  # noqa: BLE001 → CreateFailure
                    raise orb.idl.type("Components::CreateFailure").make(
                        why=f"{type(exc).__name__}: {exc}") from exc

            def remove_component(self, comp: ObjectRef) -> None:
                inst = home.container._instances.get(comp.ior.object_key)
                if inst is not None:
                    inst.remove()

        self.ref = orb.poa.activate_object(_HomeServant(),
                                           key=f"home.{name}")

    def create(self, **attributes: Any) -> ComponentInstance:
        """Instantiate the component locally; returns the live instance."""
        self._counter += 1
        key = f"{self.name}.{self._counter}"
        executor = self.factory()
        if not isinstance(executor, ComponentImpl):
            raise CcmError(f"factory for {self.name!r} must produce a "
                           f"ComponentImpl, got {type(executor).__name__}")
        for attr, value in attributes.items():
            if attr not in self.cdef.attributes:
                raise CcmError(f"{self.cdef.scoped_name} has no attribute "
                               f"{attr!r}")
            setattr(executor, attr, value)
        instance = ComponentInstance(self.container, self.cdef, executor,
                                     key)
        self.container._instances[key] = instance
        return instance


class Container:
    """CCM container bound to one PadicoTM process.

    ``profile`` selects the underlying ORB product — the lever behind
    the paper's MicoCCM vs OpenCCM comparison."""

    def __init__(self, process: "PadicoProcess", idl: CompiledIdl,
                 profile: OrbProfile = OMNIORB4, orb: Orb | None = None,
                 port: str | None = None):
        self.process = process
        if orb is None:
            orb = Orb(process, profile, idl, port=port)
        if "Components::CCMObject" not in orb.idl.interfaces:
            from repro.corba.idl.compiler import compile_idl
            orb.idl.merge(compile_idl(COMPONENTS_IDL))
        self.orb = orb
        self.orb.start()
        self.homes: dict[str, Home] = {}
        self._instances: dict[str, ComponentInstance] = {}

    @property
    def idl(self) -> CompiledIdl:
        return self.orb.idl

    def install_home(self, component: str, factory,
                     name: str | None = None) -> Home:
        """Install a home for IDL component type ``component``."""
        cdef = self.idl.component(component)
        name = name or f"{cdef.name}Home{len(self.homes)}"
        if name in self.homes:
            raise CcmError(f"home {name!r} already installed")
        home = Home(self, cdef, factory, name)
        self.homes[name] = home
        return home

    def instance(self, key: str) -> ComponentInstance:
        try:
            return self._instances[key]
        except KeyError:
            raise CcmError(f"no component instance {key!r}") from None
