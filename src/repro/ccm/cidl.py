"""CIDL — Component Implementation Definition Language (paper §3.2).

"The CCM programming model defines the Component Implementation
Definition Language (CIDL) which is used to describe the implementation
structure of a component and its system requirements: the set of
implementation classes, the abstract persistence state, etc."

We implement the session-composition subset that structures executor
code::

    composition session ChemistryImpl {
        home executor ChemistryHomeExec {
            implements App::ChemistryHome;
            manages ChemistryExec;
        };
    };

Compiling a CIDL unit against the component IDL yields
:class:`CompositionDef` records (which executor class implements which
home/component), and :func:`bind_compositions` registers Python executor
classes into the :class:`~repro.ccm.component.ImplementationRepository`
under deterministic implementation ids — closing the loop from
descriptor text to runnable code."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccm.component import ComponentImpl, ImplementationRepository
from repro.corba.idl.compiler import CompiledIdl
from repro.corba.idl.errors import IdlError, IdlParseError
from repro.corba.idl.lexer import Token, tokenize

#: CIDL-specific words (parsed as identifiers by the shared lexer)
_CIDL_WORDS = ("composition", "session", "service", "process", "entity",
               "executor", "implements", "manages")

LIFECYCLES = ("session", "service", "process", "entity")


class CidlError(IdlError):
    """CIDL compilation failure."""


@dataclass(frozen=True)
class CompositionDef:
    """One compiled composition."""

    name: str
    lifecycle: str           # session | service | process | entity
    home_executor: str       # executor class name for the home
    implements_home: str     # scoped home name from the IDL
    manages_executor: str    # executor class name for the component
    component: str           # scoped component name (via the home)

    @property
    def impl_id(self) -> str:
        """Deterministic implementation id for the repository."""
        return f"CIDL:{self.name}:{self.manages_executor}"


class _CidlParser:
    """Tiny recursive-descent parser sharing the IDL lexer."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Token:
        return self._tokens[min(self._pos, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _error(self, message: str) -> IdlParseError:
        tok = self._peek()
        return IdlParseError(f"{message}, got {tok.value!r}",
                             tok.line, tok.column)

    def _expect_word(self, word: str) -> None:
        tok = self._next()
        if tok.value != word:
            raise self._error(f"expected {word!r}")

    def _expect_punct(self, value: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.value != value:
            raise self._error(f"expected {value!r}")

    def _ident(self) -> str:
        tok = self._next()
        if tok.kind != "ident":
            raise self._error("expected an identifier")
        return tok.value

    def _scoped(self) -> str:
        parts = [self._ident()]
        while self._peek().value == "::":
            self._next()
            parts.append(self._ident())
        return "::".join(parts)

    def parse(self) -> list[dict]:
        out = []
        while self._peek().kind != "eof":
            out.append(self._composition())
        return out

    def _composition(self) -> dict:
        self._expect_word("composition")
        lifecycle = self._next().value
        if lifecycle not in LIFECYCLES:
            raise self._error(
                f"expected a lifecycle category {LIFECYCLES}")
        name = self._ident()
        self._expect_punct("{")
        self._expect_word("home")
        self._expect_word("executor")
        home_exec = self._ident()
        self._expect_punct("{")
        self._expect_word("implements")
        implements = self._scoped()
        self._expect_punct(";")
        self._expect_word("manages")
        manages = self._ident()
        self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        self._expect_punct("}")
        self._expect_punct(";")
        return {"name": name, "lifecycle": lifecycle,
                "home_executor": home_exec, "implements": implements,
                "manages": manages}


def compile_cidl(source: str, idl: CompiledIdl) -> list[CompositionDef]:
    """Compile CIDL text against the component IDL it refers to."""
    raw = _CidlParser(tokenize(source)).parse()
    if not raw:
        raise CidlError("CIDL unit declares no composition")
    out = []
    seen: set[str] = set()
    for decl in raw:
        if decl["name"] in seen:
            raise CidlError(f"duplicate composition {decl['name']!r}")
        seen.add(decl["name"])
        home = idl.home(decl["implements"])  # raises if unknown
        out.append(CompositionDef(
            decl["name"], decl["lifecycle"], decl["home_executor"],
            decl["implements"], decl["manages"], home.manages))
    return out


def bind_compositions(compositions: list[CompositionDef],
                      executors: dict[str, type]) -> dict[str, str]:
    """Bind executor classes to compositions and register them.

    ``executors`` maps the CIDL executor class names (``manages``) to
    Python :class:`ComponentImpl` subclasses.  Returns
    ``{component scoped name: implementation id}`` for use in software
    package descriptors."""
    bound: dict[str, str] = {}
    for comp in compositions:
        cls = executors.get(comp.manages_executor)
        if cls is None:
            raise CidlError(
                f"composition {comp.name!r}: no executor class provided "
                f"for {comp.manages_executor!r} "
                f"(provided: {sorted(executors)})")
        if not (isinstance(cls, type) and issubclass(cls, ComponentImpl)):
            raise CidlError(
                f"{comp.manages_executor!r} must be a ComponentImpl "
                f"subclass")
        ImplementationRepository.register(comp.impl_id, comp.component,
                                          cls)
        bound[comp.component] = comp.impl_id
    return bound
