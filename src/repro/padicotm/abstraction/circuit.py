"""Circuit: the parallel-oriented abstract interface (paper §4.3.2).

A Circuit is a static group of PadicoTM processes with logical ranks and
framed messaging — the abstraction MPI is implemented on.  The backend
is selected automatically:

- all members share a parallel fabric (Myrinet/SCI SAN) → a Madeleine
  channel (**straight** mapping);
- otherwise → a framed mesh over the best distributed fabric with TCP
  costs (**cross-paradigm** mapping: parallel interface on distributed
  hardware);
- all members in one host → loopback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.net.devices import PARALLEL
from repro.padicotm.abstraction.selector import (
    MappingChoice,
    select_group_fabric,
)
from repro.padicotm.arbitration._framed import ANY_SOURCE, FramedGroupTransport
from repro.padicotm.arbitration.madeleine import open_channel
from repro.padicotm.arbitration.sockets import (
    TCP_RECV_OVERHEAD,
    TCP_SEND_OVERHEAD,
)
from repro.sim.kernel import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime

__all__ = ["Circuit", "ANY_SOURCE"]


class _SocketMesh(FramedGroupTransport):
    """Cross-paradigm backend: framed group messaging over TCP links."""

    send_overhead = TCP_SEND_OVERHEAD
    recv_overhead = TCP_RECV_OVERHEAD
    driver = "tcp"

    def __init__(self, runtime: "PadicoRuntime",
                 members: list["PadicoProcess"], fabric: str | None):
        super().__init__(runtime, members, fabric)
        if fabric is not None:
            for p in members:
                p.arbitration.sockets()._ensure_claim(fabric)


class Circuit:
    """Parallel-oriented group communication abstraction."""

    def __init__(self, name: str, backend: FramedGroupTransport,
                 choice: MappingChoice):
        self.name = name
        self._backend = backend
        self.choice = choice
        self.closed = False

    def _check_open(self, op: str) -> None:
        monitor = self.runtime.monitor
        if monitor is not None:
            monitor.on_circuit(self, op)
        if self.closed:
            raise RuntimeError(
                f"Circuit {self.name!r} is closed ({op} after close)")

    # ------------------------------------------------------------------
    # establishment
    # ------------------------------------------------------------------
    @classmethod
    def establish(cls, runtime: "PadicoRuntime",
                  name: str, members: list["PadicoProcess"],
                  fabric: str | None = None) -> "Circuit":
        """Collectively create a circuit over ``members``.

        ``fabric`` forces a specific network (used by ablation benches);
        by default the selector picks the best one.
        """
        hosts = [p.host.name for p in members]
        choice = select_group_fabric(runtime.topology, hosts, PARALLEL,
                                     forced_fabric=fabric)
        if choice.fabric is not None and \
                choice.fabric.technology.paradigm == PARALLEL:
            backend: FramedGroupTransport = open_channel(
                runtime, f"circuit:{name}", members, choice.fabric.name)
        else:
            backend = _SocketMesh(runtime, members, choice.fabric_name)
        circuit = cls(name, backend, choice)
        if runtime.monitor is not None:
            runtime.monitor.on_circuit(circuit, "establish")
        return circuit

    # ------------------------------------------------------------------
    # paradigm API
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._backend.size

    @property
    def runtime(self) -> "PadicoRuntime":
        return self._backend.runtime

    @property
    def members(self) -> list["PadicoProcess"]:
        return self._backend.members

    @property
    def mapping(self) -> str:
        """``straight``, ``cross-paradigm`` or ``loopback``."""
        return self.choice.mapping

    @property
    def fabric_name(self) -> str | None:
        return self.choice.fabric_name

    def rank_of(self, process: "PadicoProcess") -> int:
        return self._backend.rank_of[process.name]

    def send(self, proc: SimProcess, my_rank: int, dst_rank: int,
             payload: Any, nbytes: float) -> None:
        """Send a framed message to ``dst_rank`` (blocking, timed).

        Payloads are forwarded by reference end-to-end (``nbytes``
        drives the timing); see
        :meth:`FramedGroupTransport.send <repro.padicotm.arbitration._framed.FramedGroupTransport.send>`
        for the zero-copy/rendezvous contract."""
        self._check_open("send")
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_span_start("circuit.send", cat="abstraction",
                              nbytes=float(nbytes), dst=dst_rank,
                              mapping=self.mapping)
        try:
            self._backend.send(proc, my_rank, dst_rank, payload, nbytes)
        finally:
            if mon is not None:
                mon.on_span_end("circuit.send")

    def recv(self, proc: SimProcess, my_rank: int,
             source: int = ANY_SOURCE, where=None) -> tuple[int, Any, float]:
        """Blocking selective receive → ``(src_rank, payload, nbytes)``.

        ``where`` optionally filters on the payload (tag matching)."""
        self._check_open("recv")
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_span_start("circuit.recv", cat="abstraction")
        try:
            return self._backend.recv(proc, my_rank, source, where)
        finally:
            if mon is not None:
                mon.on_span_end("circuit.recv")

    def poll(self, my_rank: int, source: int = ANY_SOURCE,
             where=None) -> bool:
        self._check_open("poll")
        return self._backend.poll(my_rank, source, where)

    def wait_message(self, proc: SimProcess, my_rank: int,
                     source: int = ANY_SOURCE,
                     where=None) -> tuple[int, Any, float]:
        """Blocking probe: peek at the next matching message."""
        self._check_open("probe")
        return self._backend.wait_message(proc, my_rank, source, where)

    def close(self) -> None:
        """Retire the circuit: any further traffic is a lifecycle error."""
        monitor = self.runtime.monitor
        if monitor is not None:
            monitor.on_circuit(self, "close")
        self.closed = True

    def deliver_nowait(self, dst_rank: int, src_rank: int, payload: Any,
                       nbytes: float) -> None:
        self._backend.deliver_nowait(dst_rank, src_rank, payload, nbytes)

    def __repr__(self) -> str:
        return (f"<Circuit {self.name} size={self.size} "
                f"{self.mapping} on {self.fabric_name}>")
