"""PadicoTM abstraction layer (paper §4.3.2).

Provides *both* communication paradigms as hardware-independent
interfaces:

- :class:`Circuit` — parallel-oriented: static group, logical ranks,
  framed messages (what MPI builds on);
- :class:`VLink` — distributed-oriented: dynamic connect/accept streams
  (what CORBA's GIOP, SOAP/HTTP, ... build on).

Each interface maps automatically onto the best arbitrated driver for
the hardware actually between the endpoints.  The mapping can be
*straight* (parallel interface on a parallel network) or
*cross-paradigm* (e.g. VLink on Myrinet — the mechanism by which the
paper's omniORB reaches 240 MB/s); the choice is made per endpoint pair
by :mod:`repro.padicotm.abstraction.selector` and is completely
transparent to the middleware above.
"""

from repro.padicotm.abstraction.circuit import ANY_SOURCE, Circuit
from repro.padicotm.abstraction.selector import MappingChoice, select_group_fabric, select_pair_fabric
from repro.padicotm.abstraction.vlink import (
    ConnectionRefusedError,
    VLink,
    VLinkEndpoint,
    VLinkListener,
)

__all__ = [
    "Circuit",
    "ANY_SOURCE",
    "VLink",
    "VLinkListener",
    "VLinkEndpoint",
    "ConnectionRefusedError",
    "MappingChoice",
    "select_pair_fabric",
    "select_group_fabric",
]
