"""VLink: the distributed-oriented abstract interface (paper §4.3.2).

VLink gives middleware the shape of a dynamic stream — listen, connect,
accept, ordered duplex messages — while the actual wire is chosen per
connection by the selector:

- endpoints share a parallel fabric → the stream rides the Madeleine
  subsystem (**cross-paradigm**; this is how a CORBA ORB transparently
  reaches Myrinet speed in Figure 7);
- otherwise → TCP over the best distributed fabric (**straight**);
- same host → loopback.

A per-endpoint ``security_policy`` hook lets the deployment layer charge
encryption cost on insecure wires (paper §2/§6)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from repro.net.devices import DISTRIBUTED
from repro.padicotm.abstraction.selector import (
    CROSS_PARADIGM,
    MappingChoice,
    select_pair_fabric,
)
from repro.padicotm.arbitration.madeleine import (
    MAD_RECV_OVERHEAD,
    MAD_SEND_OVERHEAD,
)
from repro.padicotm.arbitration.sockets import (
    TCP_RECV_OVERHEAD,
    TCP_SEND_OVERHEAD,
)
from repro.sim.kernel import SimProcess
from repro.sim.sync import Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime

#: loopback per-message software cost, seconds
_LOOP_OVERHEAD = 0.5e-6

_EOF = object()


class ConnectionRefusedError(RuntimeError):
    """No VLink listener at the target (process, port)."""


class SecurityPolicy(Protocol):  # pragma: no cover - structural type
    """Deployment-layer hook charging cryptographic CPU cost."""

    def transform_cost(self, nbytes: float, fabric_name: str | None,
                       secure_wire: bool) -> float:
        """Extra per-side CPU seconds for a message of ``nbytes``."""
        ...

    def should_encrypt(self, fabric_name: str | None,
                       secure_wire: bool) -> bool:
        ...


class VLinkListener:
    """Passive VLink endpoint accepting incoming connections."""

    def __init__(self, process: "PadicoProcess", port: str):
        self.process = process
        self.port = port
        self._backlog = Mailbox(process.runtime.kernel)
        self.closed = False

    def accept(self, proc: SimProcess) -> "VLinkEndpoint":
        """Block until a peer connects; returns the server-side end."""
        return self._backlog.get(proc)

    def poll(self) -> bool:
        return not self._backlog.empty

    def close(self) -> None:
        self.closed = True
        key = (self.process.name, self.port)
        self.process.runtime.vlink_listeners.pop(key, None)
        monitor = self.process.runtime.monitor
        if monitor is not None:
            monitor.on_unbind(self.process.name, self.port)


class VLinkEndpoint:
    """One end of an established VLink stream."""

    def __init__(self, runtime: "PadicoRuntime", local: "PadicoProcess",
                 remote: "PadicoProcess", choice: MappingChoice):
        self.runtime = runtime
        self.local = local
        self.remote = remote
        self.choice = choice
        if choice.fabric is None:
            self._send_ovh = self._recv_ovh = _LOOP_OVERHEAD
        elif choice.mapping == CROSS_PARADIGM:
            self._send_ovh, self._recv_ovh = (MAD_SEND_OVERHEAD,
                                              MAD_RECV_OVERHEAD)
        else:
            self._send_ovh, self._recv_ovh = (TCP_SEND_OVERHEAD,
                                              TCP_RECV_OVERHEAD)
        self._inbox = Mailbox(runtime.kernel)
        self.peer: "VLinkEndpoint | None" = None
        self.closed = False
        # the process-wide default policy applies unless overridden
        self.security_policy: SecurityPolicy | None = \
            getattr(local, "security_policy", None)
        #: bytes this end sent through an encrypting policy (telemetry)
        self.encrypted_bytes: float = 0.0
        self.sent_bytes: float = 0.0
        if runtime.monitor is not None:
            runtime.monitor.on_vlink(self, "create")

    # ------------------------------------------------------------------
    @classmethod
    def make_pair(cls, runtime: "PadicoRuntime", a: "PadicoProcess",
                  b: "PadicoProcess", choice: MappingChoice
                  ) -> tuple["VLinkEndpoint", "VLinkEndpoint"]:
        ea = cls(runtime, a, b, choice)
        eb = cls(runtime, b, a, choice)
        ea.peer, eb.peer = eb, ea
        if runtime.monitor is not None:
            runtime.monitor.on_vlink(ea, "connect")
            runtime.monitor.on_vlink(eb, "connect")
        return ea, eb

    @property
    def mapping(self) -> str:
        return self.choice.mapping

    @property
    def fabric_name(self) -> str | None:
        return self.choice.fabric_name

    @property
    def secure_wire(self) -> bool:
        """Is the underlying wire physically trusted (SAN/loopback)?"""
        if self.choice.fabric is None:
            return True
        return self.choice.fabric.technology.secure

    @property
    def driver(self) -> str:
        """Which arbitration subsystem carries this stream's bytes."""
        if self.choice.fabric is None or \
                self.local.host.name == self.remote.host.name:
            return "loopback"
        return "madeleine" if self.choice.mapping == CROSS_PARADIGM \
            else "tcp"

    # ------------------------------------------------------------------
    def send(self, proc: SimProcess, payload: Any, nbytes: float) -> None:
        """Send one message down the stream (blocking, timed).

        ``payload`` is opaque and forwarded *by reference* — the timed
        transfer is driven entirely by the separate ``nbytes`` float.
        In particular a zero-copy ``(header, WireBuffer)`` GIOP frame
        rides the whole VLink/driver path without any of its segments
        being joined or copied; the receiver gets the same object the
        sender passed in.  Senders that reuse payload memory must wait
        until the receiver is done with it (rendezvous discipline)."""
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_vlink(self, "send")
            mon.on_span_start("vlink.send", cat="abstraction",
                              nbytes=float(nbytes), mapping=self.mapping,
                              fabric=self.fabric_name or "loopback")
        try:
            if self.closed:
                raise BrokenPipeError("VLink endpoint is closed")
            extra = 0.0
            if self.security_policy is not None:
                extra = self.security_policy.transform_cost(
                    nbytes, self.fabric_name, self.secure_wire)
                if self.security_policy.should_encrypt(self.fabric_name,
                                                       self.secure_wire):
                    self.encrypted_bytes += nbytes
            if mon is not None:
                mon.on_span_start("arbitration.send", cat="arbitration",
                                  driver=self.driver)
                mon.on_driver_io(self.driver, "send", float(nbytes))
            try:
                proc.sleep(self._send_ovh + extra)
                if self.choice.fabric is None or \
                        self.local.host.name == self.remote.host.name:
                    self.runtime.local_copy(proc, nbytes)
                else:
                    self.runtime.network.transfer(
                        proc, self.local.host.name, self.remote.host.name,
                        nbytes, self.choice.fabric.name)
            finally:
                if mon is not None:
                    mon.on_span_end("arbitration.send")
            self.sent_bytes += nbytes
            self.peer._inbox.put_nowait((payload, nbytes, extra))
        finally:
            if mon is not None:
                mon.on_span_end("vlink.send")

    def recv(self, proc: SimProcess,
             timeout: float | None = None) -> tuple[Any, float] | None:
        """Blocking receive → ``(payload, nbytes)``, or None on EOF.

        With ``timeout``, raises :class:`repro.sim.sync.SimTimeout`."""
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_vlink(self, "recv")
            mon.on_span_start("vlink.recv", cat="abstraction")
        try:
            item = self._inbox.get(proc, timeout=timeout)
            if item is _EOF:
                return None
            payload, nbytes, sender_extra = item
            if mon is not None:
                mon.on_span_start("arbitration.recv", cat="arbitration",
                                  driver=self.driver)
                mon.on_driver_io(self.driver, "recv", float(nbytes))
            try:
                # decryption costs the receiver what encryption cost the
                # sender
                proc.sleep(self._recv_ovh + sender_extra)
            finally:
                if mon is not None:
                    mon.on_span_end("arbitration.recv")
            return payload, nbytes
        finally:
            if mon is not None:
                mon.on_span_end("vlink.recv")

    def poll(self) -> bool:
        if self.runtime.monitor is not None:
            self.runtime.monitor.on_vlink(self, "poll")
        return not self._inbox.empty

    def close(self) -> None:
        """Close: signal EOF to the peer and to local readers."""
        if self.runtime.monitor is not None:
            self.runtime.monitor.on_vlink(self, "close")
        if not self.closed:
            self.closed = True
            if self.peer is not None:
                self.peer._inbox.put_nowait(_EOF)
            # unblock threads of our own process waiting in recv()
            self._inbox.put_nowait(_EOF)

    def __repr__(self) -> str:
        return (f"<VLinkEndpoint {self.local.name}->{self.remote.name} "
                f"{self.mapping} on {self.fabric_name}>")


class VLink:
    """Factory namespace for the distributed-oriented abstraction."""

    @staticmethod
    def listen(process: "PadicoProcess", port: str) -> VLinkListener:
        """Bind a listener on ``process`` under ``port``."""
        runtime = process.runtime
        key = (process.name, port)
        if key in runtime.vlink_listeners:
            raise OSError(f"VLink port {port!r} already bound in "
                          f"{process.name!r}")
        listener = VLinkListener(process, port)
        runtime.vlink_listeners[key] = listener
        if runtime.monitor is not None:
            runtime.monitor.on_bind(process.name, port, listener)
        return listener

    @staticmethod
    def connect(proc: SimProcess, process: "PadicoProcess",
                target_process: str, port: str,
                fabric: str | None = None) -> VLinkEndpoint:
        """Connect to ``target_process:port``; blocks for the handshake.

        ``fabric`` forces a wire (ablation benches); the default lets the
        selector choose, which is the paper's intended behaviour.
        """
        runtime = process.runtime
        target = runtime.process(target_process)
        choice = select_pair_fabric(
            runtime.topology, process.host.name, target.host.name,
            DISTRIBUTED, forced_fabric=fabric)
        if choice.fabric is not None:
            if choice.mapping == CROSS_PARADIGM:
                process.arbitration.madeleine()._ensure_claim(
                    choice.fabric.name)
            else:
                process.arbitration.sockets()._ensure_claim(
                    choice.fabric.name)
        listener = runtime.vlink_listeners.get((target_process, port))
        _hop(proc, runtime, process, target, choice)  # SYN
        if listener is None or listener.closed:
            raise ConnectionRefusedError(
                f"{target_process}:{port} is not listening")
        local_end, remote_end = VLinkEndpoint.make_pair(
            runtime, process, target, choice)
        listener._backlog.put_nowait(remote_end)
        _hop(proc, runtime, process, target, choice)  # ACK
        return local_end


def _hop(proc: SimProcess, runtime: "PadicoRuntime",
         src: "PadicoProcess", dst: "PadicoProcess",
         choice: MappingChoice) -> None:
    if choice.fabric is None or src.host.name == dst.host.name:
        runtime.local_copy(proc, 0)
    else:
        runtime.network.transfer(proc, src.host.name, dst.host.name, 0,
                                 choice.fabric.name)
