"""Automatic fabric/driver selection (paper §4.3.2).

"The abstraction layer is responsible for automatically and dynamically
choosing the best available service from the low-level arbitration layer
according to the available hardware."

Policy: among fabrics that connect the endpoints (all pairs, for a
group), pick the highest-bandwidth one.  The resulting *mapping kind*
records whether the abstract paradigm matches the hardware paradigm
(straight) or not (cross-paradigm)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

# paradigm names are compared as plain strings from NetworkTechnology
from repro.net.topology import Fabric, NoRouteError, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

STRAIGHT = "straight"
CROSS_PARADIGM = "cross-paradigm"
LOOPBACK_MAPPING = "loopback"


@dataclass(frozen=True)
class MappingChoice:
    """Outcome of automatic selection for one endpoint set."""

    fabric: Fabric | None  # None: all endpoints share a host (loopback)
    mapping: str           # straight | cross-paradigm | loopback

    @property
    def fabric_name(self) -> str | None:
        return self.fabric.name if self.fabric else None


def _mapping_kind(abstract_paradigm: str, fabric: Fabric | None) -> str:
    if fabric is None:
        return LOOPBACK_MAPPING
    hw = fabric.technology.paradigm
    return STRAIGHT if hw == abstract_paradigm else CROSS_PARADIGM


def select_pair_fabric(topology: Topology, src_host: str, dst_host: str,
                       abstract_paradigm: str,
                       forced_fabric: str | None = None) -> MappingChoice:
    """Choose the fabric for one endpoint pair.

    ``abstract_paradigm`` is the paradigm of the *interface* requesting
    the mapping (``"parallel"`` for Circuit, ``"distributed"`` for
    VLink); it only affects the reported mapping kind, never the choice —
    per the paper, the interface never knows nor chooses the hardware.
    """
    if forced_fabric is not None:
        fab = topology.fabrics[forced_fabric]
        fab.route(src_host, dst_host)  # raises NoRouteError if unusable
        return MappingChoice(fab, _mapping_kind(abstract_paradigm, fab))
    if src_host == dst_host:
        return MappingChoice(None, LOOPBACK_MAPPING)
    candidates = topology.fabrics_connecting(src_host, dst_host)
    if not candidates:
        raise NoRouteError(f"no fabric connects {src_host!r} and {dst_host!r}")
    fab = candidates[0]  # fabrics_connecting sorts best-bandwidth first
    return MappingChoice(fab, _mapping_kind(abstract_paradigm, fab))


def select_group_fabric(topology: Topology, hosts: list[str],
                        abstract_paradigm: str,
                        forced_fabric: str | None = None) -> MappingChoice:
    """Choose one fabric connecting *every* pair of a process group."""
    distinct = sorted(set(hosts))
    if forced_fabric is not None:
        fab = topology.fabrics[forced_fabric]
        _check_full_connectivity(fab, distinct)
        return MappingChoice(fab, _mapping_kind(abstract_paradigm, fab))
    if len(distinct) <= 1:
        return MappingChoice(None, LOOPBACK_MAPPING)
    ref = distinct[0]
    for fab in topology.fabrics_connecting(ref, distinct[1]):
        try:
            _check_full_connectivity(fab, distinct)
        except NoRouteError:
            continue
        return MappingChoice(fab, _mapping_kind(abstract_paradigm, fab))
    raise NoRouteError(f"no single fabric connects all of {distinct}")


def _check_full_connectivity(fabric: Fabric, hosts: list[str]) -> None:
    ref = hosts[0]
    for other in hosts[1:]:
        fabric.route(ref, other)  # fabric graphs are connected components
