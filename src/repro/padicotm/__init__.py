"""PadicoTM — the paper's portable communication runtime (§4.3).

PadicoTM decouples the interface middleware systems *see* from the
interface actually used at low level, through three layers:

1. **Arbitration** (:mod:`repro.padicotm.arbitration`): the unique entry
   point to networking resources.  One subsystem per low-level paradigm
   — a Madeleine-like library for parallel networks (Myrinet, SCI) and a
   socket stack for LAN/WAN — plus a core that multiplexes NIC access,
   detects driver conflicts (BIP vs GM style) and enforces a single
   thread policy across middleware.
2. **Abstraction** (:mod:`repro.padicotm.abstraction`): *both* a
   parallel-oriented interface (:class:`Circuit`: logical ranks,
   messages) and a distributed-oriented one (:class:`VLink`: dynamic
   streams), each automatically mapped — straight or cross-paradigm —
   onto the best arbitrated driver for the actual hardware between the
   endpoints.
3. **Personality** (:mod:`repro.padicotm.personality`): thin syntax
   adapters (Madeleine, FastMessages on Circuit; BSD sockets, POSIX AIO
   on VLink) so legacy middleware links against familiar APIs with no
   source change.

Middleware systems (MPI, CORBA ORBs, SOAP, ...) are dynamically loaded
*modules* (:mod:`repro.padicotm.modules`) of a :class:`PadicoProcess`.
"""

from repro.padicotm.runtime import PadicoProcess, PadicoRuntime
from repro.padicotm.arbitration.core import (
    ArbitrationConflictError,
    ArbitrationCore,
    ThreadPolicyError,
)
from repro.padicotm.abstraction.circuit import Circuit
from repro.padicotm.abstraction.vlink import (
    ConnectionRefusedError,
    VLink,
    VLinkEndpoint,
)
from repro.padicotm.modules import (
    ModuleError,
    ModuleRegistry,
    PadicoModule,
)

__all__ = [
    "PadicoRuntime",
    "PadicoProcess",
    "ArbitrationCore",
    "ArbitrationConflictError",
    "ThreadPolicyError",
    "Circuit",
    "VLink",
    "VLinkEndpoint",
    "ConnectionRefusedError",
    "PadicoModule",
    "ModuleRegistry",
    "ModuleError",
]
