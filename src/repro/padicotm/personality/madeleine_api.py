"""Madeleine personality: pack/unpack message building on Circuit.

Real Madeleine builds a message from several *packed* segments between
``mad_begin_packing`` and ``mad_end_packing``; the receiver mirrors with
``begin_unpacking``/``unpack``/``end_unpacking``.  The adapter only
translates this syntax onto one framed Circuit message."""

from __future__ import annotations

from typing import Any

from repro.padicotm.abstraction.circuit import ANY_SOURCE, Circuit
from repro.sim.kernel import SimProcess


class MadConnection:
    """An in-flight message being packed or unpacked."""

    def __init__(self, remote_rank: int):
        self.remote_rank = remote_rank
        self.segments: list[tuple[Any, float]] = []
        self._cursor = 0

    @property
    def total_bytes(self) -> float:
        return sum(n for _, n in self.segments)


class MadPersonality:
    """Madeleine API veneer for one rank of a Circuit."""

    def __init__(self, circuit: Circuit, my_rank: int):
        self.circuit = circuit
        self.my_rank = my_rank

    # -- sender side ----------------------------------------------------
    def begin_packing(self, dst_rank: int) -> MadConnection:
        return MadConnection(dst_rank)

    def pack(self, conn: MadConnection, data: Any, nbytes: float) -> None:
        conn.segments.append((data, nbytes))

    def end_packing(self, proc: SimProcess, conn: MadConnection) -> None:
        """Flush: the whole packed message travels as one frame."""
        self.circuit.send(proc, self.my_rank, conn.remote_rank,
                          conn.segments, conn.total_bytes)

    # -- receiver side ---------------------------------------------------
    def begin_unpacking(self, proc: SimProcess,
                        source: int = ANY_SOURCE) -> MadConnection:
        src, segments, _n = self.circuit.recv(proc, self.my_rank, source)
        conn = MadConnection(src)
        conn.segments = list(segments)
        return conn

    def unpack(self, conn: MadConnection) -> Any:
        if conn._cursor >= len(conn.segments):
            raise IndexError("no more segments to unpack")
        data, _n = conn.segments[conn._cursor]
        conn._cursor += 1
        return data

    def end_unpacking(self, conn: MadConnection) -> None:
        if conn._cursor != len(conn.segments):
            raise RuntimeError(
                f"message not fully unpacked: {conn._cursor} of "
                f"{len(conn.segments)} segments consumed")
