"""BSD socket personality: the classic socket API on VLink.

Legacy distributed middleware (ORBs, SOAP stacks) is written against
``socket``/``bind``/``listen``/``accept``/``connect``/``send``/``recv``.
This veneer maps those names one-to-one onto VLink, which is exactly how
PadicoTM runs unmodified ORBs over whatever wire the selector picks."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.padicotm.abstraction.vlink import VLink, VLinkEndpoint, VLinkListener
from repro.sim.kernel import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess


class BsdSocket:
    """A socket in one of three roles: fresh, listening, or connected."""

    def __init__(self, process: "PadicoProcess"):
        self.process = process
        self._listener: VLinkListener | None = None
        self._endpoint: VLinkEndpoint | None = None
        self._port: str | None = None

    # -- server side ------------------------------------------------------
    def bind(self, port: str) -> None:
        if self._port is not None:
            raise OSError("socket already bound")
        self._port = port

    def listen(self) -> None:
        if self._port is None:
            raise OSError("bind before listen")
        self._listener = VLink.listen(self.process, self._port)

    def accept(self, proc: SimProcess) -> "BsdSocket":
        if self._listener is None:
            raise OSError("listen before accept")
        conn = BsdSocket(self.process)
        conn._endpoint = self._listener.accept(proc)
        return conn

    # -- client side -------------------------------------------------------
    def connect(self, proc: SimProcess, address: tuple[str, str]) -> None:
        if self._endpoint is not None:
            raise OSError("socket already connected")
        target_process, port = address
        self._endpoint = VLink.connect(proc, self.process,
                                       target_process, port)

    # -- data --------------------------------------------------------------
    def send(self, proc: SimProcess, data: bytes) -> int:
        ep = self._require_endpoint()
        mon = self.process.runtime.monitor
        if mon is not None:
            mon.on_span_start("bsd.send", cat="personality",
                              nbytes=float(len(data)))
        try:
            ep.send(proc, data, float(len(data)))
        finally:
            if mon is not None:
                mon.on_span_end("bsd.send")
        return len(data)

    def recv(self, proc: SimProcess) -> bytes:
        """Next message's bytes; ``b""`` on EOF (BSD convention)."""
        ep = self._require_endpoint()
        mon = self.process.runtime.monitor
        if mon is not None:
            mon.on_span_start("bsd.recv", cat="personality")
        try:
            item = ep.recv(proc)
        finally:
            if mon is not None:
                mon.on_span_end("bsd.recv")
        if item is None:
            return b""
        payload, _n = item
        return payload

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
        if self._endpoint is not None:
            self._endpoint.close()

    # -- internals -----------------------------------------------------------
    def _require_endpoint(self) -> VLinkEndpoint:
        if self._endpoint is None:
            raise OSError("socket is not connected")
        return self._endpoint

    @property
    def endpoint(self) -> VLinkEndpoint | None:
        """The underlying VLink endpoint (for white-box assertions)."""
        return self._endpoint


class BsdSocketPersonality:
    """Factory bound to one PadicoTM process."""

    def __init__(self, process: "PadicoProcess"):
        self.process = process

    def socket(self) -> BsdSocket:
        return BsdSocket(self.process)
