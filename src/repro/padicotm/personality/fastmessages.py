"""FastMessages personality: handler-dispatch messaging on Circuit.

Illinois Fast Messages associates each message with a *handler id*; the
receiver calls ``FM_extract`` to drain pending messages, running the
registered handler for each."""

from __future__ import annotations

from typing import Any, Callable

from repro.padicotm.abstraction.circuit import Circuit
from repro.sim.kernel import SimProcess


class FMPersonality:
    """FastMessages API veneer for one rank of a Circuit."""

    def __init__(self, circuit: Circuit, my_rank: int):
        self.circuit = circuit
        self.my_rank = my_rank
        self._handlers: dict[int, Callable] = {}

    def register_handler(self, handler_id: int,
                         fn: Callable[[int, Any], None]) -> None:
        """Register ``fn(src_rank, data)`` for ``handler_id``."""
        if handler_id in self._handlers:
            raise ValueError(f"handler {handler_id} already registered")
        self._handlers[handler_id] = fn

    def fm_send(self, proc: SimProcess, dst_rank: int, handler_id: int,
                data: Any, nbytes: float) -> None:
        if handler_id not in self._handlers and dst_rank == self.my_rank:
            raise LookupError(f"no handler {handler_id} registered")
        self.circuit.send(proc, self.my_rank, dst_rank,
                          (handler_id, data), nbytes)

    def fm_extract(self, proc: SimProcess, max_messages: int = 1) -> int:
        """Drain up to ``max_messages`` (blocking for the first); runs
        handlers; returns how many were processed."""
        processed = 0
        while processed < max_messages:
            if processed > 0 and not self.circuit.poll(self.my_rank):
                break
            src, (handler_id, data), _n = self.circuit.recv(proc, self.my_rank)
            try:
                handler = self._handlers[handler_id]
            except KeyError:
                raise LookupError(
                    f"message with unregistered handler {handler_id}") \
                    from None
            handler(src, data)
            processed += 1
        return processed
