"""POSIX asynchronous I/O personality on VLink.

``aio_write``/``aio_read`` return immediately with a control block; the
operation proceeds on a helper thread (a Marcel thread in the paper's
runtime); ``aio_suspend`` blocks until completion and ``aio_return``
yields the result, mirroring POSIX.2 Aio semantics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.padicotm.abstraction.vlink import VLinkEndpoint
from repro.sim.kernel import SimProcess
from repro.sim.sync import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

#: aio_error states (POSIX uses errno values; we use symbolic ones)
IN_PROGRESS = "EINPROGRESS"
DONE = "0"
FAILED = "EIO"


class AioControlBlock:
    """The aiocb: tracks one asynchronous operation."""

    def __init__(self, kernel) -> None:
        self._event = SimEvent(kernel)
        self.state = IN_PROGRESS
        self.result: Any = None
        self.error: Exception | None = None

    def _complete(self, result: Any, error: Exception | None) -> None:
        self.result = result
        self.error = error
        self.state = FAILED if error else DONE
        self._event.set()


class AioPersonality:
    """Aio veneer bound to one PadicoTM process."""

    def __init__(self, process: "PadicoProcess"):
        self.process = process

    def aio_write(self, endpoint: VLinkEndpoint, data: Any,
                  nbytes: float) -> AioControlBlock:
        """Queue an asynchronous send; returns immediately."""
        cb = AioControlBlock(self.process.runtime.kernel)

        def worker(proc: SimProcess) -> None:
            try:
                endpoint.send(proc, data, nbytes)
            except Exception as exc:  # noqa: BLE001 - surfaced via aiocb
                cb._complete(None, exc)
            else:
                cb._complete(nbytes, None)

        self.process.spawn(worker, name="aio-write", daemon=True)
        return cb

    def aio_read(self, endpoint: VLinkEndpoint) -> AioControlBlock:
        """Queue an asynchronous receive; returns immediately."""
        cb = AioControlBlock(self.process.runtime.kernel)

        def worker(proc: SimProcess) -> None:
            try:
                item = endpoint.recv(proc)
            except Exception as exc:  # noqa: BLE001 - surfaced via aiocb
                cb._complete(None, exc)
            else:
                cb._complete(item, None)

        self.process.spawn(worker, name="aio-read", daemon=True)
        return cb

    @staticmethod
    def aio_error(cb: AioControlBlock) -> str:
        return cb.state

    @staticmethod
    def aio_suspend(proc: SimProcess, cbs: list[AioControlBlock]) -> None:
        """Block until at least one of ``cbs`` completes."""
        while all(cb.state == IN_PROGRESS for cb in cbs):
            # wait on the first in-progress block; broadcast semantics
            for cb in cbs:
                if cb.state == IN_PROGRESS:
                    cb._event.wait(proc)
                    break

    @staticmethod
    def aio_return(cb: AioControlBlock) -> Any:
        if cb.state == IN_PROGRESS:
            raise RuntimeError("operation still in progress")
        if cb.error is not None:
            raise cb.error
        return cb.result
