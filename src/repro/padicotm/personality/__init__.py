"""PadicoTM personality layer (paper §4.3.3).

Personalities are *thin adapters which adapt a generic API to make it
look like another close API* — no protocol adaptation, no paradigm
translation, only syntax.  We implement the four the paper names:

- :class:`MadPersonality` — Madeleine's pack/unpack API on Circuit;
- :class:`FMPersonality` — FastMessages' handler-dispatch API on Circuit;
- :class:`BsdSocketPersonality` — BSD sockets on VLink;
- :class:`AioPersonality` — POSIX.2 asynchronous I/O on VLink.
"""

from repro.padicotm.personality.aio import AioControlBlock, AioPersonality
from repro.padicotm.personality.bsd import BsdSocket, BsdSocketPersonality
from repro.padicotm.personality.fastmessages import FMPersonality
from repro.padicotm.personality.madeleine_api import MadConnection, MadPersonality

__all__ = [
    "MadPersonality",
    "MadConnection",
    "FMPersonality",
    "BsdSocketPersonality",
    "BsdSocket",
    "AioPersonality",
    "AioControlBlock",
]
