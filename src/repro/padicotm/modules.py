"""Dynamically loadable PadicoTM modules (paper §4.3.4).

"The middleware systems, like any other PadicoTM module, are dynamically
loadable.  Thus, any combination of them may be used at the same time
and can be dynamically changed."

A :class:`PadicoModule` is a named unit with dependencies, an optional
thread-policy requirement and load/unload hooks.  Middleware
implementations (MPI, the CORBA ORBs, SOAP, the JVM, HLA) subclass it;
the registry enforces dependency order, duplicate detection, and —
together with the arbitration core — surface the conflicts that motivate
PadicoTM when a *legacy* (non-cooperative) module grabs resources
directly."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess


class ModuleError(RuntimeError):
    """Module lifecycle violation (missing dependency, duplicate...)."""


class PadicoModule:
    """Base class for loadable modules.

    Class attributes subclasses may override:

    - ``name`` / ``version`` — identity;
    - ``requires`` — names of modules that must already be loaded;
    - ``thread_policy`` — threading package the middleware was written
      against (``None`` if it has no opinion);
    - ``cooperative`` — True (default) when the module goes through
      PadicoTM for resources; False models an unported legacy build that
      grabs NICs and thread policies directly.
    """

    name: str = "module"
    version: str = "1.0"
    requires: tuple[str, ...] = ()
    thread_policy: str | None = None
    cooperative: bool = True

    def on_load(self, process: "PadicoProcess") -> None:
        """Hook run when the module is loaded into a process."""

    def on_unload(self, process: "PadicoProcess") -> None:
        """Hook run when the module is unloaded."""

    def __repr__(self) -> str:
        return f"<PadicoModule {self.name}-{self.version}>"


class ModuleRegistry:
    """Per-process module table with dependency management."""

    def __init__(self, process: "PadicoProcess"):
        self.process = process
        self._loaded: dict[str, PadicoModule] = {}

    def load(self, module: PadicoModule) -> PadicoModule:
        """Load ``module``; raises :class:`ModuleError` on violations and
        propagates arbitration conflicts from the module's hooks."""
        if module.name in self._loaded:
            raise ModuleError(f"module {module.name!r} already loaded in "
                              f"{self.process.name!r}")
        missing = [r for r in module.requires if r not in self._loaded]
        if missing:
            raise ModuleError(
                f"module {module.name!r} requires {missing} "
                f"(loaded: {sorted(self._loaded)})")
        if module.thread_policy is not None:
            self.process.arbitration.install_thread_policy(
                module.thread_policy, owner=module.name,
                via_padico=module.cooperative)
        module.on_load(self.process)
        self._loaded[module.name] = module
        return module

    def unload(self, name: str) -> None:
        if name not in self._loaded:
            raise ModuleError(f"module {name!r} is not loaded")
        dependents = [m.name for m in self._loaded.values()
                      if name in m.requires]
        if dependents:
            raise ModuleError(
                f"cannot unload {name!r}: required by {dependents}")
        module = self._loaded.pop(name)
        module.on_unload(self.process)
        self.process.arbitration.release_claims(name)

    def is_loaded(self, name: str) -> bool:
        return name in self._loaded

    def get(self, name: str) -> PadicoModule:
        try:
            return self._loaded[name]
        except KeyError:
            raise ModuleError(f"module {name!r} is not loaded in "
                              f"{self.process.name!r}") from None

    def names(self) -> list[str]:
        return list(self._loaded)
