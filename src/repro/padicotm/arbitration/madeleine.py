"""Madeleine-like parallel-network subsystem.

Madeleine (Aumage et al.) is the paper's low-level library for
parallel-oriented networks.  Its unit of communication is a *channel*: a
static group of processes, each with a logical rank, bound to one
physical network.  We reproduce that shape: channels are opened over a
parallel fabric, carry framed messages between ranks, and cost a small
per-message software overhead on each side (calibrated so MPI's one-way
latency over Myrinet lands at the paper's 11 µs: 1 µs send + 9 µs wire
+ 1 µs receive)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.devices import PARALLEL
from repro.padicotm.arbitration._framed import ANY_SOURCE, FramedGroupTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime

__all__ = ["ANY_SOURCE", "MAD_SEND_OVERHEAD", "MAD_RECV_OVERHEAD",
           "MadeleineChannel", "MadeleineSubsystem", "open_channel"]

#: Per-message software cost of the Madeleine user-level fast path.
MAD_SEND_OVERHEAD = 1.0e-6
MAD_RECV_OVERHEAD = 1.0e-6


class MadeleineChannel(FramedGroupTransport):
    """A static communication channel over one parallel fabric."""

    send_overhead = MAD_SEND_OVERHEAD
    recv_overhead = MAD_RECV_OVERHEAD
    driver = "madeleine"

    def __init__(self, runtime: "PadicoRuntime", channel_id: str,
                 members: list["PadicoProcess"], fabric: str):
        tech = runtime.topology.fabrics[fabric].technology
        if tech.paradigm != PARALLEL:
            raise ValueError(
                f"Madeleine drives parallel networks; {fabric!r} is "
                f"{tech.paradigm}-oriented (use the socket subsystem)")
        super().__init__(runtime, members, fabric)
        self.id = channel_id


class MadeleineSubsystem:
    """Per-process handle on the Madeleine arbitration subsystem.

    NIC claims are made cooperatively through the arbitration core the
    first time a channel touches a fabric — Madeleine picks the fabric's
    native exclusive driver (BIP/GM for Myrinet, SISCI for SCI) but
    multiplexes it, so every middleware in the process can share it.
    """

    def __init__(self, process: "PadicoProcess"):
        self.process = process
        self._claimed: set[str] = set()

    def _ensure_claim(self, fabric: str) -> None:
        if fabric in self._claimed:
            return
        tech = self.process.runtime.topology.fabrics[fabric].technology
        driver = tech.exclusive_drivers[0] if tech.exclusive_drivers \
            else "mad-generic"
        self.process.arbitration.claim_nic(
            fabric, driver, owner="PadicoTM/madeleine", cooperative=True)
        self._claimed.add(fabric)


def open_channel(runtime: "PadicoRuntime", channel_id: str,
                 members: list["PadicoProcess"],
                 fabric: str) -> MadeleineChannel:
    """Open (or fetch) a Madeleine channel spanning ``members``.

    Channel creation is collective and static, like real Madeleine; the
    same id returns the same channel object to every member.
    """
    registry = getattr(runtime, "_mad_channels", None)
    if registry is None:
        registry = {}
        runtime._mad_channels = registry
    if channel_id in registry:
        chan = registry[channel_id]
        if [p.name for p in chan.members] != [p.name for p in members] or \
                chan.fabric != fabric:
            raise ValueError(
                f"channel {channel_id!r} already open with a different "
                f"member list or fabric")
        return chan
    chan = MadeleineChannel(runtime, channel_id, members, fabric)
    for p in members:
        subsystem = p.arbitration.madeleine()
        subsystem._ensure_claim(fabric)
    registry[channel_id] = chan
    return chan
