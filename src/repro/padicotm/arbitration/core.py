"""Arbitration core: multiplexed NIC access + unified thread policy.

The paper (§4.3.1) lists the conflict sources this layer exists to
solve: hardware with exclusive access (Myrinet through BIP), limited
non-shareable resources (SCI mappings), incompatible drivers (BIP vs GM
on the same NIC), and middleware shipping incompatible multithreading
policies.  We model each of these as explicit, testable rules:

- a *claim* on a (fabric, driver) pair is either **cooperative** (made
  through PadicoTM's multiplexer) or **direct** (legacy middleware
  grabbing the NIC itself);
- two cooperative claims always coexist (that is the point of PadicoTM);
- a direct claim conflicts with any other claim on the same fabric when
  the driver is exclusive, and with a *different* driver on the same
  fabric always (BIP vs GM);
- the first thread policy installed in a process wins; installing a
  different one raises :class:`ThreadPolicyError` — unless it is
  installed through PadicoTM, which adapts middleware to the resident
  Marcel policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

MARCEL_POLICY = "marcel"


class ArbitrationConflictError(RuntimeError):
    """Two resource claims cannot coexist (exclusive NIC drivers...)."""


class ThreadPolicyError(RuntimeError):
    """A middleware tried to install an incompatible thread policy."""


@dataclass(frozen=True)
class NicClaim:
    """A recorded claim on a host NIC."""

    fabric: str
    driver: str
    owner: str
    cooperative: bool  # True when made through the PadicoTM multiplexer


class ArbitrationCore:
    """Per-process resource multiplexer and conflict detector."""

    def __init__(self, process: "PadicoProcess"):
        self.process = process
        self.claims: list[NicClaim] = []
        self.thread_policy: str | None = None
        self.thread_policy_owner: str | None = None
        self._subsystems: dict[str, object] = {}

    # ------------------------------------------------------------------
    # NIC claims
    # ------------------------------------------------------------------
    def claim_nic(self, fabric: str, driver: str, owner: str,
                  cooperative: bool) -> NicClaim:
        """Record a claim on ``fabric`` with ``driver``; may conflict.

        ``cooperative=False`` models legacy middleware opening the NIC
        directly; it is rejected whenever anything else already uses the
        fabric (and vice versa), reproducing the paper's "in the worst
        case, more than one middleware system cannot coexist".
        """
        topo = self.process.runtime.topology
        if fabric not in topo.fabrics:
            raise ValueError(f"unknown fabric {fabric!r}")
        if self.process.host.name not in {
                h for h, hh in topo.hosts.items() if fabric in hh.fabrics}:
            raise ValueError(
                f"host {self.process.host.name!r} has no NIC on {fabric!r}")
        tech = topo.fabrics[fabric].technology
        exclusive = driver in tech.exclusive_drivers

        for prior in self.claims:
            if prior.fabric != fabric:
                continue
            if prior.cooperative and cooperative:
                continue  # both multiplexed by PadicoTM: fine
            if prior.driver != driver:
                raise ArbitrationConflictError(
                    f"incompatible drivers on {fabric!r}: {prior.owner!r} "
                    f"holds {prior.driver!r}, {owner!r} wants {driver!r}")
            if exclusive:
                raise ArbitrationConflictError(
                    f"driver {driver!r} demands exclusive access to "
                    f"{fabric!r} but it is already claimed by {prior.owner!r}")
        claim = NicClaim(fabric, driver, owner, cooperative)
        self.claims.append(claim)
        monitor = self.process.runtime.monitor
        if monitor is not None:
            monitor.on_claim(self.process.name, claim)
        return claim

    def release_claims(self, owner: str) -> int:
        """Drop every claim held by ``owner``; returns how many."""
        kept = [c for c in self.claims if c.owner != owner]
        dropped = len(self.claims) - len(kept)
        self.claims = kept
        monitor = self.process.runtime.monitor
        if monitor is not None and dropped:
            monitor.on_release(self.process.name, owner, dropped)
        return dropped

    # ------------------------------------------------------------------
    # thread policy
    # ------------------------------------------------------------------
    def install_thread_policy(self, policy: str, owner: str,
                              via_padico: bool = True) -> str:
        """Install (or adapt to) a multithreading policy.

        Through PadicoTM, any request is adapted to the resident Marcel
        policy.  A direct install of a second, different policy raises.
        Returns the policy actually in force.
        """
        if self.thread_policy is None:
            effective = MARCEL_POLICY if via_padico else policy
            self.thread_policy = effective
            self.thread_policy_owner = owner
            return effective
        if via_padico or policy == self.thread_policy:
            return self.thread_policy
        raise ThreadPolicyError(
            f"{owner!r} wants thread policy {policy!r} but "
            f"{self.thread_policy_owner!r} already installed "
            f"{self.thread_policy!r}")

    # ------------------------------------------------------------------
    # subsystems
    # ------------------------------------------------------------------
    def madeleine(self) -> "object":
        """The parallel-paradigm subsystem (lazily created)."""
        if "madeleine" not in self._subsystems:
            from repro.padicotm.arbitration.madeleine import MadeleineSubsystem
            self._subsystems["madeleine"] = MadeleineSubsystem(self.process)
        return self._subsystems["madeleine"]

    def sockets(self) -> "object":
        """The distributed-paradigm subsystem (lazily created)."""
        if "sockets" not in self._subsystems:
            from repro.padicotm.arbitration.sockets import SocketSubsystem
            self._subsystems["sockets"] = SocketSubsystem(self.process)
        return self._subsystems["sockets"]
