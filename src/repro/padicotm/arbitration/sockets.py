"""Socket subsystem: distributed-oriented links (LAN, WAN, loopback).

Plain-socket semantics as the paper uses them: dynamic, connection
oriented, stream-of-messages.  The per-message software overhead models
the kernel TCP stack (noticeably more expensive than the user-level
Madeleine fast path)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.net.devices import DISTRIBUTED
from repro.net.topology import NoRouteError
from repro.sim.kernel import SimProcess
from repro.sim.sync import Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime

#: Per-message kernel TCP stack cost, seconds (each side).
TCP_SEND_OVERHEAD = 5.0e-6
TCP_RECV_OVERHEAD = 5.0e-6

_EOF = object()


class ConnectionRefusedError(RuntimeError):
    """No listener at the target (process, port)."""


class SocketListener:
    """A passive socket: accepts incoming connections on a port."""

    def __init__(self, subsystem: "SocketSubsystem", port: str):
        self.subsystem = subsystem
        self.port = port
        self._backlog = Mailbox(subsystem.process.runtime.kernel)
        self.closed = False

    def accept(self, proc: SimProcess) -> "SocketConnection":
        """Block until a peer connects; returns the server-side end."""
        conn = self._backlog.get(proc)
        return conn

    def close(self) -> None:
        self.closed = True
        key = (self.subsystem.process.name, self.port)
        self.subsystem.process.runtime.socket_listeners.pop(key, None)


class SocketConnection:
    """One end of an established duplex connection."""

    def __init__(self, runtime: "PadicoRuntime", local: "PadicoProcess",
                 remote: "PadicoProcess", fabric: str | None):
        self.runtime = runtime
        self.local = local
        self.remote = remote
        self.fabric = fabric  # None means same-host loopback
        self._inbox = Mailbox(runtime.kernel)
        self.peer: "SocketConnection | None" = None
        self.closed = False

    @classmethod
    def make_pair(cls, runtime: "PadicoRuntime", a: "PadicoProcess",
                  b: "PadicoProcess", fabric: str | None
                  ) -> tuple["SocketConnection", "SocketConnection"]:
        ca = cls(runtime, a, b, fabric)
        cb = cls(runtime, b, a, fabric)
        ca.peer, cb.peer = cb, ca
        return ca, cb

    @property
    def driver(self) -> str:
        return "loopback" if self.fabric is None else "tcp"

    def send(self, proc: SimProcess, payload: Any, nbytes: float) -> None:
        """Send one message; blocks for TCP overhead + transfer time."""
        if self.closed:
            raise BrokenPipeError("socket is closed")
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_span_start("arbitration.send", cat="arbitration",
                              driver=self.driver)
            mon.on_driver_io(self.driver, "send", float(nbytes))
        try:
            proc.sleep(TCP_SEND_OVERHEAD)
            if self.fabric is None:
                self.runtime.local_copy(proc, nbytes)
            else:
                self.runtime.network.transfer(
                    proc, self.local.host.name, self.remote.host.name,
                    nbytes, self.fabric)
        finally:
            if mon is not None:
                mon.on_span_end("arbitration.send")
        self.peer._inbox.put_nowait((payload, nbytes))

    def recv(self, proc: SimProcess) -> tuple[Any, float] | None:
        """Blocking receive; returns ``(payload, nbytes)`` or None on EOF."""
        item = self._inbox.get(proc)
        if item is _EOF:
            return None
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_span_start("arbitration.recv", cat="arbitration",
                              driver=self.driver)
            mon.on_driver_io(self.driver, "recv", float(item[1]))
        try:
            proc.sleep(TCP_RECV_OVERHEAD)
        finally:
            if mon is not None:
                mon.on_span_end("arbitration.recv")
        return item

    def poll(self) -> bool:
        return not self._inbox.empty

    def close(self) -> None:
        """Half-close: signal EOF to the peer."""
        if not self.closed:
            self.closed = True
            self.peer._inbox.put_nowait(_EOF)


class SocketSubsystem:
    """Per-process handle on the socket arbitration subsystem."""

    def __init__(self, process: "PadicoProcess"):
        self.process = process
        self._claimed: set[str] = set()

    # ------------------------------------------------------------------
    def listen(self, port: str) -> SocketListener:
        runtime = self.process.runtime
        key = (self.process.name, port)
        if key in runtime.socket_listeners:
            raise OSError(f"port {port!r} already bound in {self.process.name!r}")
        listener = SocketListener(self, port)
        runtime.socket_listeners[key] = listener
        return listener

    def connect(self, proc: SimProcess, target_process: str, port: str,
                fabric: str | None = None) -> SocketConnection:
        """Open a connection; blocks for the handshake round-trip."""
        runtime = self.process.runtime
        target = runtime.process(target_process)
        same_host = target.host.name == self.process.host.name
        if fabric is None and not same_host:
            fabric = self._pick_fabric(target)
        if fabric is not None:
            self._ensure_claim(fabric)
        listener = runtime.socket_listeners.get((target_process, port))
        # SYN: one-way latency to the target
        self._hop(proc, target, fabric)
        if listener is None or listener.closed:
            raise ConnectionRefusedError(
                f"{target_process}:{port} is not listening")
        local_end, remote_end = SocketConnection.make_pair(
            runtime, self.process, target, fabric)
        listener._backlog.put_nowait(remote_end)
        # SYN/ACK: one-way latency back
        self._hop(proc, target, fabric)
        return local_end

    # ------------------------------------------------------------------
    def _pick_fabric(self, target: "PadicoProcess") -> str:
        topo = self.process.runtime.topology
        for fab in topo.fabrics_connecting(self.process.host.name,
                                           target.host.name):
            if fab.technology.paradigm == DISTRIBUTED:
                return fab.name
        raise NoRouteError(
            f"no distributed-oriented fabric between "
            f"{self.process.host.name!r} and {target.host.name!r}")

    def _hop(self, proc: SimProcess, target: "PadicoProcess",
             fabric: str | None) -> None:
        if fabric is None:
            self.process.runtime.local_copy(proc, 0)
        else:
            self.process.runtime.network.transfer(
                proc, self.process.host.name, target.host.name, 0, fabric)

    def _ensure_claim(self, fabric: str) -> None:
        if fabric in self._claimed:
            return
        self.process.arbitration.claim_nic(
            fabric, "tcp", owner="PadicoTM/sockets", cooperative=True)
        self._claimed.add(fabric)
