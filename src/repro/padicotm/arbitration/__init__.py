"""PadicoTM arbitration layer (paper §4.3.1).

The arbitration layer is the *unique entry point* to low-level
resources: network interfaces, threading policy, polling loops.  It
contains one subsystem per low-level paradigm — :class:`MadeleineSubsystem`
for parallel-oriented networks and :class:`SocketSubsystem` for
distributed-oriented links — and a core that multiplexes access and
detects the conflicts the paper motivates (exclusive Myrinet drivers,
incompatible thread policies)."""

from repro.padicotm.arbitration.core import (
    ArbitrationConflictError,
    ArbitrationCore,
    NicClaim,
    ThreadPolicyError,
)
from repro.padicotm.arbitration.madeleine import MadeleineChannel, MadeleineSubsystem
from repro.padicotm.arbitration.sockets import (
    SocketConnection,
    SocketListener,
    SocketSubsystem,
)

__all__ = [
    "ArbitrationCore",
    "ArbitrationConflictError",
    "ThreadPolicyError",
    "NicClaim",
    "MadeleineSubsystem",
    "MadeleineChannel",
    "SocketSubsystem",
    "SocketListener",
    "SocketConnection",
]
