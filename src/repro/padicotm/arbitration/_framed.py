"""Shared framed-message group transport.

Both the Madeleine channel (parallel paradigm) and the cross-paradigm
socket mesh behind :class:`~repro.padicotm.abstraction.circuit.Circuit`
move framed messages between the ranks of a static process group; they
differ only in the fabric they drive and the per-message software cost.
This base class carries the common mechanics: rank bookkeeping, timed
sends (same-host shared-memory copy vs network transfer), selective
receives."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.kernel import SimProcess
from repro.sim.sync import MatchQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime

#: Receive from any rank.
ANY_SOURCE = -1


class FramedGroupTransport:
    """Timed, framed messaging between the ranks of a process group."""

    #: software cost per message on the send side, seconds
    send_overhead: float = 0.0
    #: software cost per message on the receive side, seconds
    recv_overhead: float = 0.0
    #: arbitration subsystem label for observability spans
    driver: str = "framed"

    def __init__(self, runtime: "PadicoRuntime",
                 members: list["PadicoProcess"], fabric: str | None):
        self.runtime = runtime
        self.fabric = fabric  # None: every pair is same-host (loopback)
        self.members = list(members)
        self.rank_of = {p.name: i for i, p in enumerate(members)}
        if len(self.rank_of) != len(members):
            raise ValueError("duplicate process in group member list")
        self._inbox = [MatchQueue(runtime.kernel) for _ in members]

    @property
    def size(self) -> int:
        return len(self.members)

    def _driver(self, local: bool) -> str:
        return "loopback" if local or self.fabric is None else self.driver

    def send(self, proc: SimProcess, src_rank: int, dst_rank: int,
             payload: Any, nbytes: float) -> None:
        """Send one framed message; blocks for overhead + transfer.

        ``payload`` is opaque and delivered by reference (zero-copy):
        the timed transfer is driven by the ``nbytes`` float alone, so
        staged ndarrays and ``WireBuffer`` segment lists cross the
        transport without being joined or copied.  Large-message senders
        must not mutate the payload until the receiver consumes it
        (rendezvous discipline enforced at the MPI layer)."""
        src = self.members[src_rank]
        dst = self.members[dst_rank]
        local = src.host.name == dst.host.name
        mon = self.runtime.monitor
        if mon is not None:
            mon.on_span_start("arbitration.send", cat="arbitration",
                              driver=self._driver(local))
            mon.on_driver_io(self._driver(local), "send", float(nbytes))
        try:
            if self.send_overhead:
                proc.sleep(self.send_overhead)
            if local or self.fabric is None:
                self.runtime.local_copy(proc, nbytes)
            else:
                self.runtime.network.transfer(
                    proc, src.host.name, dst.host.name, nbytes, self.fabric)
        finally:
            if mon is not None:
                mon.on_span_end("arbitration.send")
        self._inbox[dst_rank].put((src_rank, payload, nbytes))

    @staticmethod
    def _predicate(source: int, where) -> "Any":
        if source == ANY_SOURCE and where is None:
            return None

        def match(item) -> bool:
            if source != ANY_SOURCE and item[0] != source:
                return False
            return where is None or where(item[1])

        return match

    def recv(self, proc: SimProcess, my_rank: int,
             source: int = ANY_SOURCE, where=None) -> tuple[int, Any, float]:
        """Blocking selective receive → ``(src_rank, payload, nbytes)``.

        ``where`` optionally filters on the payload (MPI tag matching).
        """
        item = self._inbox[my_rank].get(proc, self._predicate(source, where))
        mon = self.runtime.monitor
        if mon is not None:
            drv = self._driver(self.fabric is None)
            mon.on_span_start("arbitration.recv", cat="arbitration",
                              driver=drv)
            mon.on_driver_io(drv, "recv", float(item[2]))
        try:
            if self.recv_overhead:
                proc.sleep(self.recv_overhead)
        finally:
            if mon is not None:
                mon.on_span_end("arbitration.recv")
        return item

    def poll(self, my_rank: int, source: int = ANY_SOURCE,
             where=None) -> bool:
        """Non-blocking probe for a pending message."""
        return self._inbox[my_rank].poll(self._predicate(source, where))

    def wait_message(self, proc: SimProcess, my_rank: int,
                     source: int = ANY_SOURCE,
                     where=None) -> tuple[int, Any, float]:
        """Block until a matching message is pending, without consuming
        it (probe semantics); returns a peek at the envelope."""
        return self._inbox[my_rank].wait_match(
            proc, self._predicate(source, where))

    def deliver_nowait(self, dst_rank: int, src_rank: int, payload: Any,
                       nbytes: float) -> None:
        """Zero-time local delivery (used by kernel-context callbacks)."""
        self._inbox[dst_rank].put((src_rank, payload, nbytes))
