"""Grid runtime: the simulated world and per-process PadicoTM instances.

:class:`PadicoRuntime` owns the simulation kernel, the topology and the
flow network, and tracks every :class:`PadicoProcess` (one simulated OS
process running PadicoTM on some host).  A PadicoProcess hosts
middleware modules, its arbitration core, and any number of simulated
threads (the paper's Marcel threads)."""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.net.devices import LOOPBACK
from repro.net.flows import FlowNetwork
from repro.net.topology import Host, Topology
from repro.sim.kernel import SimKernel, SimProcess


class _MonitorFan:
    """Fans runtime monitor hooks out to every attached monitor.

    The instrumented layers call duck-typed ``on_*`` methods on
    ``runtime.monitor``; the fan forwards each call to the attached
    monitors that implement it, in attach order (deterministic), so a
    typestate monitor and a trace recorder compose without knowing about
    each other.  Dispatchers are cached per hook name on first use.
    """

    def __init__(self, members: list):
        self._members = members  # shared with the runtime; mutated in place

    def __getattr__(self, name: str) -> Callable:
        if not name.startswith("on_"):
            raise AttributeError(name)
        members = self._members

        def dispatch(*args: Any, **kwargs: Any) -> None:
            for member in members:
                fn = getattr(member, name, None)
                if fn is not None:
                    fn(*args, **kwargs)

        dispatch.__name__ = name
        self.__dict__[name] = dispatch  # cache for subsequent lookups
        return dispatch


class PadicoRuntime:
    """The simulated grid: kernel + network + process registry.

    Typical setup::

        runtime = PadicoRuntime(topology)
        p0 = runtime.create_process("a0", "server")
        p1 = runtime.create_process("a1", "client")
        ... load modules, spawn threads ...
        runtime.kernel.run()
    """

    def __init__(self, topology: Topology, kernel: SimKernel | None = None,
                 incremental: bool = True, sharded: bool = True,
                 shard_threshold: int | None = None,
                 vec_threshold: int | None = None):
        self.kernel = kernel or SimKernel()
        self.topology = topology
        #: ``incremental=False`` forces from-scratch max-min re-solves
        #: (differential testing; results are bit-for-bit identical);
        #: ``sharded``/``shard_threshold``/``vec_threshold`` plumb the
        #: hierarchical site-sharded solver tier straight through to
        #: the flow network (see repro.net.flows)
        self.network = FlowNetwork(self.kernel, topology,
                                   incremental=incremental,
                                   sharded=sharded,
                                   shard_threshold=shard_threshold,
                                   vec_threshold=vec_threshold)
        self.processes: dict[str, PadicoProcess] = {}
        #: socket listener registry: (process_name, port) -> SocketListener
        self.socket_listeners: dict[tuple[str, str], Any] = {}
        #: VLink listener registry: (process_name, port) -> VLinkListener
        self.vlink_listeners: dict[tuple[str, str], Any] = {}
        #: attached monitors (typestate, observability recorders, ...);
        #: the list identity is shared with the fan, so attach/detach
        #: mutate it in place
        self._monitors: list[Any] = []
        self._monitor_fan = _MonitorFan(self._monitors)

    # ------------------------------------------------------------------
    # observation: monitors and trace recorders
    # ------------------------------------------------------------------
    @property
    def monitor(self) -> Any:
        """The duck-typed hook surface the instrumented layers call.

        ``None`` when nothing is attached (every call site guards on
        ``is not None``, so the uninstalled cost is one attribute load);
        otherwise a fan that forwards each ``on_*`` call to the attached
        monitors that implement it, in attach order.
        """
        return self._monitor_fan if self._monitors else None

    @monitor.setter
    def monitor(self, value: Any) -> None:
        # legacy compat: assigning the bare attribute replaces the whole
        # monitor set (None clears it)
        warnings.warn(
            "assigning PadicoRuntime.monitor directly is deprecated; use "
            "observe()/unobserve()", DeprecationWarning, stacklevel=2)
        for member in list(self._monitors):
            self.unobserve(member)
        if value is not None:
            self.observe(value)

    def observe(self, monitor: Any) -> Any:
        """Attach a monitor/recorder to this runtime; returns it.

        Calls ``monitor.on_attach(self)`` first if the monitor defines
        it (a :class:`repro.obs.TraceRecorder` uses this to bind the
        kernel clock and install its scheduler tracer).
        """
        if any(member is monitor for member in self._monitors):
            raise ValueError(f"monitor {monitor!r} is already attached")
        hook = getattr(monitor, "on_attach", None)
        if hook is not None:
            hook(self)
        self._monitors.append(monitor)
        self._sync_monitor()
        return monitor

    def unobserve(self, monitor: Any) -> None:
        """Detach a monitor attached with :meth:`observe`.  Idempotent."""
        for i, member in enumerate(self._monitors):
            if member is monitor:
                del self._monitors[i]
                break
        else:
            return
        hook = getattr(monitor, "on_detach", None)
        if hook is not None:
            hook(self)
        self._sync_monitor()

    def _sync_monitor(self) -> None:
        # layers that cannot see the runtime (the flow network lives
        # below it) get the current hook surface pushed down
        self.network.monitor = self.monitor

    @contextmanager
    def trace(self) -> Iterator[Any]:
        """``with runtime.trace() as tr:`` — record a scoped trace.

        Attaches a fresh :class:`repro.obs.TraceRecorder` for the body
        and detaches it on exit; the recorder stays usable afterwards
        (export, metrics, span inspection).
        """
        from repro.obs import TraceRecorder  # lazy: obs is optional

        recorder = TraceRecorder()
        self.observe(recorder)
        try:
            yield recorder
        finally:
            self.unobserve(recorder)

    def create_process(self, host: str | Host, name: str) -> "PadicoProcess":
        """Boot a PadicoTM process on ``host`` under a unique ``name``."""
        hostname = host.name if isinstance(host, Host) else host
        if hostname not in self.topology.hosts:
            raise ValueError(f"unknown host {hostname!r}")
        if name in self.processes:
            raise ValueError(f"duplicate process name {name!r}")
        proc = PadicoProcess(self, self.topology.hosts[hostname], name)
        self.processes[name] = proc
        return proc

    def process(self, name: str) -> "PadicoProcess":
        try:
            return self.processes[name]
        except KeyError:
            raise ValueError(f"no such PadicoTM process {name!r}") from None

    def run(self, until: float | None = None) -> float:
        return self.kernel.run(until=until)

    def shutdown(self) -> None:
        self.kernel.shutdown()

    def __enter__(self) -> "PadicoRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # intra-host data movement (both endpoints on the same machine)
    # ------------------------------------------------------------------
    def local_copy(self, proc: SimProcess, nbytes: float) -> None:
        """Charge the cost of a same-host message (shared-memory copy)."""
        proc.sleep(LOOPBACK.latency + nbytes / LOOPBACK.bandwidth)


class PadicoProcess:
    """One simulated OS process running the PadicoTM runtime.

    Middleware modules are loaded into :attr:`modules`; network access
    goes through :attr:`arbitration`; simulated threads are spawned with
    :meth:`spawn`.
    """

    def __init__(self, runtime: PadicoRuntime, host: Host, name: str):
        # imports here to avoid a cycle (arbitration needs runtime types)
        from repro.padicotm.arbitration.core import ArbitrationCore
        from repro.padicotm.modules import ModuleRegistry

        self.runtime = runtime
        self.host = host
        self.name = name
        self.arbitration = ArbitrationCore(self)
        self.modules = ModuleRegistry(self)
        #: default VLink security policy (see repro.deploy.security)
        self.security_policy = None
        self._threads: list[SimProcess] = []

    def spawn(self, fn: Callable, *args: Any, name: str | None = None,
              daemon: bool = False, delay: float = 0.0) -> SimProcess:
        """Start a simulated thread inside this process.

        The target runs as ``fn(sim_process, *args)``; by PadicoTM
        convention middleware passes this PadicoProcess explicitly where
        needed.
        """
        label = f"{self.name}/{name or f'thr{len(self._threads)}'}"
        thread = self.runtime.kernel.spawn(fn, *args, name=label,
                                           daemon=daemon, delay=delay)
        # tag the thread with its hosting OS process: middleware uses
        # this to enforce process isolation (a stub created by one
        # process's ORB cannot be driven from another process's threads)
        thread.padico_process = self
        self._threads.append(thread)
        return thread

    @property
    def threads(self) -> list[SimProcess]:
        return list(self._threads)

    def __repr__(self) -> str:
        return f"<PadicoProcess {self.name} on {self.host.name}>"
