"""Setup shim: enables legacy editable installs (`pip install -e .
--no-use-pep517`) on offline environments lacking the `wheel` package."""

from setuptools import setup

setup()
