#!/usr/bin/env python
"""The paper's §2 motivating application: coupling a parallel chemistry
code with a parallel transport code through GridCCM.

- the **chemistry** code is a 4-rank SPMD MPI program owning the
  chemical density field: it integrates a mass-conserving reaction
  (species A → B) and a diffusion term whose stencil needs MPI halo
  exchanges between the chemistry ranks;
- the **transport** code is a 2-node GridCCM parallel component: its
  ``advect`` operation is declared parallel with a block-distributed
  argument, and internally performs upwind advection with halo
  exchanges over *its own* MPI world;
- each coupling step, every chemistry rank invokes ``advect`` with its
  local block; the GridCCM layer redistributes 4 blocks → 2 blocks
  node-to-node, the transport nodes compute, and the concatenated
  result comes back — no master bottleneck anywhere.

The script verifies that total mass (A + B) is conserved through the
coupled simulation and reports virtual-time cost per coupling step.

Run:  python examples/code_coupling.py
"""

import numpy as np

from repro.ccm import ComponentImpl
from repro.core import GridCcmCompiler, ParallelClient, ParallelComponent, ParallelismDescriptor
from repro.corba import OMNIORB4, Orb, compile_idl
from repro.core.distribution import BlockDistribution
from repro.mpi import SUM, create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module Coupling {
    typedef sequence<double> Field;
    interface Transport {
        Field advect(in Field rho, in double velocity, in double dt,
                     in double dx);
        string description();
    };
    component TransportCode {
        provides Transport flow;
    };
    home TransportHome manages TransportCode {};
};
"""

PARALLELISM = """
<parallelism component="Coupling::TransportCode">
  <port name="flow">
    <operation name="advect">
      <argument name="rho" distribution="block"/>
      <result policy="concat"/>
    </operation>
  </port>
</parallelism>
"""

N = 1200          # global grid points
DX = 1.0 / N
DT = 2e-4
VELOCITY = 0.8
DIFFUSION = 5e-5
RATE = 0.3        # A -> B reaction rate
STEPS = 5


class TransportImpl(ComponentImpl):
    """SPMD upwind advection on the transport component's own nodes."""

    def description(self):
        return f"upwind transport on {self.grid_size} nodes"

    def advect(self, rho, velocity, dt, dx):
        comm = self.mpi
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        # periodic halo exchange between the transport nodes (their MPI)
        halo = comm.sendrecv(float(rho[-1]), dest=right, source=left)
        upwind = np.concatenate(([halo], rho))
        flux = velocity * upwind  # upwind for velocity > 0
        out = rho - dt / dx * (flux[1:] - flux[:-1])
        return out


def chemistry_step(comm, a, b):
    """Reaction + diffusion on the chemistry ranks (their own MPI)."""
    # mass-conserving reaction A -> B
    da = RATE * DT * a
    a = a - da
    b = b + da
    # diffusion of A with periodic halo exchange among chemistry ranks
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    halo_l = comm.sendrecv(float(a[-1]), dest=right, source=left)
    halo_r = comm.sendrecv(float(a[0]), dest=left, source=right)
    padded = np.concatenate(([halo_l], a, [halo_r]))
    a = a + DIFFUSION * DT / DX ** 2 * np.diff(padded, 2)
    return a, b


def main() -> None:
    topo = Topology()
    build_cluster(topo, "h", 6)  # 2 transport hosts + 4 chemistry hosts
    rt = PadicoRuntime(topo)

    transport_procs = [rt.create_process(f"h{i}", f"transport{i}")
                       for i in range(2)]
    transport = ParallelComponent.create(
        rt, "transport", transport_procs, IDL, PARALLELISM, TransportImpl,
        profile=OMNIORB4)
    url = transport.proxy_url("flow")

    chem_procs = [rt.create_process(f"h{2 + i}", f"chem{i}")
                  for i in range(4)]
    chem_world = create_world(rt, "chemistry", chem_procs)

    report = {}

    def chemistry_main(proc, comm):
        idl = compile_idl(IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(PARALLELISM)).compile()
        orb = Orb(chem_procs[comm.rank], OMNIORB4, idl)
        flow = ParallelClient.attach(orb, plan, "flow", url, comm=comm)

        dist = BlockDistribution(comm.size, N)
        x = np.arange(N) * DX
        gaussian = np.exp(-((x - 0.3) ** 2) / 0.002)
        a = gaussian[dist.start(comm.rank):dist.end(comm.rank)].copy()
        b = np.zeros_like(a)
        mass0 = comm.allreduce(float(a.sum() + b.sum()), SUM)

        t0 = comm.Wtime()
        for _step in range(STEPS):
            a, b = chemistry_step(comm, a, b)
            full_a = flow.advect(a, VELOCITY, DT, DX)
            a = full_a[dist.start(comm.rank):dist.end(comm.rank)].copy()
        elapsed = comm.Wtime() - t0

        mass1 = comm.allreduce(float(a.sum() + b.sum()), SUM)
        reacted = comm.allreduce(float(b.sum()), SUM)
        if comm.rank == 0:
            report.update(mass0=mass0, mass1=mass1, reacted=reacted,
                          elapsed=elapsed,
                          description=flow.description())

    spmd(chem_world, chemistry_main)
    rt.run()
    rt.shutdown()

    drift = abs(report["mass1"] - report["mass0"]) / report["mass0"]
    print(f"transport component : {report['description']}")
    print(f"chemistry ranks     : {chem_world.size}")
    print(f"coupling steps      : {STEPS}")
    print(f"initial mass (A+B)  : {report['mass0']:.6f}")
    print(f"final mass (A+B)    : {report['mass1']:.6f}  "
          f"(relative drift {drift:.2e})")
    print(f"A converted to B    : {report['reacted']:.6f}")
    print(f"virtual time / step : {report['elapsed'] / STEPS * 1e3:.3f} ms")
    assert drift < 1e-12, "mass must be conserved by the coupled scheme"
    print("code coupling OK")


if __name__ == "__main__":
    main()
