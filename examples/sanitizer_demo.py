"""sim-san tour: catch a data race with both access sites, fix it, and
turn a schedule-dependent result into a seed-stamped reproducer.

The cooperative kernel runs one process at a time, so unsynchronised
shared state *happens* to work under the canonical schedule — exactly
the bug class that bites first on a real grid.  sim-san makes it fail
here instead: the race detector flags the missing happens-before edge,
and seeded schedule exploration replays the divergent interleaving
bit-for-bit.  See docs/SANITIZER.md for the full guide.

Run:  PYTHONPATH=src python examples/sanitizer_demo.py
"""

from repro.sanitizer import Sanitizer, explore_schedules
from repro.sim.kernel import SimKernel
from repro.sim.sync import Mailbox, SimLock


# ----------------------------------------------------------------------
# 1. a data race, reported with BOTH access sites
# ----------------------------------------------------------------------
def racy_counter():
    """Two workers wake at the same instant and read-modify-write a
    shared dict with no lock: a textbook lost update."""
    with SimKernel() as kernel:
        san = Sanitizer(kernel)
        stats = san.tracked({"hits": 0}, label="stats")

        def worker(p, ident):
            p.sleep(0.5)  # both wake at t=0.5 — no ordering between them
            tmp = stats["hits"]       # read
            p.yield_()                # the other worker runs here
            stats["hits"] = tmp + 1   # write based on a stale read

        for ident in range(2):
            kernel.spawn(worker, ident, name=f"worker-{ident}")
        kernel.run()
        san.uninstall()
        return san


def locked_counter():
    """The same workload with a SimLock: acquire/release builds the
    happens-before edge and the report comes back clean."""
    with SimKernel() as kernel:
        san = Sanitizer(kernel)
        lock = SimLock(kernel)
        stats = san.tracked({"hits": 0}, label="stats")

        def worker(p, ident):
            p.sleep(0.5)
            lock.acquire(p)
            tmp = stats["hits"]
            p.yield_()
            stats["hits"] = tmp + 1
            lock.release(p)

        for ident in range(2):
            kernel.spawn(worker, ident, name=f"worker-{ident}")
        kernel.run()
        san.uninstall()
        return san


# ----------------------------------------------------------------------
# 2. schedule exploration: divergence is a seed-stamped reproducer
# ----------------------------------------------------------------------
def order_sensitive_scenario(kernel):
    """Three workers wake at the same instant and append to a list: the
    result IS the wake order, so it diverges across seeds."""
    order = []

    def worker(p, ident):
        p.sleep(1.0)
        order.append(ident)

    for ident in range(3):
        kernel.spawn(worker, ident, name=f"w{ident}")
    kernel.run()
    return tuple(order)


def pipelined_scenario(kernel):
    """The synchronised version: items flow through a Mailbox and the
    consumer sorts — schedule-invariant under every seed."""
    box = Mailbox(kernel)
    collected = []

    def producer(p, ident):
        p.sleep(1.0)
        box.put(p, ident)

    def consumer(p):
        for _ in range(3):
            collected.append(box.get(p))

    for ident in range(3):
        kernel.spawn(producer, ident, name=f"p{ident}")
    kernel.spawn(consumer, name="consumer")
    kernel.run()
    return tuple(sorted(collected))


def main():
    print("=" * 68)
    print("1. happens-before race detection")
    print("=" * 68)
    san = racy_counter()
    print(f"races found: {len(san.races)}  (both access sites below)\n")
    print(san.report())

    print()
    print("same workload under a SimLock:")
    san = locked_counter()
    print(f"  races found: {len(san.races)}  — the lock edge orders the "
          f"accesses")

    print()
    print("=" * 68)
    print("2. seeded schedule exploration")
    print("=" * 68)
    report = explore_schedules(order_sensitive_scenario, seeds=5)
    print("order-sensitive scenario:")
    print(report.render())
    if not report.deterministic:
        seed = report.divergent[0].seed
        print(f"-> diverges; replay exactly with SimKernel(seed={seed})")

    print()
    print("mailbox-pipelined scenario:")
    report = explore_schedules(pipelined_scenario, seeds=5)
    print(report.render())
    print(f"-> {len(report.runs)} seeds bit-identical: "
          f"{report.deterministic}")


if __name__ == "__main__":
    main()
