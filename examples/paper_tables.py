#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

A convenience front-end over the benchmark harness for readers who want
the paper-vs-measured story without pytest:

- Figure 7 (bandwidth vs message size, all middleware),
- the §4.4 latency table,
- the §4.4 concurrency result,
- Figure 8 (GridCCM n→n),
- the §4.4 Fast-Ethernet container scaling.

Run from the repository root:  python examples/paper_tables.py
(The full sweep takes a few seconds of wall time; all reported numbers
are virtual-clock measurements.)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.harness import (  # noqa: E402 (path setup above)
    FIG7_SIZES,
    concurrent_sharing_mbps,
    corba_bandwidth_curve,
    corba_one_way_latency_us,
    gridccm_n_to_n,
    mpi_bandwidth_curve,
    mpi_one_way_latency_us,
)
from repro.corba import MICO, OMNIORB3, OMNIORB4, ORBACUS  # noqa: E402
from repro.corba.profiles import OPENCCM_JAVA  # noqa: E402


def _size_label(s: int) -> str:
    if s < 1024:
        return f"{s}B"
    if s < 1024 ** 2:
        return f"{s // 1024}KB"
    return f"{s // 1024 ** 2}MB"


def figure7() -> None:
    print("=== Figure 7 — bandwidth (MB/s) on top of PadicoTM ===")
    series = [
        ("omniORB-3.0.2", corba_bandwidth_curve(OMNIORB3), 240),
        ("omniORB-4.0.0", corba_bandwidth_curve(OMNIORB4), 240),
        ("Mico-2.3.7", corba_bandwidth_curve(MICO), 55),
        ("ORBacus-4.0.5", corba_bandwidth_curve(ORBACUS), 63),
        ("MPICH/Madeleine", mpi_bandwidth_curve(), 240),
        ("TCP/Ethernet-100", corba_bandwidth_curve(OMNIORB4,
                                                   lan_only=True), 11.2),
    ]
    header = f"{'series':18s}" + "".join(
        f"{_size_label(s):>9s}" for s in FIG7_SIZES) + f"{'paper':>9s}"
    print(header)
    for name, curve, paper in series:
        row = f"{name:18s}" + "".join(
            f"{curve[s]:9.1f}" for s in FIG7_SIZES) + f"{paper:9.1f}"
        print(row)
    print()


def latency_table() -> None:
    print("=== §4.4 — one-way latency (µs) over Myrinet-2000 ===")
    rows = [("MPICH/Madeleine", mpi_one_way_latency_us(), 11)]
    for profile, paper in ((OMNIORB3, 20), (OMNIORB4, 19),
                           (ORBACUS, 54), (MICO, 62)):
        rows.append((profile.key, corba_one_way_latency_us(profile), paper))
    print(f"{'middleware':18s}{'measured':>10s}{'paper':>8s}")
    for name, measured, paper in rows:
        print(f"{name:18s}{measured:10.1f}{paper:8d}")
    print()


def concurrency() -> None:
    print("=== §4.4 — concurrent CORBA + MPI on one Myrinet NIC ===")
    shares = concurrent_sharing_mbps()
    for name, mbps in sorted(shares.items()):
        print(f"{name:8s}: {mbps:6.1f} MB/s   (paper: 120)")
    print()


def figure8() -> None:
    print("=== Figure 8 — GridCCM n→n over Myrinet-2000 (MicoCCM) ===")
    paper = {1: (62, 43), 2: (93, 76), 4: (123, 144), 8: (148, 280)}
    print(f"{'nodes':8s}{'lat µs':>9s}{'paper':>7s}"
          f"{'bw MB/s':>10s}{'paper':>7s}")
    for n, (plat, pbw) in paper.items():
        r = gridccm_n_to_n(n)
        print(f"{f'{n} to {n}':8s}{r['latency_us']:9.1f}{plat:7d}"
              f"{r['aggregate_mbps']:10.1f}{pbw:7d}")
    print()


def fast_ethernet() -> None:
    print("=== §4.4 — GridCCM aggregate bandwidth on Fast-Ethernet ===")
    paper = {"MicoCCM": {1: 9.8, 8: 78.4}, "OpenCCM": {1: 8.3, 8: 66.4}}
    for label, profile in (("MicoCCM", MICO), ("OpenCCM", OPENCCM_JAVA)):
        for n in (1, 8):
            r = gridccm_n_to_n(n, profile=profile, procs_per_host=1,
                               ints_per_rank=250_000, lan_only=True)
            print(f"{label:8s} {n} to {n}: {r['aggregate_mbps']:6.1f} MB/s"
                  f"   (paper: {paper[label][n]})")
    print()


def main() -> None:
    figure7()
    latency_table()
    concurrency()
    figure8()
    fast_ethernet()
    print("all paper tables regenerated")


if __name__ == "__main__":
    main()
