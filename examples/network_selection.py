#!/usr/bin/env python
"""PadicoTM's transparent network selection (paper §2 "communication
flexibility" and §4.3.2).

The same CORBA client/server pair is deployed three ways; the code never
mentions a network, yet:

1. both on one cluster → the VLink stream rides **Myrinet** through the
   Madeleine subsystem (cross-paradigm mapping) at ~240 MB/s;
2. across two sites → the stream takes the **WAN** at ~4 MB/s;
3. forced onto the cluster's **Fast-Ethernet** (the ablation lever) →
   ~11 MB/s.

Run:  python examples/network_selection.py
"""

import numpy as np

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.net import Topology, build_cluster, build_two_site_grid
from repro.padicotm import PadicoRuntime
from repro.padicotm.abstraction.vlink import VLink

IDL = """
module Net {
    typedef sequence<octet> Blob;
    interface Sink { unsigned long push(in Blob data); };
};
"""

SIZE = 8_000_000  # 8 MB payload


def run_pair(rt, server_host, client_host, label, fabric=None):
    server = rt.create_process(server_host, f"{label}-server")
    client = rt.create_process(client_host, f"{label}-client")
    s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

    class Sink(s_orb.servant_base("Net::Sink")):
        def push(self, data):
            return len(data)

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    out = {}

    def main(proc):
        if fabric is not None:
            # the ablation lever: force the wire instead of letting the
            # selector choose (the ORB itself still never knows)
            ep = VLink.connect(proc, client, server.name, s_orb.port,
                               fabric=fabric)
            from repro.corba.orb import _ClientConnection
            c_orb._connections[(server.name, s_orb.port)] = \
                _ClientConnection(c_orb, ep)
        stub = c_orb.string_to_object(url)
        stub.push(b"")  # warm-up: connection + selection happen here
        conn = c_orb._connections[(server.name, s_orb.port)]
        out["fabric"] = conn.endpoint.fabric_name
        out["mapping"] = conn.endpoint.mapping
        t0 = rt.kernel.now
        assert stub.push(bytes(SIZE)) == SIZE
        out["bw"] = SIZE / (rt.kernel.now - t0)

    client.spawn(main)
    rt.run()
    return out


def main() -> None:
    print(f"payload: {SIZE / 1e6:.0f} MB, identical CORBA code each time\n")
    rows = []

    # deployment 1: one big cluster (SAN available)
    topo = Topology()
    build_cluster(topo, "c", 2)
    with PadicoRuntime(topo) as rt:
        rows.append(("same cluster (auto)",
                     run_pair(rt, "c0", "c1", "san")))

    # deployment 2: two sites over a WAN
    topo2, a_hosts, b_hosts = build_two_site_grid(n_per_site=1)
    with PadicoRuntime(topo2) as rt2:
        rows.append(("across sites (auto)",
                     run_pair(rt2, a_hosts[0].name, b_hosts[0].name, "wan")))

    # deployment 3: same cluster but forced onto the LAN
    topo3 = Topology()
    build_cluster(topo3, "c", 2)
    with PadicoRuntime(topo3) as rt3:
        rows.append(("same cluster (forced LAN)",
                     run_pair(rt3, "c0", "c1", "lan", fabric="c-lan")))

    print(f"{'deployment':28s} {'fabric':10s} {'mapping':16s} "
          f"{'bandwidth':>12s}")
    for label, out in rows:
        print(f"{label:28s} {out['fabric']:10s} {out['mapping']:16s} "
              f"{out['bw'] / 1e6:9.1f} MB/s")

    assert rows[0][1]["bw"] > 200e6      # Myrinet régime
    assert rows[1][1]["bw"] < 5e6        # WAN régime
    assert 8e6 < rows[2][1]["bw"] < 12e6 # Fast-Ethernet régime
    print("\nnetwork selection OK")


if __name__ == "__main__":
    main()
