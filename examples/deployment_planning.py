#!/usr/bin/env python
"""Deployment scenarios from the paper's §2 in one script:

- **machine discovery**: component servers advertise their machines;
  the deployer queries capabilities it did not know statically;
- **localization constraints**: company X's patented chemistry code may
  only run on company machines;
- **communication flexibility**: the planner puts coupled codes on one
  SAN when a big enough cluster exists, and splits across the WAN
  otherwise — same assembly, no code change;
- **communication security**: with the `wan-only` policy, cross-site
  traffic is encrypted while SAN traffic runs clear (§6's proposed
  optimisation).

Run:  python examples/deployment_planning.py
"""

from repro.ccm import AssemblyDescriptor
from repro.deploy import (
    DeploymentPlanner,
    GridSecurityPolicy,
    MachineRegistry,
    secure_process,
)
from repro.net import Topology, build_cluster, build_two_site_grid
from repro.padicotm import PadicoRuntime, VLink

ASSEMBLY = AssemblyDescriptor.parse("""
<componentassembly id="coupling">
  <componentfiles>
    <componentfile id="chem" softpkg="chemistry"/>
    <componentfile id="trans" softpkg="transport"/>
  </componentfiles>
  <instance id="chem0" componentfile="chem">
    <constraint label="company-x"/>
  </instance>
  <instance id="trans0" componentfile="trans"/>
  <connection>
    <uses instance="trans0" port="density"/>
    <provides instance="chem0" port="densities"/>
  </connection>
</componentassembly>""")


def scenario_two_sites():
    print("== scenario 1: two sites joined by a WAN ==")
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=2)
    registry = MachineRegistry(topo)
    for h in a_hosts:  # site A belongs to company X
        registry.advertise(h.name, f"cs-{h.name}", labels=["company-x"])
    for h in b_hosts:
        registry.advertise(h.name, f"cs-{h.name}")

    print("discovered machines:")
    for m in registry.machines():
        print(f"  {m.process:8s} host={m.host:4s} site={m.site:8s} "
              f"labels={sorted(m.labels)} fabrics={sorted(m.fabrics)}")

    placement = DeploymentPlanner(registry, topo).plan(ASSEMBLY)
    print(f"placement: {placement}")
    chem = registry.machine(placement["chem0"])
    trans = registry.machine(placement["trans0"])
    assert "company-x" in chem.labels, "localization constraint"
    assert trans.site == chem.site, \
        "coupled codes co-located on the fast network"
    print(f"-> chemistry pinned to company site {chem.site!r}; transport "
          f"followed it onto the SAN\n")
    return topo, a_hosts, b_hosts


def scenario_security(topo, a_hosts, b_hosts):
    print("== scenario 2: per-link security (wan-only policy) ==")
    rt = PadicoRuntime(topo)
    pa0 = rt.create_process(a_hosts[0].name, "pa0")
    pa1 = rt.create_process(a_hosts[1].name, "pa1")
    pb0 = rt.create_process(b_hosts[0].name, "pb0")
    policy = GridSecurityPolicy("wan-only")
    for p in (pa0, pa1, pb0):
        secure_process(p, policy)

    stats = {}

    def serve(process, port):
        listener = VLink.listen(process, port)

        def srv(proc):
            ep = listener.accept(proc)
            ep.recv(proc)

        process.spawn(srv)

    def send(process, target, port, key):
        def cli(proc):
            ep = VLink.connect(proc, process, target, port)
            t0 = rt.kernel.now
            ep.send(proc, b"data", 1_000_000)
            stats[key] = (ep.fabric_name, ep.encrypted_bytes,
                          1_000_000 / (rt.kernel.now - t0))

        process.spawn(cli)

    serve(pa1, "intra")
    serve(pb0, "inter")
    send(pa0, "pa1", "intra", "intra-site")
    send(pa0, "pb0", "inter", "cross-site")
    rt.run()
    rt.shutdown()

    for key, (fabric, enc, bw) in stats.items():
        state = "ENCRYPTED" if enc else "clear"
        print(f"  {key:10s} via {fabric:6s}: {state:9s} "
              f"{bw / 1e6:7.1f} MB/s")
    assert stats["intra-site"][1] == 0, "SAN runs clear"
    assert stats["cross-site"][1] > 0, "WAN is encrypted"
    print("-> same policy object: cipher only where the wire is "
          "untrusted (§6)\n")


def scenario_single_cluster():
    print("== scenario 3: one big cluster is available ==")
    topo = Topology()
    hosts = build_cluster(topo, "big", 4)
    registry = MachineRegistry(topo)
    for h in hosts:
        registry.advertise(h.name, f"cs-{h.name}", labels=["company-x"])
    placement = DeploymentPlanner(registry, topo).plan(ASSEMBLY)
    print(f"placement: {placement}")
    hosts_used = {registry.machine(p).host for p in placement.values()}
    assert hosts_used <= {h.name for h in hosts}
    print("-> the very same assembly lands entirely inside the cluster: "
          "the WAN is never involved\n")


def main() -> None:
    topo, a_hosts, b_hosts = scenario_two_sites()
    scenario_security(topo, a_hosts, b_hosts)
    scenario_single_cluster()
    print("deployment planning OK")


if __name__ == "__main__":
    main()
