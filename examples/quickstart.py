#!/usr/bin/env python
"""Quickstart: deploy two CCM components on a simulated grid and couple
them — the smallest end-to-end tour of the Padico stack.

What happens:

1. a 4-node Myrinet+Ethernet cluster is simulated;
2. two CCM components (a `Worker` providing a compute facet, a `Driver`
   using it) are described by IDL and XML descriptors;
3. component servers register with the Naming Service; the deployment
   engine instantiates, configures and wires the assembly over GIOP;
4. the driver invokes the worker across the simulated Myrinet.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ccm import (
    AssemblyDescriptor,
    ComponentImpl,
    ComponentServer,
    Container,
    DeploymentEngine,
    ImplementationRepository,
    SoftwarePackage,
)
from repro.ccm.idl import COMPONENTS_IDL
from repro.corba import NamingContext, NamingService, OMNIORB4, Orb, compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

APP_IDL = """
module Quick {
    typedef sequence<double> Vector;
    interface Compute {
        double mean(in Vector values);
    };
    component Worker {
        provides Compute service;
        attribute double gain;
    };
    home WorkerHome manages Worker {};
    component Driver {
        uses Compute backend;
    };
    home DriverHome manages Driver {};
};
"""


class WorkerImpl(ComponentImpl):
    gain = 1.0

    def mean(self, values):
        return float(np.mean(values)) * self.gain


class DriverImpl(ComponentImpl):
    def run(self, data):
        backend = self.context.get_connection("backend")
        return backend.mean(data)


WORKER_PKG = SoftwarePackage.parse("""
<softpkg name="worker" version="1.0">
  <implementation id="DCE:quick-worker">
    <component>Quick::Worker</component>
  </implementation>
</softpkg>""")

DRIVER_PKG = SoftwarePackage.parse("""
<softpkg name="driver" version="1.0">
  <implementation id="DCE:quick-driver">
    <component>Quick::Driver</component>
  </implementation>
</softpkg>""")

ASSEMBLY = AssemblyDescriptor.parse("""
<componentassembly id="quickstart">
  <componentfiles>
    <componentfile id="w" softpkg="worker"/>
    <componentfile id="d" softpkg="driver"/>
  </componentfiles>
  <instance id="worker0" componentfile="w" destination="node0"/>
  <instance id="driver0" componentfile="d" destination="node1"/>
  <connection>
    <uses instance="driver0" port="backend"/>
    <provides instance="worker0" port="service"/>
  </connection>
  <property instance="worker0" name="gain" type="double" value="10.0"/>
</componentassembly>""")


def main() -> None:
    ImplementationRepository.clear()
    ImplementationRepository.register("DCE:quick-worker", "Quick::Worker",
                                      WorkerImpl)
    ImplementationRepository.register("DCE:quick-driver", "Quick::Driver",
                                      DriverImpl)

    # 1. the simulated grid
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)

    # 2. one container + component server per node, a naming service
    containers = [Container(rt.create_process(f"a{i}", f"node{i}"),
                            compile_idl(APP_IDL)) for i in range(2)]
    naming = NamingService(containers[0].orb)
    servers = [ComponentServer(c, NamingContext(c.orb, naming.url))
               for c in containers]

    # 3. a deployer process drives the assembly
    deployer = rt.create_process("a2", "deployer")
    d_orb = Orb(deployer, OMNIORB4, compile_idl(APP_IDL))
    d_orb.idl.merge(compile_idl(COMPONENTS_IDL))
    engine = DeploymentEngine(d_orb, NamingContext(d_orb, naming.url),
                              {"worker": WORKER_PKG, "driver": DRIVER_PKG})

    def deploy_and_run(proc):
        for server in servers:
            reg = server.container.process.spawn(
                lambda p, s=server: s.register(), name="register")
            proc.join(reg)
        app = engine.deploy(ASSEMBLY)
        print(f"deployed assembly {ASSEMBLY.id!r}: "
              f"{ {k: v for k, v in app.placement.items()} }")

        driver = next(iter(containers[1]._instances.values()))
        data = np.arange(1000, dtype="f8")
        runner = containers[1].process.spawn(
            lambda p: driver.executor.run(data), name="runner")
        result = proc.join(runner)
        print(f"driver0 -> worker0: mean(0..999) * gain = {result}")
        print(f"virtual time elapsed: {rt.kernel.now * 1e3:.3f} ms")
        app.teardown()

    deployer.spawn(deploy_and_run)
    rt.run()
    rt.shutdown()
    print("quickstart OK")


if __name__ == "__main__":
    main()
