"""repro.obs tour: trace the paper's Figure-7 ping-pong and dump a
Perfetto-loadable Chrome trace.

One GIOP call made through ``with runtime.trace() as tr:`` records a
nested span tree — personality/middleware at the top, VLink below it,
the Madeleine driver below that, and the link-level flow at the leaves
— every timestamp taken from the *virtual* clock, so the trace is
byte-for-byte reproducible.  See docs/OBSERVABILITY.md for the model.

Run:  PYTHONPATH=src python examples/trace_demo.py
Then open trace_demo.json in https://ui.perfetto.dev
"""

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.net import MYRINET_2000, Topology, build_cluster
from repro.obs import metrics, write_chrome_trace
from repro.padicotm import PadicoRuntime

IDL = """
module Demo { typedef sequence<octet> Blob;
              interface Echo { Blob bounce(in Blob data); }; };
"""

SIZE = 32 * 1024
ROUNDS = 3
OUT = "trace_demo.json"


def main():
    # the Figure-7 testbed: two nodes joined by Myrinet-2000
    topo = Topology()
    build_cluster(topo, "n", 2, san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")

    s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

    class Echo(s_orb.servant_base("Demo::Echo")):
        def bounce(self, data):
            return data

    url = s_orb.object_to_string(s_orb.poa.activate_object(Echo()))

    def pingpong(proc):
        stub = c_orb.string_to_object(url)
        payload = bytes(SIZE)
        for _ in range(ROUNDS):
            stub.bounce(payload)

    # everything between enter and exit is recorded; on exit the
    # recorder detaches and the runtime is back to zero overhead
    with rt.trace() as recorder:
        client.spawn(pingpong)
        rt.run()
    rt.shutdown()

    print(f"{ROUNDS}x {SIZE} byte ping-pong, omniORB4 over Myrinet-2000")
    print()
    print("span tree (virtual seconds):")
    print(recorder.render_tree())

    flat = metrics(recorder)
    print("per-layer totals:")
    for name in sorted(flat["spans"]):
        entry = flat["spans"][name]
        print(f"  {name:20s} x{entry['count']:<3d} {entry['total']:.6f}s")
    print(f"GIOP requests: {flat['counters']['giop.requests']:g}, "
          f"replies: {flat['counters']['giop.replies']:g}")
    print(f"bytes per fabric: {flat['fabric_bytes']}")

    write_chrome_trace(recorder, OUT)
    print()
    print(f"wrote {OUT} — open it in https://ui.perfetto.dev "
          f"or chrome://tracing")


if __name__ == "__main__":
    main()
