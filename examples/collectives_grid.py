#!/usr/bin/env python
"""Topology-aware MPI collectives on a multi-site grid.

MPICH-G2's two-level scheme on the reproduction's grid topology: each
communicator resolves its ranks to topology sites, elects one leader
per site, and routes every collective through intra-site binomial
subtrees glued by a leaders-only WAN tree — so a broadcast crosses the
expensive wide-area links exactly ``sites - 1`` times instead of once
per cross-site tree edge.

The same workload runs twice, flat (``CollTuning(aware=False)``, the
rank-order binomial oracle) and topology-aware (the default), asserts
the results are identical, and prints the virtual-clock time and
WAN-crossing count of each mode.

Run:  python examples/collectives_grid.py
"""

import numpy as np

from repro.mpi import SUM, CollTuning, create_world, spmd
from repro.net import build_grid
from repro.net.devices import MYRINET_2000
from repro.padicotm import PadicoRuntime

SITES = 4
HOSTS_PER_SITE = 4
PAYLOAD = 1024 * 1024  # 1 MiB


def run(aware: bool) -> dict:
    topo, site_hosts = build_grid(sites=SITES,
                                  hosts_per_site=HOSTS_PER_SITE,
                                  san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    procs = [rt.create_process(h, f"p-{h.name}")
             for hosts in site_hosts.values() for h in hosts]
    world = create_world(rt, "grid", procs, coll=CollTuning(aware=aware))
    out: dict = {}

    def main(proc, comm):
        blob = bytes(PAYLOAD) if comm.rank == 0 else None
        got = comm.bcast(blob, root=0)
        total = comm.allreduce(np.full(PAYLOAD // 8, comm.rank + 1.0), SUM)
        comm.barrier()
        if comm.rank == 0:
            out["bcast_ok"] = len(got) == PAYLOAD
            out["allreduce"] = float(total[0])
            out["time"] = comm.Wtime()
            out["wan_crossings"] = comm.coll_stats.wan_crossings
            out["hierarchical"] = comm.coll_aware

    spmd(world, main)
    rt.run()
    rt.shutdown()
    return out


def main() -> None:
    flat = run(aware=False)
    hier = run(aware=True)
    assert flat["bcast_ok"] and hier["bcast_ok"]
    assert flat["allreduce"] == hier["allreduce"]  # bit-identical values
    n = SITES * HOSTS_PER_SITE
    print(f"{SITES} sites x {HOSTS_PER_SITE} hosts ({n} ranks), "
          f"1 MiB bcast + allreduce + barrier")
    print(f"  flat  tree: {flat['time']:8.3f} sim-s, "
          f"{flat['wan_crossings']:3d} WAN crossings")
    print(f"  aware tree: {hier['time']:8.3f} sim-s, "
          f"{hier['wan_crossings']:3d} WAN crossings")
    print(f"  speedup {flat['time'] / hier['time']:.2f}x, results identical")


if __name__ == "__main__":
    main()
