#!/usr/bin/env python
"""Grid-scale flow churn on a :func:`build_grid` federation.

The paper's Figure-1 environment scaled up: a multi-site grid —
Myrinet islands behind leaf/spine switches, joined by WAN links — with
per-site flow rings plus cross-site WAN transfers, admitted in batches
and re-solved by the hierarchical site-sharded max-min tier (the
default).  The same workload is then replayed with ``sharded=False``
to show the allocations are byte-identical while the sharded run does
its solver work per-site.

Run:  python examples/grid_scaling.py
"""

from repro.net import build_grid
from repro.net.flows import FlowNetwork
from repro.sim import SimKernel

SITES = 8
HOSTS_PER_SITE = 32
FLOW_MB = 4.0


def run(sharded: bool) -> FlowNetwork:
    topo, site_hosts = build_grid(sites=SITES,
                                  hosts_per_site=HOSTS_PER_SITE,
                                  switch_fanout=16)
    kernel = SimKernel()
    net = FlowNetwork(kernel, topo, sharded=sharded)

    def ramp() -> None:
        batch = []
        for site, hosts in site_hosts.items():
            names = [h.name for h in hosts]
            for i, src in enumerate(names):
                route = topo.route(src, names[(i + 1) % len(names)],
                                   f"{site}-san")
                batch.append((route, FLOW_MB * 1e6, lambda flow: None))
        # one WAN transfer per site, to the next site's first host
        sites = sorted(site_hosts)
        for i, site in enumerate(sites):
            src = site_hosts[site][0].name
            dst = site_hosts[sites[(i + 1) % len(sites)]][0].name
            batch.append((topo.route(src, dst, "g-wan"), FLOW_MB * 1e6,
                          lambda flow: None))
        net.start_flows(batch)  # one re-solve for the whole ramp

    kernel.schedule(0.0, ramp)
    kernel.schedule(5.0, ramp)  # second wave: same routes, cache hits
    kernel.run()
    return net


def main() -> None:
    sharded = run(sharded=True)
    flat = run(sharded=False)
    assert sharded.flow_log == flat.flow_log  # bit-for-bit, always
    n = SITES * HOSTS_PER_SITE
    print(f"{SITES} sites x {HOSTS_PER_SITE} hosts "
          f"({n} hosts, {len(sharded.flow_log)} flows)")
    print(f"  sharded solver: {sharded.solver_solves} solves, "
          f"{sharded.solver_iterations} bottleneck rounds")
    print(f"  flat solver:    {flat.solver_solves} solves, "
          f"{flat.solver_iterations} bottleneck rounds")
    hits, misses = sharded.topology.route_cache_stats()
    print(f"  route cache:    {hits} hits / {misses} misses")
    print("  flow logs byte-identical across modes")


if __name__ == "__main__":
    main()
