#!/usr/bin/env python
"""Middleware cohabitation (paper §4.3, §4.4): CORBA, MPI and SOAP in
the same PadicoTM process, sharing one Myrinet NIC cooperatively.

Reproduces the §4.4 concurrency observation: running CORBA and MPI bulk
transfers at the same instant, "the bandwidth is efficiently shared:
each gets 120 MB/s" — and shows all three middleware systems loaded as
PadicoTM modules under a single Marcel thread policy.

Run:  python examples/middleware_cohabitation.py
"""

import numpy as np

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.mpi import create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime
from repro.soap import SoapClient, SoapServer

IDL = """
module Co {
    typedef sequence<octet> Blob;
    interface Sink { void push(in Blob data); };
};
"""

SIZE = 24_000_000  # 24 MB each stream


def main() -> None:
    topo = Topology()
    build_cluster(topo, "a", 2)
    rt = PadicoRuntime(topo)
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")

    # CORBA between the two processes
    s_orb = Orb(p1, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(p0, OMNIORB4, compile_idl(IDL))

    class Sink(s_orb.servant_base("Co::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))

    # MPI between the same two processes
    world = create_world(rt, "w", [p0, p1])

    # SOAP between the same two processes
    soap_server = SoapServer(p1)
    soap_server.register("status", lambda: {"ok": True})

    results = {}
    gate = 0.001  # both bulk streams start at t = 1 ms sharp

    def corba_main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")
        proc.sleep(gate - rt.kernel.now)
        t0 = rt.kernel.now
        stub.push(bytes(SIZE))
        results["corba"] = SIZE / (rt.kernel.now - t0)
        # a SOAP control-plane call rides along effortlessly
        soap = SoapClient(p0, soap_server.url)
        results["soap"] = soap.call(proc, "status")["ok"]

    def mpi_main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            proc.sleep(gate - rt.kernel.now)
            t0 = rt.kernel.now
            comm.Send(np.zeros(SIZE, dtype="u1"), dest=1)
            results["mpi"] = SIZE / (rt.kernel.now - t0)
        else:
            buf = np.empty(SIZE, dtype="u1")
            comm.Recv(buf, source=0)

    p0.spawn(corba_main)
    spmd(world, mpi_main)
    rt.run()

    print(f"modules in process p0   : {sorted(p0.modules.names())}")
    print(f"thread policy           : {p0.arbitration.thread_policy}")
    print(f"NIC claims on p0        : "
          f"{[(c.fabric, c.driver, c.cooperative) for c in p0.arbitration.claims]}")
    print(f"concurrent CORBA stream : {results['corba'] / 1e6:6.1f} MB/s")
    print(f"concurrent MPI stream   : {results['mpi'] / 1e6:6.1f} MB/s")
    print(f"SOAP control call       : {results['soap']}")
    assert abs(results["corba"] - 120e6) / 120e6 < 0.05
    assert abs(results["mpi"] - 120e6) / 120e6 < 0.05
    rt.shutdown()
    print("middleware cohabitation OK — each stream got ~120 MB/s "
          "(paper §4.4)")


if __name__ == "__main__":
    main()
