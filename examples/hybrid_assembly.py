#!/usr/bin/env python
"""Hybrid assembly: one descriptor deploys a sequential CCM component
*and* a 4-node GridCCM parallel component, wired together — with
grid-wide authentication on the component server and a network traffic
report at the end.

This is the paper's whole vision in one script: components as the unit
of deployment, parallelism as an implementation detail hidden behind a
standard interface, and the runtime picking the wires.

Run:  python examples/hybrid_assembly.py
"""

import numpy as np

from repro.ccm import (
    AssemblyDescriptor,
    ComponentImpl,
    ComponentServer,
    Container,
    ImplementationRepository,
    SoftwarePackage,
)
from repro.ccm.deployment import DeploymentEngine
from repro.ccm.idl import COMPONENTS_IDL
from repro.core import HybridDeployer
from repro.corba import NamingContext, NamingService, OMNIORB4, Orb, compile_idl
from repro.deploy import AccessPolicy, GridCredential, grant_credentials
from repro.net import Topology, build_cluster
from repro.net.stats import collect_report
from repro.padicotm import PadicoRuntime

IDL = """
module App {
    typedef sequence<double> Vector;
    interface Compute {
        double energy(in Vector field);
    };
    component Solver {
        provides Compute input;
        attribute double coupling;
    };
    home SolverHome manages Solver {};
    component Analyst {
        uses Compute backend;
    };
    home AnalystHome manages Analyst {};
};
"""


class SolverImpl(ComponentImpl):
    """SPMD energy computation: each node holds a block of the field."""

    coupling = 1.0

    def energy(self, field):
        self.mpi.Barrier()
        return float(field @ field) * self.coupling


class AnalystImpl(ComponentImpl):
    """A perfectly ordinary sequential component."""

    def analyse(self, field):
        backend = self.context.get_connection("backend")
        return backend.energy(field)


SOLVER_PKG = SoftwarePackage.parse("""
<softpkg name="solver" version="2.0">
  <implementation id="DCE:hy-solver">
    <component>App::Solver</component>
    <parallelism component="App::Solver">
      <port name="input">
        <operation name="energy">
          <argument name="field" distribution="block"/>
          <result policy="sum"/>
        </operation>
      </port>
    </parallelism>
  </implementation>
</softpkg>""")

ANALYST_PKG = SoftwarePackage.parse("""
<softpkg name="analyst" version="1.0">
  <implementation id="DCE:hy-analyst">
    <component>App::Analyst</component>
  </implementation>
</softpkg>""")

ASSEMBLY = AssemblyDescriptor.parse("""
<componentassembly id="hybrid-demo">
  <componentfiles>
    <componentfile id="s" softpkg="solver"/>
    <componentfile id="a" softpkg="analyst"/>
  </componentfiles>
  <instance id="solver0" componentfile="s" nodes="4"/>
  <instance id="analyst0" componentfile="a" destination="front-node"/>
  <connection>
    <uses instance="analyst0" port="backend"/>
    <provides instance="solver0" port="input"/>
  </connection>
  <property instance="solver0" name="coupling" type="double" value="0.5"/>
</componentassembly>""")


def main() -> None:
    ImplementationRepository.clear()
    ImplementationRepository.register("DCE:hy-solver", "App::Solver",
                                      SolverImpl)
    ImplementationRepository.register("DCE:hy-analyst", "App::Analyst",
                                      AnalystImpl)

    topo = Topology()
    build_cluster(topo, "n", 6)
    rt = PadicoRuntime(topo)

    # the front node hosts the sequential side, behind an ACL
    front = Container(rt.create_process("n0", "front-node"),
                      compile_idl(IDL))
    naming = NamingService(front.orb)
    policy = AccessPolicy(subjects=["deployer@hq"])
    server = ComponentServer(front, NamingContext(front.orb, naming.url),
                             access_policy=policy)

    # bare PadicoTM processes for the parallel solver nodes
    for i in range(4):
        rt.create_process(f"n{1 + i}", f"solver-node{i}")

    deployer_proc = rt.create_process("n5", "deployer")
    d_orb = Orb(deployer_proc, OMNIORB4, compile_idl(IDL))
    d_orb.idl.merge(compile_idl(COMPONENTS_IDL))
    grant_credentials(d_orb, GridCredential("deployer@hq"))
    engine = DeploymentEngine(d_orb, NamingContext(d_orb, naming.url),
                              {"solver": SOLVER_PKG,
                               "analyst": ANALYST_PKG})
    deployer = HybridDeployer(rt, engine, IDL)

    field = np.linspace(0.0, 1.0, 4000)
    result = {}

    def main_thread(proc):
        reg = server.container.process.spawn(lambda p: server.register(),
                                             name="register")
        proc.join(reg)
        app = deployer.deploy(ASSEMBLY, placement={
            "solver0": [f"solver-node{i}" for i in range(4)]})
        solver = app.parallel_component("solver0")
        print(f"deployed: analyst0 on front-node (sequential), "
              f"solver0 on {solver.size} SPMD nodes "
              f"(authenticated as deployer@hq)")

        analyst = next(iter(front._instances.values()))
        runner = front.process.spawn(
            lambda p: analyst.executor.analyse(field), name="runner")
        result["energy"] = proc.join(runner)
        app.teardown()

    deployer_proc.spawn(main_thread)
    rt.run()

    expected = 0.5 * float(field @ field)
    print(f"energy through the assembly : {result['energy']:.6f}")
    print(f"expected (0.5 × ||f||²)      : {expected:.6f}")
    assert abs(result["energy"] - expected) < 1e-9
    print()
    print(collect_report(rt.network).format())
    rt.shutdown()
    print("\nhybrid assembly OK")


if __name__ == "__main__":
    main()
