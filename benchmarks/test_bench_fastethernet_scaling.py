"""§4.4 Fast-Ethernet text: GridCCM aggregated bandwidth scaling.

"The behavior of GridCCM on top a Fast-Ethernet network based on
MicoCCM (resp. on OpenCCM (Java)) is similar: the bandwidth scales from
9.8 MB/s (resp. 8.3 MB/s) to 78.4 MB/s (resp. 66.4 MB/s)" — i.e. 1 to
8 nodes, one process per machine, near-linear ×8 scaling because every
pair owns its own 100 Mb/s NIC."""

import pytest

from benchmarks.conftest import record_rows
from benchmarks.harness import gridccm_n_to_n
from repro.corba import MICO
from repro.corba.profiles import OPENCCM_JAVA

PAPER = {
    "MicoCCM": {1: 9.8, 8: 78.4},
    "OpenCCM": {1: 8.3, 8: 66.4},
}


def _measure():
    out = {}
    for label, profile in (("MicoCCM", MICO), ("OpenCCM", OPENCCM_JAVA)):
        out[label] = {
            n: gridccm_n_to_n(n, profile=profile, procs_per_host=1,
                              ints_per_rank=250_000,
                              lan_only=True)["aggregate_mbps"]
            for n in (1, 8)}
    return out


def test_fastethernet_scaling(benchmark, paper_tolerance):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for label in PAPER:
        for n in (1, 8):
            rows.append((label, f"{n} to {n}",
                         round(measured[label][n], 1), PAPER[label][n]))
    record_rows(benchmark,
                "§4.4 — GridCCM aggregate bandwidth on Fast-Ethernet",
                ("container", "nodes", "measured MB/s", "paper MB/s"), rows)

    for label in PAPER:
        for n in (1, 8):
            assert measured[label][n] == pytest.approx(
                PAPER[label][n], rel=paper_tolerance), \
                f"{label} n={n}: {measured[label][n]:.1f} vs " \
                f"{PAPER[label][n]}"
        # near-linear ×8 scaling (every pair has its own NIC)
        ratio = measured[label][8] / measured[label][1]
        assert ratio > 6.5
    # MicoCCM beats the Java container at both scales, as in the paper
    assert measured["MicoCCM"][1] > measured["OpenCCM"][1]
    assert measured["MicoCCM"][8] > measured["OpenCCM"][8]
