"""Wall-clock throughput benchmarks (``BENCH_wallclock.json``).

Everything in ``BENCH_padico.json`` is a *virtual*-clock quantity —
bit-for-bit reproducible, but silent about how fast the simulator
itself runs.  This module measures the reproduction's three hot paths
on the **process wall clock**:

* ``wallclock.kernel`` — bare event-loop throughput (events/s): chains
  of self-rescheduling timers exercising heap push/pop and dispatch,
  run on the default switch backend;
* ``wallclock.kernel.switch`` — context-switch throughput (events/s)
  per switch backend: coroutine processes ping-ponging through
  zero-delay sleeps, the workload where the backend choice dominates.
  One categorical point per backend constructible here (``thread``
  always; ``greenlet`` when the package is installed; ``trampoline``
  always).  Each point is a median of three runs — the thread backend's
  OS semaphore handshake is noisy — and the meta records the speedup of
  every backend over ``thread``, which is what the CI gate
  (``--gate-backend-speedup``) checks;
* ``wallclock.flows`` — concurrent-flow churn (flows completed per
  wall-clock second) at F ∈ {10, 100, 1000} concurrent flows, the
  scenario the incremental max-min solver exists for.  Each run is
  executed under both solver modes; the solver-iteration counts (the
  ``net.maxmin.iterations`` obs counter) land in the series meta, where
  CI asserts the incremental solver does ≥ 5× less work at F = 1000;
* ``wallclock.cdr.marshal`` / ``wallclock.cdr.unmarshal`` — CDR
  encode/decode throughput (MB/s, MB = 1e6 bytes) for bulk octet and
  double sequences plus a scalar-struct torture case;
* ``wallclock.marshal_roundtrip`` — full encode→wire→decode roundtrips
  of a bulk double sequence at 64 KiB / 1 MiB / 16 MiB, once under the
  copying discipline (``zero_copy=False`` + ``getvalue()``) and once
  over the zero-copy segment path (``zero_copy=True`` + ``getbuffer()``
  + ``CdrInputStream`` over the :class:`WireBuffer`).  The meta records
  the per-size speedup; CI's acceptance bar is ≥ 3× at 16 MiB;
* ``wallclock.gridccm.scaling`` — the paper's Figure-8 aggregated
  bandwidth experiment (two n-node components, block-redistributed
  vector, server op is an MPI barrier) measured on the wall clock:
  total payload bytes over the wall seconds the simulation takes, as n
  grows.  The virtual-clock twin lives in ``BENCH_padico.json``; this
  series tracks how the zero-copy wire path scales the *simulator*.

Numbers vary with the host machine — the document is a trajectory, not
a reproducibility artifact, which is why it carries the separate
``padico-wallclock/1`` schema tag.  Regenerate with::

    PYTHONPATH=src python -m benchmarks.run --wallclock

Wall-clock reads live in ``benchmarks/`` on purpose: ``repro-lint``
bans them (det-wallclock) inside the simulated tree.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

import numpy as np

from repro.corba.cdr import CdrInputStream, CdrOutputStream, decode_value, \
    encode_value
from repro.corba.idl.types import PrimitiveType, SequenceType, StructType
from repro.net import MYRINET_2000, Topology, build_cluster
from repro.net.flows import FlowNetwork
from repro.obs import BenchResult, TraceRecorder
from repro.sim import SimKernel, available_backends

#: concurrent-flow levels for the churn series (the ISSUE's F axis)
FLOW_LEVELS = (10, 100, 1000)
QUICK_FLOW_LEVELS = (10, 100)

#: host pairs for the churn topology; disjoint pairs give the solver
#: independent components, the regime grids actually operate in
MAX_PAIRS = 32


# ---------------------------------------------------------------------------
# kernel event throughput
# ---------------------------------------------------------------------------

def kernel_event_rate(n_events: int, chains: int = 8) -> float:
    """Events per wall second for ``chains`` self-rescheduling timers."""
    kernel = SimKernel()
    per_chain = n_events // chains
    step = 1e-6

    def tick(remaining: int) -> None:
        if remaining > 0:
            kernel.schedule(step, tick, remaining - 1)

    for c in range(chains):
        kernel.schedule(c * step / chains, tick, per_chain - 1)
    t0 = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - t0
    return kernel.events_processed / elapsed


def bench_kernel(quick: bool) -> BenchResult:
    levels = (20_000,) if quick else (50_000, 200_000)
    points = []
    for n in levels:
        points.append((n, kernel_event_rate(n)))
    return BenchResult(
        name="wallclock.kernel", unit="events/s", points=tuple(points),
        meta={"workload": "8 self-rescheduling timer chains",
              "backend": "thread (default)", "clock": "wall"})


# ---------------------------------------------------------------------------
# per-backend context-switch throughput
# ---------------------------------------------------------------------------

#: same-instant switch storm: every event is a process switch, so the
#: backend's transfer-of-control cost dominates the measurement
SWITCH_PROCS = 8
SWITCH_REPEATS = 3


def kernel_switch_rate(backend: str, n_switches: int,
                       procs: int = SWITCH_PROCS,
                       repeats: int = SWITCH_REPEATS) -> float:
    """Median events/s of ``procs`` coroutine processes ping-ponging
    through zero-delay sleeps on ``backend``.

    The coroutine (generator) process style runs on every backend — the
    thread and greenlet backends drive generators through the same echo
    loop the trampoline uses — so the workload is backend-portable by
    construction.  Median of ``repeats`` fresh kernels: the thread
    backend's per-switch OS semaphore handshake makes single runs noisy.
    """
    per_proc = n_switches // procs

    def worker(proc, n):
        for _ in range(n):
            yield proc.sleep(0.0)

    rates = []
    for _ in range(repeats):
        kernel = SimKernel(backend=backend)
        for i in range(procs):
            kernel.spawn(worker, per_proc, name=f"switcher-{i}")
        t0 = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - t0
        rates.append(kernel.events_processed / elapsed)
    rates.sort()
    return rates[len(rates) // 2]


def bench_kernel_switch(quick: bool) -> BenchResult:
    n_switches = 8_000 if quick else 40_000
    points = []
    meta: dict[str, object] = {
        "workload": f"{SWITCH_PROCS} coroutine processes x zero-delay "
                    f"sleeps, same-instant batch drain",
        "n_switches": n_switches,
        "repeats": f"median of {SWITCH_REPEATS}",
        "clock": "wall",
    }
    for name in available_backends():
        points.append((name, kernel_switch_rate(name, n_switches)))
    rates = dict(points)
    for name, rate in points:
        if name != "thread":
            meta[f"speedup_vs_thread_{name}"] = round(
                rate / rates["thread"], 2)
    meta["best_backend"] = max(rates, key=rates.get)
    return BenchResult(name="wallclock.kernel.switch", unit="events/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# concurrent-flow churn
# ---------------------------------------------------------------------------

def _run_churn(n_flows: int, total_flows: int,
               incremental: bool) -> tuple[float, FlowNetwork, SimKernel]:
    """Drive ``n_flows`` concurrent flows (refilled up to ``total_flows``
    completions) over disjoint host pairs; returns (wall s, net, kernel)."""
    pairs = min(n_flows, MAX_PAIRS)
    topo = Topology()
    build_cluster(topo, "h", 2 * pairs, san=MYRINET_2000, lan=None)
    kernel = SimKernel()
    net = FlowNetwork(kernel, topo, incremental=incremental)
    routes = [topo.route(f"h{2 * i}", f"h{2 * i + 1}", "h-san")
              for i in range(pairs)]
    launched = [0]

    def start_one(slot: int) -> None:
        launched[0] += 1
        # deterministic size spread so completions interleave instead of
        # finishing in lockstep
        size = 100_000 * (1 + (launched[0] % 7))
        net.start_flow(routes[slot % pairs], size,
                       lambda flow, s=slot: refill(s))

    def refill(slot: int) -> None:
        if launched[0] < total_flows:
            start_one(slot)

    def kick(slot: int) -> None:
        start_one(slot)

    for s in range(n_flows):
        # stagger the initial wave so adds hit a populated network
        kernel.schedule(s * 1e-5, kick, s)
    t0 = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - t0
    assert net.completed_flows == total_flows, \
        f"churn lost flows: {net.completed_flows}/{total_flows}"
    return elapsed, net, kernel


def bench_flows(quick: bool) -> BenchResult:
    levels = QUICK_FLOW_LEVELS if quick else FLOW_LEVELS
    rounds = 2 if quick else 4
    points = []
    meta: dict[str, object] = {"clock": "wall",
                               "workload": "disjoint-pair flow churn",
                               "rounds": rounds}
    recorder = TraceRecorder()
    for f in levels:
        total = f * rounds
        elapsed, net, kernel = _run_churn(f, total, incremental=True)
        # replay the identical (virtual-clock deterministic) workload
        # with the from-scratch solver to count the work saved
        _, net_scratch, _ = _run_churn(f, total, incremental=False)
        points.append((f, total / elapsed))
        # the new obs counter: solver rounds per churn level, recorded
        # post-run so the traced run itself stays mode-independent
        recorder.counter(f"net.maxmin.iterations.incremental.F{f}",
                         net.solver_iterations)
        recorder.counter(f"net.maxmin.iterations.fromscratch.F{f}",
                         net_scratch.solver_iterations)
        meta[f"solver_iterations_incremental_F{f}"] = net.solver_iterations
        meta[f"solver_iterations_fromscratch_F{f}"] = \
            net_scratch.solver_iterations
        meta[f"solver_iteration_speedup_F{f}"] = round(
            net_scratch.solver_iterations / net.solver_iterations, 2)
        meta[f"events_skipped_F{f}"] = kernel.events_skipped
        meta[f"timer_reuses_F{f}"] = net.timer_reuses
    meta["counter_names"] = sorted(recorder.counters)
    return BenchResult(name="wallclock.flows", unit="flows/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# CDR marshal / unmarshal throughput
# ---------------------------------------------------------------------------

_OCTET_SEQ = SequenceType(PrimitiveType("octet"))
_DOUBLE_SEQ = SequenceType(PrimitiveType("double"))
_HEADER_STRUCT = StructType(
    "Header", "Bench::Header",
    [("magic", PrimitiveType("unsigned long")),
     ("version", PrimitiveType("octet")),
     ("flags", PrimitiveType("octet")),
     ("size", PrimitiveType("unsigned long")),
     ("request_id", PrimitiveType("unsigned long long"))])


def _rate(nbytes_per_round: int, rounds: int, op: Callable[[], None]) -> float:
    op()  # warm caches outside the timed region
    t0 = time.perf_counter()
    for _ in range(rounds):
        op()
    elapsed = time.perf_counter() - t0
    return nbytes_per_round * rounds / elapsed / 1e6


def _marshal_points(payload_bytes: int,
                    rounds: int) -> list[tuple[str, float]]:
    blob = bytes(payload_bytes)
    doubles = np.zeros(payload_bytes // 8, dtype="<f8")
    points = []

    def enc_octets() -> None:
        out = CdrOutputStream()
        encode_value(out, _OCTET_SEQ, blob)
        out.getvalue()

    def enc_doubles() -> None:
        out = CdrOutputStream()
        encode_value(out, _DOUBLE_SEQ, doubles)
        out.getvalue()

    points.append(("octet-seq", _rate(payload_bytes, rounds, enc_octets)))
    points.append(("double-seq", _rate(payload_bytes, rounds, enc_doubles)))

    # scalar torture: GIOP-header-like structs, all fast-path primitives
    n_structs = max(1, payload_bytes // 10_000)
    header = _HEADER_STRUCT.make(magic=0x47494F50, version=1, flags=0,
                                 size=payload_bytes, request_id=7)

    def enc_structs() -> None:
        out = CdrOutputStream()
        for _ in range(n_structs):
            encode_value(out, _HEADER_STRUCT, header)
        out.getvalue()

    points.append(("scalar-structs",
                   _rate(n_structs * 18, rounds, enc_structs)))
    return points


def _unmarshal_points(payload_bytes: int,
                      rounds: int) -> list[tuple[str, float]]:
    out = CdrOutputStream()
    encode_value(out, _OCTET_SEQ, bytes(payload_bytes))
    octet_wire = out.getvalue()
    out = CdrOutputStream()
    encode_value(out, _DOUBLE_SEQ, np.zeros(payload_bytes // 8, dtype="<f8"))
    double_wire = out.getvalue()

    def dec_octets() -> None:
        decode_value(CdrInputStream(octet_wire), _OCTET_SEQ)

    def dec_doubles() -> None:
        decode_value(CdrInputStream(double_wire), _DOUBLE_SEQ)

    return [("octet-seq", _rate(payload_bytes, rounds, dec_octets)),
            ("double-seq", _rate(payload_bytes, rounds, dec_doubles))]


#: marshal-roundtrip payload axis: 64 KiB, 1 MiB, 16 MiB
ROUNDTRIP_SIZES = (64 * 1024, 1024 * 1024, 16 * 1024 * 1024)
QUICK_ROUNDTRIP_SIZES = (64 * 1024, 1024 * 1024)


def _roundtrip_rates(payload_bytes: int,
                     rounds: int) -> tuple[float, float]:
    """(copied MB/s, zero-copy MB/s) for one encode→wire→decode trip."""
    doubles = np.zeros(payload_bytes // 8, dtype="<f8")

    def rt_copied() -> None:
        out = CdrOutputStream(zero_copy=False)
        encode_value(out, _DOUBLE_SEQ, doubles)
        decode_value(CdrInputStream(out.getvalue()), _DOUBLE_SEQ)

    def rt_zero_copy() -> None:
        out = CdrOutputStream(zero_copy=True)
        encode_value(out, _DOUBLE_SEQ, doubles)
        decode_value(CdrInputStream(out.getbuffer()), _DOUBLE_SEQ)

    return (_rate(payload_bytes, rounds, rt_copied),
            _rate(payload_bytes, rounds, rt_zero_copy))


def bench_marshal_roundtrip(quick: bool) -> BenchResult:
    sizes = QUICK_ROUNDTRIP_SIZES if quick else ROUNDTRIP_SIZES
    rounds = 5 if quick else 20
    points = []
    meta: dict[str, object] = {"rounds": rounds, "clock": "wall",
                               "payload": "double sequence"}
    for size in sizes:
        copied, zero = _roundtrip_rates(size, rounds)
        points.append((f"copied-{size}", copied))
        points.append((f"zero-copy-{size}", zero))
        meta[f"speedup_{size}"] = round(zero / copied, 2)
    return BenchResult(name="wallclock.marshal_roundtrip", unit="MB/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# GridCCM aggregated bandwidth (Figure 8) on the wall clock
# ---------------------------------------------------------------------------

GRIDCCM_NODES = (2, 4, 8)
QUICK_GRIDCCM_NODES = (2,)


def _gridccm_wall_mbps(n: int, ints_per_rank: int) -> float:
    """Wall-clock MB/s of one n→n block-redistributed absorb."""
    from benchmarks.harness import (
        BENCH_IDL,
        PARALLELISM_XML,
        _SinkImpl,
    )
    from repro.core import (
        GridCcmCompiler,
        ParallelClient,
        ParallelComponent,
        ParallelismDescriptor,
    )
    from repro.corba import OMNIORB4, Orb, compile_idl
    from repro.mpi import create_world, spmd
    from repro.padicotm import PadicoRuntime

    topo = Topology()
    build_cluster(topo, "h", 2 * n, san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    server_procs = [rt.create_process(f"h{i}", f"s{i}") for i in range(n)]
    comp = ParallelComponent.create(rt, "bench", server_procs, BENCH_IDL,
                                    PARALLELISM_XML, _SinkImpl,
                                    profile=OMNIORB4)
    url = comp.proxy_url("input")
    client_procs = [rt.create_process(f"h{n + i}", f"c{i}")
                    for i in range(n)]
    world = create_world(rt, "clients", client_procs)

    def main(proc, comm):
        idl = compile_idl(BENCH_IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(PARALLELISM_XML)).compile()
        orb = Orb(client_procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        pc.absorb(np.zeros(1, dtype="i4"))  # warm-up: connections + plans
        comm.barrier()
        pc.absorb(np.zeros(ints_per_rank, dtype="i4"))

    spmd(world, main)
    t0 = time.perf_counter()
    rt.run()
    elapsed = time.perf_counter() - t0
    rt.shutdown()
    return n * ints_per_rank * 4 / elapsed / 1e6


def bench_gridccm_scaling(quick: bool) -> BenchResult:
    nodes = QUICK_GRIDCCM_NODES if quick else GRIDCCM_NODES
    ints_per_rank = 250_000 if quick else 1_000_000
    points = [(n, _gridccm_wall_mbps(n, ints_per_rank)) for n in nodes]
    return BenchResult(
        name="wallclock.gridccm.scaling", unit="MB/s",
        points=tuple(points),
        meta={"clock": "wall", "ints_per_rank": ints_per_rank,
              "profile": "omniORB-4.0.0",
              "workload": "Figure-8 n-to-n block-redistributed absorb",
              "note": "aggregated payload bytes over simulator wall "
                      "seconds; the virtual-clock bandwidth twin is "
                      "gridccm.n_to_n in BENCH_padico.json"})


def bench_cdr(quick: bool) -> list[BenchResult]:
    payload = 256 * 1024 if quick else 8 * 1024 * 1024
    rounds = 5 if quick else 20
    meta = {"payload_bytes": payload, "rounds": rounds, "clock": "wall"}
    return [
        BenchResult(name="wallclock.cdr.marshal", unit="MB/s",
                    points=tuple(_marshal_points(payload, rounds)),
                    meta=meta),
        BenchResult(name="wallclock.cdr.unmarshal", unit="MB/s",
                    points=tuple(_unmarshal_points(payload, rounds)),
                    meta=meta),
    ]


# ---------------------------------------------------------------------------
# roll-up
# ---------------------------------------------------------------------------

def collect_wallclock(quick: bool,
                      log=lambda msg: None) -> list[BenchResult]:
    results = [bench_kernel(quick)]
    log(results[-1].render())
    results.append(bench_kernel_switch(quick))
    log(results[-1].render())
    results.append(bench_flows(quick))
    log(results[-1].render())
    for result in bench_cdr(quick):
        results.append(result)
        log(results[-1].render())
    results.append(bench_marshal_roundtrip(quick))
    log(results[-1].render())
    results.append(bench_gridccm_scaling(quick))
    log(results[-1].render())
    return results


def document_meta(quick: bool) -> dict[str, object]:
    return {
        "suite": "padico-wallclock",
        "mode": "quick" if quick else "full",
        "clock": "wall",
        "backends": list(available_backends()),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "platform": sys.platform,
    }
