"""Wall-clock throughput benchmarks (``BENCH_wallclock.json``).

Everything in ``BENCH_padico.json`` is a *virtual*-clock quantity —
bit-for-bit reproducible, but silent about how fast the simulator
itself runs.  This module measures the reproduction's three hot paths
on the **process wall clock**:

* ``wallclock.kernel`` — bare event-loop throughput (events/s): chains
  of self-rescheduling timers exercising heap push/pop and dispatch,
  run on the default switch backend;
* ``wallclock.kernel.switch`` — context-switch throughput (events/s)
  per switch backend: coroutine processes ping-ponging through
  zero-delay sleeps, the workload where the backend choice dominates.
  One categorical point per backend constructible here (``thread``
  always; ``greenlet`` when the package is installed; ``trampoline``
  always).  Each point is a median of three runs — the thread backend's
  OS semaphore handshake is noisy — and the meta records the speedup of
  every backend over ``thread``, which is what the CI gate
  (``--gate-backend-speedup``) checks;
* ``wallclock.flows`` — concurrent-flow churn (flows completed per
  wall-clock second) at F ∈ {10, 100, 1000} concurrent flows, the
  scenario the incremental max-min solver exists for.  Each run is
  executed under both solver modes; the solver-iteration counts (the
  ``net.maxmin.iterations`` obs counter) land in the series meta, where
  CI asserts the incremental solver does ≥ 5× less work at F = 1000;
* ``wallclock.topology.scaling`` — grid-scale event throughput
  (events/s) on :func:`repro.net.build_grid` topologies at 100 / 1 000 /
  10 000 hosts (500 hosts per site, 10 ring flows per host plus one WAN
  flow per site — 100k+ concurrent flows at the top size), solved by
  the hierarchical site-sharded tier with the vectorized fill.  At
  sizes the flat incremental solver can still stomach the identical
  workload is replayed flat: the run asserts the flow logs are
  byte-identical (exactness at scale) and the meta records the sharded
  speedup, which is what ``--topology-scaling`` publishes and CI's
  smoke slice (``make bench-topology``) keeps honest;
* ``wallclock.collectives`` — flat vs topology-aware MPI collectives
  on :func:`repro.net.build_grid` grids at 2 / 4 / 8 sites (5 hosts per
  site, 1 MiB payloads).  The one deterministic series in this
  document: durations are *virtual*-clock seconds, because the
  site-leader hierarchy is a simulated-time optimisation (WAN crossings
  saved, not simulator cycles).  Each level replays the identical
  workload under both modes, asserts the per-rank results are
  bit-identical, and records per-op speedups plus the WAN-crossing and
  WAN-byte deltas that ``--gate-wan-crossings`` checks (aware bcast
  crosses the WAN exactly sites − 1 times per call);
* ``wallclock.cdr.marshal`` / ``wallclock.cdr.unmarshal`` — CDR
  encode/decode throughput (MB/s, MB = 1e6 bytes) for bulk octet and
  double sequences plus a scalar-struct torture case;
* ``wallclock.marshal_roundtrip`` — full encode→wire→decode roundtrips
  of a bulk double sequence at 64 KiB / 1 MiB / 16 MiB, once under the
  copying discipline (``zero_copy=False`` + ``getvalue()``) and once
  over the zero-copy segment path (``zero_copy=True`` + ``getbuffer()``
  + ``CdrInputStream`` over the :class:`WireBuffer`).  The meta records
  the per-size speedup; CI's acceptance bar is ≥ 3× at 16 MiB;
* ``wallclock.gridccm.scaling`` — the paper's Figure-8 aggregated
  bandwidth experiment (two n-node components, block-redistributed
  vector, server op is an MPI barrier) measured on the wall clock:
  total payload bytes over the wall seconds the simulation takes, as n
  grows.  The virtual-clock twin lives in ``BENCH_padico.json``; this
  series tracks how the zero-copy wire path scales the *simulator*.

Numbers vary with the host machine — the document is a trajectory, not
a reproducibility artifact, which is why it carries the separate
``padico-wallclock/1`` schema tag.  Regenerate with::

    PYTHONPATH=src python -m benchmarks.run --wallclock

Wall-clock reads live in ``benchmarks/`` on purpose: ``repro-lint``
bans them (det-wallclock) inside the simulated tree.
"""

from __future__ import annotations

import sys
import time
from typing import Callable

import numpy as np

from repro.corba.cdr import CdrInputStream, CdrOutputStream, decode_value, \
    encode_value
from repro.corba.idl.types import PrimitiveType, SequenceType, StructType
from repro.net import MYRINET_2000, Topology, build_cluster, build_grid
from repro.net.flows import FlowNetwork
from repro.obs import BenchResult, TraceRecorder
from repro.sim import SimKernel, available_backends

#: concurrent-flow levels for the churn series (the ISSUE's F axis)
FLOW_LEVELS = (10, 100, 1000)
QUICK_FLOW_LEVELS = (10, 100)

#: host pairs for the churn topology; disjoint pairs give the solver
#: independent components, the regime grids actually operate in
MAX_PAIRS = 32


# ---------------------------------------------------------------------------
# kernel event throughput
# ---------------------------------------------------------------------------

def kernel_event_rate(n_events: int, chains: int = 8) -> float:
    """Events per wall second for ``chains`` self-rescheduling timers."""
    kernel = SimKernel()
    per_chain = n_events // chains
    step = 1e-6

    def tick(remaining: int) -> None:
        if remaining > 0:
            kernel.schedule(step, tick, remaining - 1)

    for c in range(chains):
        kernel.schedule(c * step / chains, tick, per_chain - 1)
    t0 = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - t0
    return kernel.events_processed / elapsed


def bench_kernel(quick: bool) -> BenchResult:
    levels = (20_000,) if quick else (50_000, 200_000)
    points = []
    for n in levels:
        points.append((n, kernel_event_rate(n)))
    return BenchResult(
        name="wallclock.kernel", unit="events/s", points=tuple(points),
        meta={"workload": "8 self-rescheduling timer chains",
              "backend": "thread (default)", "clock": "wall"})


# ---------------------------------------------------------------------------
# per-backend context-switch throughput
# ---------------------------------------------------------------------------

#: same-instant switch storm: every event is a process switch, so the
#: backend's transfer-of-control cost dominates the measurement
SWITCH_PROCS = 8
SWITCH_REPEATS = 3


def kernel_switch_rate(backend: str, n_switches: int,
                       procs: int = SWITCH_PROCS,
                       repeats: int = SWITCH_REPEATS) -> float:
    """Median events/s of ``procs`` coroutine processes ping-ponging
    through zero-delay sleeps on ``backend``.

    The coroutine (generator) process style runs on every backend — the
    thread and greenlet backends drive generators through the same echo
    loop the trampoline uses — so the workload is backend-portable by
    construction.  Median of ``repeats`` fresh kernels: the thread
    backend's per-switch OS semaphore handshake makes single runs noisy.
    """
    per_proc = n_switches // procs

    def worker(proc, n):
        for _ in range(n):
            yield proc.sleep(0.0)

    rates = []
    for _ in range(repeats):
        kernel = SimKernel(backend=backend)
        for i in range(procs):
            kernel.spawn(worker, per_proc, name=f"switcher-{i}")
        t0 = time.perf_counter()
        kernel.run()
        elapsed = time.perf_counter() - t0
        rates.append(kernel.events_processed / elapsed)
    rates.sort()
    return rates[len(rates) // 2]


def bench_kernel_switch(quick: bool) -> BenchResult:
    n_switches = 8_000 if quick else 40_000
    points = []
    meta: dict[str, object] = {
        "workload": f"{SWITCH_PROCS} coroutine processes x zero-delay "
                    f"sleeps, same-instant batch drain",
        "n_switches": n_switches,
        "repeats": f"median of {SWITCH_REPEATS}",
        "clock": "wall",
    }
    for name in available_backends():
        points.append((name, kernel_switch_rate(name, n_switches)))
    rates = dict(points)
    for name, rate in points:
        if name != "thread":
            meta[f"speedup_vs_thread_{name}"] = round(
                rate / rates["thread"], 2)
    meta["best_backend"] = max(rates, key=rates.get)
    return BenchResult(name="wallclock.kernel.switch", unit="events/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# concurrent-flow churn
# ---------------------------------------------------------------------------

def _run_churn(n_flows: int, total_flows: int,
               incremental: bool) -> tuple[float, FlowNetwork, SimKernel]:
    """Drive ``n_flows`` concurrent flows (refilled up to ``total_flows``
    completions) over disjoint host pairs; returns (wall s, net, kernel)."""
    pairs = min(n_flows, MAX_PAIRS)
    topo = Topology()
    build_cluster(topo, "h", 2 * pairs, san=MYRINET_2000, lan=None)
    kernel = SimKernel()
    net = FlowNetwork(kernel, topo, incremental=incremental)
    routes = [topo.route(f"h{2 * i}", f"h{2 * i + 1}", "h-san")
              for i in range(pairs)]
    launched = [0]

    def start_one(slot: int) -> None:
        launched[0] += 1
        # deterministic size spread so completions interleave instead of
        # finishing in lockstep
        size = 100_000 * (1 + (launched[0] % 7))
        net.start_flow(routes[slot % pairs], size,
                       lambda flow, s=slot: refill(s))

    def refill(slot: int) -> None:
        if launched[0] < total_flows:
            start_one(slot)

    def kick(slot: int) -> None:
        start_one(slot)

    for s in range(n_flows):
        # stagger the initial wave so adds hit a populated network
        kernel.schedule(s * 1e-5, kick, s)
    t0 = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - t0
    assert net.completed_flows == total_flows, \
        f"churn lost flows: {net.completed_flows}/{total_flows}"
    return elapsed, net, kernel


def bench_flows(quick: bool) -> BenchResult:
    levels = QUICK_FLOW_LEVELS if quick else FLOW_LEVELS
    rounds = 2 if quick else 4
    points = []
    meta: dict[str, object] = {"clock": "wall",
                               "workload": "disjoint-pair flow churn",
                               "rounds": rounds}
    recorder = TraceRecorder()
    meta["max_pairs"] = MAX_PAIRS
    for f in levels:
        total = f * rounds
        elapsed, net, kernel = _run_churn(f, total, incremental=True)
        # replay the identical (virtual-clock deterministic) workload
        # with the from-scratch solver to count the work saved
        _, net_scratch, _ = _run_churn(f, total, incremental=False)
        points.append((f, total / elapsed))
        # above MAX_PAIRS the F "concurrent" flows share min(F, MAX_PAIRS)
        # routes, so record what the level actually exercised
        meta[f"effective_pairs_F{f}"] = min(f, MAX_PAIRS)
        # the new obs counter: solver rounds per churn level, recorded
        # post-run so the traced run itself stays mode-independent
        recorder.counter(f"net.maxmin.iterations.incremental.F{f}",
                         net.solver_iterations)
        recorder.counter(f"net.maxmin.iterations.fromscratch.F{f}",
                         net_scratch.solver_iterations)
        meta[f"solver_iterations_incremental_F{f}"] = net.solver_iterations
        meta[f"solver_iterations_fromscratch_F{f}"] = \
            net_scratch.solver_iterations
        meta[f"solver_iteration_speedup_F{f}"] = round(
            net_scratch.solver_iterations / net.solver_iterations, 2)
        meta[f"events_skipped_F{f}"] = kernel.events_skipped
        meta[f"timer_reuses_F{f}"] = net.timer_reuses
    meta["counter_names"] = sorted(recorder.counters)
    return BenchResult(name="wallclock.flows", unit="flows/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# grid-scale topology churn (the hierarchical solver's reason to exist)
# ---------------------------------------------------------------------------

#: host-count axis for the scaling series
GRID_HOSTS = (100, 1_000, 10_000)
QUICK_GRID_HOSTS = (100,)
#: hosts per site: large Myrinet islands behind leaf/spine switches, so
#: the host axis scales both the site count and the per-site coupling
GRID_HOSTS_PER_SITE = 500
#: concurrent intra-site flows per host, plus one WAN flow per site for
#: the coupling tier — 10k hosts = 100k+ concurrent flows
GRID_FLOWS_PER_HOST = 10
GRID_SWITCH_FANOUT = 32
#: completions measured inside the timed churn window, per host count —
#: solver cost per completion grows with shard size, so the window
#: shrinks as the grid grows (the solver-time *ratio* is the metric and
#: every completion contributes two solves to each side of it)
GRID_CHURN_TARGETS = {100: 2_000, 1_000: 600, 10_000: 200}
QUICK_GRID_CHURN_TARGETS = {100: 500}
#: largest size replayed with the flat (non-sharded) incremental solver
#: for the speedup comparison; batched admission and refills keep the
#: flat replay tractable even at the 10k-host / 100k-flow top size
GRID_FLAT_MAX_HOSTS = 10_000
#: virtual-clock chunk the churn window advances by between completion
#: checks; chunking run(until=...) never changes the event order
GRID_CHUNK_S = 2e-3
#: flows admitted per ramp batch (one ``start_flows`` call each)
GRID_RAMP_BATCH = 2_000


def _instrument_solver(net: FlowNetwork) -> Callable[[], float]:
    """Wrap the network's solve + component-walk entry points with
    wall-clock accumulation; returns a ``read()`` closure.

    The instrumented quantity is exactly the per-event allocator work
    the solver modes differ on — the component/shard walk plus the
    progressive fill — excluding the mode-independent kernel costs
    (event dispatch, eager byte accounting, completion-timer scans)
    that both replays pay identically.  Wall-clock reads live here in
    the bench harness because the src tree bans them (det-wallclock).
    """
    acc = [0.0]
    solve, component = net._solve, net._component

    def timed_solve(*args, **kwargs):
        t0 = time.perf_counter()
        solve(*args, **kwargs)
        acc[0] += time.perf_counter() - t0

    def timed_component(*args, **kwargs):
        t0 = time.perf_counter()
        out = component(*args, **kwargs)
        acc[0] += time.perf_counter() - t0
        return out

    net._solve = timed_solve
    net._component = timed_component
    return lambda: acc[0]


def _run_grid_churn(n_hosts: int, sharded: bool, churn_target: int,
                    ) -> dict:
    """Self-refilling flow churn on a :func:`build_grid` topology.

    Each host sends ``GRID_FLOWS_PER_HOST - 1`` flows one switch-leaf
    over (host *i* → host *i + fanout*, so the traffic crosses the
    site's leaf-spine links) and one flow to the site's first host.
    The shared spine links and the hub's downlink weld every site into
    a single link-connected component — the regime where the flat
    solver's per-event component walk covers the whole site and the
    hierarchical shard tier earns its keep.  One cross-site WAN flow
    per site feeds the coupling tier.

    The ramp admits flows in :data:`GRID_RAMP_BATCH`-sized
    ``start_flows`` batches (bit-identical to sequential same-instant
    adds, one re-solve per batch) and is timed separately from the
    churn window, which advances the virtual clock in
    :data:`GRID_CHUNK_S` chunks until ``churn_target`` completions
    land.  Solver wall time (component walks + fills) is accumulated
    via :func:`_instrument_solver` and split at the window boundary.
    """
    n_sites = max(2, n_hosts // GRID_HOSTS_PER_SITE)
    per_site = max(2, n_hosts // n_sites)
    topo, sites = build_grid(sites=n_sites, hosts_per_site=per_site,
                             switch_fanout=GRID_SWITCH_FANOUT)
    kernel = SimKernel()
    net = FlowNetwork(kernel, topo, incremental=True, sharded=sharded)
    solver_wall = _instrument_solver(net)
    site_names = list(sites)
    intra: list = []
    for s in site_names:
        names = [h.name for h in sites[s]]
        for i in range(len(names)):
            cross = names[(i + GRID_SWITCH_FANOUT) % len(names)]
            hub = names[0] if i else names[1]
            intra.append(topo.route(names[i], cross, f"{s}-san"))
            intra.append(topo.route(names[i], hub, f"{s}-san"))
    wan_routes = []
    for si, s in enumerate(site_names):
        a = sites[s][0].name
        b = sites[site_names[(si + 1) % len(site_names)]][0].name
        wan_routes.append(topo.route(a, b, "g-wan"))
    routes = intra + wan_routes
    launched = [0]

    def flow_size() -> float:
        launched[0] += 1
        # deterministic size spread so completions interleave
        return 1_000_000.0 * (1 + launched[0] % 7)

    # churn refills are collected per completion instant and re-issued
    # as one ``start_flows`` batch at the same virtual time (symmetric
    # rates complete flows in large simultaneous batches; re-admitting
    # them one by one would re-solve the allocation once per flow in
    # both modes, drowning the workload in driver-induced solves)
    pending: list = []

    def flush() -> None:
        reqs = [(routes[i], flow_size(), lambda flow, r=i: refill(r))
                for i in pending]
        pending.clear()
        net.start_flows(reqs)

    def refill(route_i: int) -> None:
        if not pending:
            kernel.schedule(0.0, flush)
        pending.append(route_i)

    def start_batch(slots: list) -> None:
        net.start_flows([
            (routes[i], flow_size(), lambda flow, r=i: refill(r))
            for i in slots])

    # round-robin the adds so every route ramps evenly: 9 waves on the
    # cross-leaf routes (even slots), one on the hub routes (odd slots)
    cross_slots = range(0, len(intra), 2)
    adds = [i for _ in range(GRID_FLOWS_PER_HOST - 1) for i in cross_slots]
    adds.extend(range(1, len(intra), 2))
    adds.extend(range(len(intra), len(routes)))
    batches = [adds[k:k + GRID_RAMP_BATCH]
               for k in range(0, len(adds), GRID_RAMP_BATCH)]
    for k, slots in enumerate(batches):
        kernel.schedule(k * 1e-6, start_batch, slots)
    ramp_end = len(batches) * 1e-6
    t0 = time.perf_counter()
    kernel.run(until=ramp_end)
    t_ramp = time.perf_counter() - t0
    solver_ramp = solver_wall()

    ev0 = kernel.events_processed
    c0 = net.completed_flows
    horizon = ramp_end
    t1 = time.perf_counter()
    while net.completed_flows - c0 < churn_target:
        horizon += GRID_CHUNK_S
        kernel.run(until=horizon)
    t_churn = time.perf_counter() - t1
    return {
        "ramp_wall": t_ramp,
        "churn_wall": t_churn,
        "events": kernel.events_processed - ev0,
        "completions": net.completed_flows - c0,
        "solver_ramp": solver_ramp,
        "solver_churn": solver_wall() - solver_ramp,
        "net": net,
        "topo": topo,
    }


def bench_topology_scaling(quick: bool) -> BenchResult:
    levels = QUICK_GRID_HOSTS if quick else GRID_HOSTS
    targets = QUICK_GRID_CHURN_TARGETS if quick else GRID_CHURN_TARGETS
    points = []
    meta: dict[str, object] = {
        "clock": "wall",
        "workload": f"per-site flow rings ({GRID_FLOWS_PER_HOST}/host) + "
                    f"one WAN flow per site, {GRID_HOSTS_PER_SITE} "
                    f"hosts/site, switch fanout {GRID_SWITCH_FANOUT}",
        "churn_targets": {f"H{n}": t for n, t in sorted(targets.items())},
        "flat_max_hosts": GRID_FLAT_MAX_HOSTS,
        "speedup_metric": "flat churn-window solver wall (component walk "
                          "+ fill) over sharded ditto, same virtual "
                          "workload",
    }
    recorder = TraceRecorder()
    for n in levels:
        churn = targets[n]
        run = _run_grid_churn(n, sharded=True, churn_target=churn)
        net, topo = run["net"], run["topo"]
        points.append((n, run["events"] / run["churn_wall"]))
        hits, misses = topo.route_cache_stats()
        recorder.counter(f"net.route_cache.hits.H{n}", hits)
        recorder.counter(f"net.route_cache.misses.H{n}", misses)
        recorder.counter(f"net.maxmin.iterations.sharded.H{n}",
                         net.solver_iterations)
        meta[f"concurrent_flows_H{n}"] = len(net.active_flows)
        meta[f"ramp_wall_s_H{n}"] = round(run["ramp_wall"], 3)
        meta[f"solver_wall_s_H{n}"] = round(
            run["solver_ramp"] + run["solver_churn"], 3)
        meta[f"completions_per_s_H{n}"] = round(
            run["completions"] / run["churn_wall"], 1)
        meta[f"route_cache_hit_rate_H{n}"] = round(
            hits / (hits + misses), 3) if hits + misses else 0.0
        if n <= GRID_FLAT_MAX_HOSTS:
            flat = _run_grid_churn(n, sharded=False, churn_target=churn)
            # exactness at scale: flat and sharded replays of the same
            # virtual workload must transfer the very same bytes
            assert flat["net"].flow_log == net.flow_log, \
                f"sharded solve diverged from flat at {n} hosts"
            meta[f"flat_solver_wall_s_H{n}"] = round(
                flat["solver_ramp"] + flat["solver_churn"], 3)
            meta[f"sharded_speedup_H{n}"] = round(
                flat["solver_churn"] / run["solver_churn"], 2)
    meta["counter_names"] = sorted(recorder.counters)
    return BenchResult(name="wallclock.topology.scaling", unit="events/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# topology-aware collectives: flat vs hierarchical on the virtual clock
# ---------------------------------------------------------------------------

#: grid sizes for the collectives series (site count axis)
COLL_SITES = (2, 4, 8)
QUICK_COLL_SITES = (2,)
COLL_HOSTS_PER_SITE = 5
#: bulk payload: 1 MiB, the ISSUE's acceptance point
COLL_PAYLOAD = 1024 * 1024
#: per-rank payload for the gather-shaped ops, so the root-side total
#: stays proportional to the rank count instead of quadratic
COLL_CHUNK = 64 * 1024
#: the collectives the series publishes, in run order
COLL_OPS = ("bcast", "barrier", "gather", "allgather",
            "allreduce", "alltoall")


def _run_collectives(sites: int, aware: bool) -> dict:
    """One pass of every published collective on a ``sites``-site grid.

    Returns per-op virtual-clock durations (max rank end minus min rank
    start, barrier-separated), per-op WAN-crossing/byte deltas from the
    communicator's :class:`repro.mpi.CollStats`, and a per-rank value
    digest the caller uses to assert the aware replay is bit-identical
    to the flat oracle.
    """
    from repro.mpi import CollTuning, SUM, create_world, spmd
    from repro.padicotm import PadicoRuntime

    topo, site_hosts = build_grid(sites=sites,
                                  hosts_per_site=COLL_HOSTS_PER_SITE,
                                  san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    procs = [rt.create_process(h, f"p-{h.name}")
             for hs in site_hosts.values() for h in hs]
    world = create_world(rt, "bench", procs, coll=CollTuning(aware=aware))
    spans: dict[str, list[tuple[float, float]]] = {op: [] for op in COLL_OPS}
    op_stats: dict[str, object] = {}
    digests: dict[int, list] = {}

    def main(proc, comm):
        blob = bytes(COLL_PAYLOAD)
        chunk = bytes(COLL_CHUNK)
        vec = np.ones(COLL_PAYLOAD // 8)
        mine: list = []

        def timed(op, fn):
            # each op runs on its own dup'd communicator: the dup's
            # CollStats then hold the op's exact WAN totals (including
            # tail forwards that land after rank 0 returns), read after
            # the whole run drains.  The separating barriers stay on
            # the parent comm, so their traffic is never misattributed.
            sub = comm.dup()
            if comm.rank == 0:
                op_stats[op] = sub.coll_stats
            comm.barrier()
            t0 = comm.Wtime()
            out = fn(sub)
            t1 = comm.Wtime()
            spans[op].append((t0, t1))
            return out

        timed("bcast", lambda c: c.bcast(
            blob if c.rank == 0 else None, root=0))
        timed("barrier", lambda c: c.barrier())
        g = timed("gather", lambda c: c.gather((c.rank, chunk), root=0))
        ag = timed("allgather", lambda c: c.allgather((c.rank, chunk)))
        ar = timed("allreduce", lambda c: c.allreduce(vec, SUM))
        a2a = timed("alltoall", lambda c: c.alltoall(
            [bytes([d % 251]) * (COLL_PAYLOAD // c.size)
             for d in range(c.size)]))
        mine.append(g if comm.rank == 0 else None)
        mine.append(ag)
        mine.append(float(ar.sum()))
        mine.append(a2a)
        digests[comm.rank] = mine

    spmd(world, main)
    rt.run()
    rt.shutdown()
    durations = {op: max(t1 for _, t1 in ss) - min(t0 for t0, _ in ss)
                 for op, ss in spans.items()}
    crossings = {op: (s.wan_crossings, sum(s.wan_bytes.values()))
                 for op, s in op_stats.items()}
    return {"durations": durations, "crossings": crossings,
            "digests": [digests[r] for r in sorted(digests)]}


def bench_collectives(quick: bool) -> BenchResult:
    """``wallclock.collectives``: flat vs topology-aware collectives.

    Virtual-clock durations (this series rides in the wall-clock
    document but is deterministic — the hierarchy is a *simulated-time*
    optimisation, so the numbers are bit-for-bit reproducible).  Each
    sites level replays the identical workload flat and aware; the run
    asserts the per-rank results match exactly, and the meta records the
    per-op speedups plus the WAN-crossing/byte deltas CI gates on
    (``--gate-wan-crossings``: aware bcast crosses exactly sites - 1
    times per call).
    """
    levels = QUICK_COLL_SITES if quick else COLL_SITES
    points = []
    meta: dict[str, object] = {
        "clock": "virtual",
        "hosts_per_site": COLL_HOSTS_PER_SITE,
        "payload_bytes": COLL_PAYLOAD,
        "chunk_bytes": COLL_CHUNK,
        "workload": "barrier-separated collectives on build_grid, "
                    "duration = max rank end - min rank start",
    }
    for n in levels:
        flat = _run_collectives(n, aware=False)
        hier = _run_collectives(n, aware=True)
        assert hier["digests"] == flat["digests"], \
            f"aware collectives diverged from the flat oracle at {n} sites"
        for op in COLL_OPS:
            points.append((f"{op}-flat-S{n}", flat["durations"][op]))
            points.append((f"{op}-aware-S{n}", hier["durations"][op]))
            meta[f"speedup_{op}_S{n}"] = round(
                flat["durations"][op] / hier["durations"][op], 2)
            meta[f"wan_crossings_{op}_flat_S{n}"] = flat["crossings"][op][0]
            meta[f"wan_crossings_{op}_aware_S{n}"] = hier["crossings"][op][0]
            meta[f"wan_bytes_{op}_aware_S{n}"] = int(
                hier["crossings"][op][1])
        meta[f"ranks_S{n}"] = n * COLL_HOSTS_PER_SITE
    meta["oracle"] = "flat replay bit-identical (asserted in-run)"
    return BenchResult(name="wallclock.collectives", unit="s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# CDR marshal / unmarshal throughput
# ---------------------------------------------------------------------------

_OCTET_SEQ = SequenceType(PrimitiveType("octet"))
_DOUBLE_SEQ = SequenceType(PrimitiveType("double"))
_HEADER_STRUCT = StructType(
    "Header", "Bench::Header",
    [("magic", PrimitiveType("unsigned long")),
     ("version", PrimitiveType("octet")),
     ("flags", PrimitiveType("octet")),
     ("size", PrimitiveType("unsigned long")),
     ("request_id", PrimitiveType("unsigned long long"))])


def _rate(nbytes_per_round: int, rounds: int, op: Callable[[], None]) -> float:
    op()  # warm caches outside the timed region
    t0 = time.perf_counter()
    for _ in range(rounds):
        op()
    elapsed = time.perf_counter() - t0
    return nbytes_per_round * rounds / elapsed / 1e6


def _marshal_points(payload_bytes: int,
                    rounds: int) -> list[tuple[str, float]]:
    blob = bytes(payload_bytes)
    doubles = np.zeros(payload_bytes // 8, dtype="<f8")
    points = []

    def enc_octets() -> None:
        out = CdrOutputStream()
        encode_value(out, _OCTET_SEQ, blob)
        out.getvalue()

    def enc_doubles() -> None:
        out = CdrOutputStream()
        encode_value(out, _DOUBLE_SEQ, doubles)
        out.getvalue()

    points.append(("octet-seq", _rate(payload_bytes, rounds, enc_octets)))
    points.append(("double-seq", _rate(payload_bytes, rounds, enc_doubles)))

    # scalar torture: GIOP-header-like structs, all fast-path primitives
    n_structs = max(1, payload_bytes // 10_000)
    header = _HEADER_STRUCT.make(magic=0x47494F50, version=1, flags=0,
                                 size=payload_bytes, request_id=7)

    def enc_structs() -> None:
        out = CdrOutputStream()
        for _ in range(n_structs):
            encode_value(out, _HEADER_STRUCT, header)
        out.getvalue()

    points.append(("scalar-structs",
                   _rate(n_structs * 18, rounds, enc_structs)))
    return points


def _unmarshal_points(payload_bytes: int,
                      rounds: int) -> list[tuple[str, float]]:
    out = CdrOutputStream()
    encode_value(out, _OCTET_SEQ, bytes(payload_bytes))
    octet_wire = out.getvalue()
    out = CdrOutputStream()
    encode_value(out, _DOUBLE_SEQ, np.zeros(payload_bytes // 8, dtype="<f8"))
    double_wire = out.getvalue()

    def dec_octets() -> None:
        decode_value(CdrInputStream(octet_wire), _OCTET_SEQ)

    def dec_doubles() -> None:
        decode_value(CdrInputStream(double_wire), _DOUBLE_SEQ)

    return [("octet-seq", _rate(payload_bytes, rounds, dec_octets)),
            ("double-seq", _rate(payload_bytes, rounds, dec_doubles))]


#: marshal-roundtrip payload axis: 64 KiB, 1 MiB, 16 MiB
ROUNDTRIP_SIZES = (64 * 1024, 1024 * 1024, 16 * 1024 * 1024)
QUICK_ROUNDTRIP_SIZES = (64 * 1024, 1024 * 1024)


def _roundtrip_rates(payload_bytes: int,
                     rounds: int) -> tuple[float, float]:
    """(copied MB/s, zero-copy MB/s) for one encode→wire→decode trip."""
    doubles = np.zeros(payload_bytes // 8, dtype="<f8")

    def rt_copied() -> None:
        out = CdrOutputStream(zero_copy=False)
        encode_value(out, _DOUBLE_SEQ, doubles)
        decode_value(CdrInputStream(out.getvalue()), _DOUBLE_SEQ)

    def rt_zero_copy() -> None:
        out = CdrOutputStream(zero_copy=True)
        encode_value(out, _DOUBLE_SEQ, doubles)
        decode_value(CdrInputStream(out.getbuffer()), _DOUBLE_SEQ)

    return (_rate(payload_bytes, rounds, rt_copied),
            _rate(payload_bytes, rounds, rt_zero_copy))


def bench_marshal_roundtrip(quick: bool) -> BenchResult:
    sizes = QUICK_ROUNDTRIP_SIZES if quick else ROUNDTRIP_SIZES
    rounds = 5 if quick else 20
    points = []
    meta: dict[str, object] = {"rounds": rounds, "clock": "wall",
                               "payload": "double sequence"}
    for size in sizes:
        copied, zero = _roundtrip_rates(size, rounds)
        points.append((f"copied-{size}", copied))
        points.append((f"zero-copy-{size}", zero))
        meta[f"speedup_{size}"] = round(zero / copied, 2)
    return BenchResult(name="wallclock.marshal_roundtrip", unit="MB/s",
                       points=tuple(points), meta=meta)


# ---------------------------------------------------------------------------
# GridCCM aggregated bandwidth (Figure 8) on the wall clock
# ---------------------------------------------------------------------------

GRIDCCM_NODES = (2, 4, 8)
QUICK_GRIDCCM_NODES = (2,)


def _gridccm_wall_mbps(n: int, ints_per_rank: int) -> float:
    """Wall-clock MB/s of one n→n block-redistributed absorb."""
    from benchmarks.harness import (
        BENCH_IDL,
        PARALLELISM_XML,
        _SinkImpl,
    )
    from repro.core import (
        GridCcmCompiler,
        ParallelClient,
        ParallelComponent,
        ParallelismDescriptor,
    )
    from repro.corba import OMNIORB4, Orb, compile_idl
    from repro.mpi import create_world, spmd
    from repro.padicotm import PadicoRuntime

    topo = Topology()
    build_cluster(topo, "h", 2 * n, san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    server_procs = [rt.create_process(f"h{i}", f"s{i}") for i in range(n)]
    comp = ParallelComponent.create(rt, "bench", server_procs, BENCH_IDL,
                                    PARALLELISM_XML, _SinkImpl,
                                    profile=OMNIORB4)
    url = comp.proxy_url("input")
    client_procs = [rt.create_process(f"h{n + i}", f"c{i}")
                    for i in range(n)]
    world = create_world(rt, "clients", client_procs)

    def main(proc, comm):
        idl = compile_idl(BENCH_IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(PARALLELISM_XML)).compile()
        orb = Orb(client_procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        pc.absorb(np.zeros(1, dtype="i4"))  # warm-up: connections + plans
        comm.barrier()
        pc.absorb(np.zeros(ints_per_rank, dtype="i4"))

    spmd(world, main)
    t0 = time.perf_counter()
    rt.run()
    elapsed = time.perf_counter() - t0
    rt.shutdown()
    return n * ints_per_rank * 4 / elapsed / 1e6


def bench_gridccm_scaling(quick: bool) -> BenchResult:
    nodes = QUICK_GRIDCCM_NODES if quick else GRIDCCM_NODES
    ints_per_rank = 250_000 if quick else 1_000_000
    points = [(n, _gridccm_wall_mbps(n, ints_per_rank)) for n in nodes]
    return BenchResult(
        name="wallclock.gridccm.scaling", unit="MB/s",
        points=tuple(points),
        meta={"clock": "wall", "ints_per_rank": ints_per_rank,
              "profile": "omniORB-4.0.0",
              "workload": "Figure-8 n-to-n block-redistributed absorb",
              "note": "aggregated payload bytes over simulator wall "
                      "seconds; the virtual-clock bandwidth twin is "
                      "gridccm.n_to_n in BENCH_padico.json"})


def bench_cdr(quick: bool) -> list[BenchResult]:
    payload = 256 * 1024 if quick else 8 * 1024 * 1024
    rounds = 5 if quick else 20
    meta = {"payload_bytes": payload, "rounds": rounds, "clock": "wall"}
    return [
        BenchResult(name="wallclock.cdr.marshal", unit="MB/s",
                    points=tuple(_marshal_points(payload, rounds)),
                    meta=meta),
        BenchResult(name="wallclock.cdr.unmarshal", unit="MB/s",
                    points=tuple(_unmarshal_points(payload, rounds)),
                    meta=meta),
    ]


# ---------------------------------------------------------------------------
# roll-up
# ---------------------------------------------------------------------------

def collect_wallclock(quick: bool,
                      log=lambda msg: None) -> list[BenchResult]:
    results = [bench_kernel(quick)]
    log(results[-1].render())
    results.append(bench_kernel_switch(quick))
    log(results[-1].render())
    results.append(bench_flows(quick))
    log(results[-1].render())
    results.append(bench_topology_scaling(quick))
    log(results[-1].render())
    results.append(bench_collectives(quick))
    log(results[-1].render())
    for result in bench_cdr(quick):
        results.append(result)
        log(results[-1].render())
    results.append(bench_marshal_roundtrip(quick))
    log(results[-1].render())
    results.append(bench_gridccm_scaling(quick))
    log(results[-1].render())
    return results


def document_meta(quick: bool) -> dict[str, object]:
    return {
        "suite": "padico-wallclock",
        "mode": "quick" if quick else "full",
        "clock": "wall",
        "backends": list(available_backends()),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "platform": sys.platform,
    }
