"""pytest-benchmark configuration for the reproduction benches.

Each bench runs a whole simulation; wall-time of the simulation is what
pytest-benchmark measures, while the scientific quantities (virtual-time
bandwidth/latency) land in ``benchmark.extra_info`` and in the printed
paper-vs-measured tables."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-tolerance", action="store", type=float, default=0.25,
        help="relative tolerance when asserting measured-vs-paper values")


@pytest.fixture()
def paper_tolerance(request):
    return request.config.getoption("--paper-tolerance")


def record_rows(benchmark, title: str, header: tuple, rows: list) -> None:
    """Store a result table in extra_info and print it (-s to see it)."""
    benchmark.extra_info["table"] = {
        "title": title,
        "header": list(header),
        "rows": [list(r) for r in rows],
    }
    width = max(len(str(h)) for h in header) + 2
    print(f"\n=== {title} ===")
    print("".join(f"{str(h):>{width}}" for h in header))
    for row in rows:
        print("".join(
            f"{(f'{v:.1f}' if isinstance(v, float) else str(v)):>{width}}"
            for v in row))
