"""Figure 7: CORBA and MPI bandwidth on top of PadicoTM.

Regenerates every series of the figure — omniORB 3/4, Mico, ORBacus and
MPICH over PadicoTM/Myrinet-2000 plus the TCP/Ethernet-100 reference —
and checks the paper's headline shape: MPI and omniORB saturate the
wire at ≈240 MB/s (96 % of the hardware), the copying ORBs plateau near
55/63 MB/s, everything dwarfs Fast-Ethernet."""

import pytest

from benchmarks.conftest import record_rows
from benchmarks.harness import (
    FIG7_SIZES,
    corba_bandwidth_curve,
    mpi_bandwidth_curve,
)
from repro.corba import MICO, OMNIORB3, OMNIORB4, ORBACUS

#: paper peak bandwidths (MB/s) per series
PAPER_PEAKS = {
    "omniORB-3.0.2": 240.0,
    "omniORB-4.0.0": 240.0,
    "Mico-2.3.7": 55.0,
    "ORBacus-4.0.5": 63.0,
    "MPICH-madeleine": 240.0,
    "TCP/Ethernet-100": 11.2,
}


def _all_curves():
    curves = {
        "omniORB-3.0.2": corba_bandwidth_curve(OMNIORB3),
        "omniORB-4.0.0": corba_bandwidth_curve(OMNIORB4),
        "Mico-2.3.7": corba_bandwidth_curve(MICO),
        "ORBacus-4.0.5": corba_bandwidth_curve(ORBACUS),
        "MPICH-madeleine": mpi_bandwidth_curve(),
        "TCP/Ethernet-100": corba_bandwidth_curve(OMNIORB4, lan_only=True),
    }
    return curves


def test_fig7_bandwidth(benchmark, paper_tolerance):
    curves = benchmark.pedantic(_all_curves, rounds=1, iterations=1)

    header = ("series",) + tuple(f"{s}B" if s < 1024
                                 else f"{s // 1024}KB" if s < 1024 ** 2
                                 else f"{s // 1024 ** 2}MB"
                                 for s in FIG7_SIZES) + ("paper peak",)
    rows = [(name,) + tuple(round(curve[s], 1) for s in FIG7_SIZES)
            + (PAPER_PEAKS[name],)
            for name, curve in curves.items()]
    record_rows(benchmark, "Figure 7 — bandwidth (MB/s) vs message size",
                header, rows)

    peak = {name: max(curve.values()) for name, curve in curves.items()}
    # absolute peaks near the paper's numbers
    for name, expected in PAPER_PEAKS.items():
        assert peak[name] == pytest.approx(expected, rel=paper_tolerance), \
            f"{name}: peak {peak[name]:.1f} vs paper {expected}"
    # the figure's ordering at the right edge
    assert peak["MPICH-madeleine"] > peak["ORBacus-4.0.5"] \
        > peak["Mico-2.3.7"] > peak["TCP/Ethernet-100"]
    assert peak["omniORB-4.0.0"] == pytest.approx(
        peak["MPICH-madeleine"], rel=0.02)
    # 96% hardware efficiency claim for the zero-copy stacks
    assert peak["omniORB-4.0.0"] / 250.0 > 0.95
    # curves grow monotonically with message size (saturating shape)
    for name, curve in curves.items():
        values = [curve[s] for s in FIG7_SIZES]
        assert values == sorted(values), f"{name} not saturating"
