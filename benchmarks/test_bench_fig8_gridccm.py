"""Figure 8 (table): GridCCM performance between two parallel components
over PadicoTM/Myrinet-2000.

Paper rows (MicoCCM base, vector-of-integers argument, server operation
contains only an MPI_Barrier, dual-Pentium III nodes):

    ========  ============  =====================
    nodes     latency (µs)  aggregate bw (MB/s)
    ========  ============  =====================
    1 to 1    62            43
    2 to 2    93            76
    4 to 4    123           144
    8 to 8    148           280
    ========  ============  =====================

Our reproduction places 2 processes per host (the dual-CPU testbed), so
at n ≥ 2 pairs share a 240 MB/s NIC — which is precisely what bends the
per-pair bandwidth from 43 to ~35 MB/s in the paper's own numbers."""

import pytest

from benchmarks.conftest import record_rows
from benchmarks.harness import gridccm_n_to_n

PAPER_ROWS = {1: (62.0, 43.0), 2: (93.0, 76.0),
              4: (123.0, 144.0), 8: (148.0, 280.0)}


def _measure():
    return {n: gridccm_n_to_n(n) for n in PAPER_ROWS}


def test_fig8_gridccm_table(benchmark, paper_tolerance):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for n, (paper_lat, paper_bw) in PAPER_ROWS.items():
        m = measured[n]
        rows.append((f"{n} to {n}", round(m["latency_us"], 1), paper_lat,
                     round(m["aggregate_mbps"], 1), paper_bw))
    record_rows(benchmark, "Figure 8 — GridCCM over Myrinet-2000",
                ("nodes", "lat µs", "paper", "bw MB/s", "paper"), rows)

    for n, (paper_lat, paper_bw) in PAPER_ROWS.items():
        m = measured[n]
        assert m["latency_us"] == pytest.approx(paper_lat,
                                                rel=paper_tolerance)
        assert m["aggregate_mbps"] == pytest.approx(paper_bw,
                                                    rel=paper_tolerance)

    lats = [measured[n]["latency_us"] for n in (1, 2, 4, 8)]
    bws = [measured[n]["aggregate_mbps"] for n in (1, 2, 4, 8)]
    # latency grows with node count (the barrier term)...
    assert lats == sorted(lats)
    # ...bandwidth aggregates efficiently: ×~6.5 from 1 to 8 in the
    # paper (280/43); demand at least ×5.5 and sub-linear vs ×8
    assert 5.5 < bws[3] / bws[0] < 8.0
    # 1→1 sits in the Mico-plus-GridCCM régime, well under plain Mico
    assert bws[0] < 55.0
