"""§4.4 concurrency: CORBA and MPI at the same time.

Paper: "Concurrent benchmarks (CORBA and MPI at the same time) show the
bandwidth is efficiently shared: each gets 120 MB/s."  The max-min fair
allocator under the arbitration layer is what produces the even split."""

import pytest

from benchmarks.conftest import record_rows
from benchmarks.harness import concurrent_sharing_mbps


def test_concurrent_sharing(benchmark):
    shares = benchmark.pedantic(concurrent_sharing_mbps,
                                rounds=1, iterations=1)
    record_rows(benchmark,
                "§4.4 — concurrent CORBA + MPI over one Myrinet NIC",
                ("stream", "measured MB/s", "paper MB/s"),
                [("CORBA/omniORB", round(shares["corba"], 1), 120.0),
                 ("MPI", round(shares["mpi"], 1), 120.0)])
    assert shares["corba"] == pytest.approx(120.0, rel=0.05)
    assert shares["mpi"] == pytest.approx(120.0, rel=0.05)
    # fairness: within 2% of each other
    assert abs(shares["corba"] - shares["mpi"]) / 120.0 < 0.02
