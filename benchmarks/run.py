"""Run the reproduction benches and write ``BENCH_padico.json``.

Usage::

    PYTHONPATH=src python -m benchmarks.run --quick --out BENCH_padico.json
    PYTHONPATH=src python -m benchmarks.run --wallclock --out BENCH_wallclock.json

``--quick`` trims the message-size sweep and the GridCCM node counts so
the whole run fits in a CI smoke step; the full sweep regenerates every
series behind Figure 7, Figure 8 and the §4.4 text.  All numbers are
virtual-clock quantities, so the output is bit-for-bit reproducible —
the document carries no wall-clock timestamps on purpose.

``--wallclock`` switches to the :mod:`benchmarks.wallclock` suite
instead: simulator *wall-clock* throughput (kernel events/s, concurrent
flow churn, CDR MB/s) under the machine-varying ``padico-wallclock/1``
schema.  The default output path follows the mode.

``--topology-scaling`` runs just the grid-scale
``wallclock.topology.scaling`` series (hierarchical site-sharded solver
on :func:`repro.net.build_grid` topologies up to 10k hosts / 100k
flows) and writes it under the wall-clock schema — the CI smoke slice
is ``make bench-topology``.

``--collectives`` runs just the ``wallclock.collectives`` series (flat
vs topology-aware MPI collectives on grids up to 8 sites, asserting the
aware replay is bit-identical to the flat oracle) — the CI smoke slice
is ``make bench-collectives``.  ``--gate-wan-crossings`` additionally
fails the run unless the aware bcast crossed the WAN exactly sites − 1
times per call at every measured grid size.

``--gate-backend-speedup N`` (wall-clock mode only) fails the run
unless the fastest non-thread switch backend clears ``N``x the thread
backend on the ``wallclock.kernel.switch`` series measured in the same
run.  CI smoke uses a conservative bar (quick sizes on shared runners
are noisy); regenerating the committed full document uses the
acceptance bar of 10.
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.harness import (
    FIG7_SIZES,
    concurrent_sharing_mbps,
    corba_bandwidth_curve,
    corba_one_way_latency_us,
    gridccm_n_to_n,
    mpi_bandwidth_curve,
    mpi_one_way_latency_us,
    proxy_vs_direct,
)
from benchmarks.wallclock import (
    bench_collectives,
    bench_topology_scaling,
    collect_wallclock,
    document_meta,
)
from repro.corba import MICO, OMNIORB3, OMNIORB4, ORBACUS
from repro.obs import WALLCLOCK_SCHEMA, BenchResult, write_bench_json

QUICK_SIZES = (1024, 1024 * 1024)
QUICK_NODES = (1, 2)
FULL_NODES = (1, 2, 4, 8)


def collect(quick: bool, log=lambda msg: None) -> list[BenchResult]:
    sizes = QUICK_SIZES if quick else FIG7_SIZES
    profiles = (OMNIORB4, MICO) if quick \
        else (OMNIORB3, OMNIORB4, MICO, ORBACUS)
    results: list[BenchResult] = []

    for profile in profiles:
        results.append(corba_bandwidth_curve(profile, sizes))
        log(results[-1].render())
    results.append(corba_bandwidth_curve(OMNIORB4, sizes, lan_only=True))
    log(results[-1].render())
    results.append(mpi_bandwidth_curve(sizes))
    log(results[-1].render())

    results.append(BenchResult(
        name="corba.latency.omniorb4", unit="us",
        points=(("one_way", corba_one_way_latency_us(OMNIORB4)),),
        meta={"profile": OMNIORB4.key}))
    log(results[-1].render())
    results.append(BenchResult(
        name="mpi.latency.mpich-madeleine", unit="us",
        points=(("one_way", mpi_one_way_latency_us()),),
        meta={"profile": "mpich-madeleine"}))
    log(results[-1].render())

    results.append(concurrent_sharing_mbps())
    log(results[-1].render())

    for n in (QUICK_NODES if quick else FULL_NODES):
        results.append(gridccm_n_to_n(n))
        log(results[-1].render())

    if not quick:
        results.append(proxy_vs_direct())
        log(results[-1].render())
    return results


def _check_wan_crossings(results: list[BenchResult]) -> list[str]:
    """MPICH-G2 invariant on the ``wallclock.collectives`` series: a
    topology-aware bcast must cross the WAN exactly sites - 1 times per
    call (one leader-to-leader edge per non-root site, nothing else).
    Returns a list of violations (empty = gate green)."""
    series = next((r for r in results
                   if r.name == "wallclock.collectives"), None)
    if series is None:
        return ["no wallclock.collectives series in this run"]
    bad = []
    for key, value in series.meta.items():
        if not key.startswith("wan_crossings_bcast_aware_S"):
            continue
        sites = int(key.rsplit("S", 1)[1])
        if value != sites - 1:
            bad.append(f"{key} = {value}, expected {sites - 1}")
    if not any(k.startswith("wan_crossings_bcast_aware_S")
               for k in series.meta):
        bad.append("no aware-bcast crossing counts in the series meta")
    return bad


def _backend_speedup(results: list[BenchResult]) -> float | None:
    """Best non-thread rate over the thread rate on the
    ``wallclock.kernel.switch`` series; None if thread is the only
    backend measured."""
    series = next(r for r in results
                  if r.name == "wallclock.kernel.switch")
    rates = dict(series.points)
    others = [rate for name, rate in rates.items() if name != "thread"]
    if not others:
        return None
    return max(others) / rates["thread"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.run",
        description="regenerate the paper-reproduction bench document")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_padico.json, or "
                             "BENCH_wallclock.json with --wallclock)")
    parser.add_argument("--quick", action="store_true",
                        help="trimmed sweep for CI smoke runs")
    parser.add_argument("--wallclock", action="store_true",
                        help="run the wall-clock suite (padico-wallclock/1) "
                             "instead of the virtual-clock sweep")
    parser.add_argument("--topology-scaling", action="store_true",
                        help="run only the wallclock.topology.scaling "
                             "series (grid-scale hierarchical-solver "
                             "bench); implies the wall-clock schema")
    parser.add_argument("--gate-backend-speedup", type=float, default=None,
                        metavar="N",
                        help="with --wallclock: fail unless the fastest "
                             "non-thread switch backend reaches N x the "
                             "thread backend on wallclock.kernel.switch")
    parser.add_argument("--collectives", action="store_true",
                        help="run only the wallclock.collectives series "
                             "(flat vs topology-aware MPI collectives on "
                             "build_grid); implies the wall-clock schema")
    parser.add_argument("--gate-wan-crossings", action="store_true",
                        help="with --collectives or --wallclock: fail "
                             "unless the topology-aware bcast crossed the "
                             "WAN exactly sites - 1 times per call at "
                             "every measured grid size")
    args = parser.parse_args(argv)

    if args.gate_backend_speedup is not None and not args.wallclock:
        parser.error("--gate-backend-speedup requires --wallclock")
    if args.topology_scaling and args.wallclock:
        parser.error("--topology-scaling already implies the wall-clock "
                     "schema; drop --wallclock")
    if args.collectives and (args.wallclock or args.topology_scaling):
        parser.error("--collectives already implies the wall-clock "
                     "schema; drop the other mode flags")
    if args.gate_wan_crossings and not (args.collectives or args.wallclock):
        parser.error("--gate-wan-crossings requires --collectives or "
                     "--wallclock")

    if args.collectives:
        out = args.out or "BENCH_collectives.json"
        results = [bench_collectives(args.quick)]
        print(results[-1].render())
        write_bench_json(out, results, meta=document_meta(args.quick),
                         schema=WALLCLOCK_SCHEMA)
    elif args.topology_scaling:
        out = args.out or "BENCH_topology.json"
        results = [bench_topology_scaling(args.quick)]
        print(results[-1].render())
        write_bench_json(out, results, meta=document_meta(args.quick),
                         schema=WALLCLOCK_SCHEMA)
    elif args.wallclock:
        out = args.out or "BENCH_wallclock.json"
        results = collect_wallclock(args.quick, log=print)
        write_bench_json(out, results, meta=document_meta(args.quick),
                         schema=WALLCLOCK_SCHEMA)
        if args.gate_backend_speedup is not None:
            speedup = _backend_speedup(results)
            bar = args.gate_backend_speedup
            if speedup is None:
                print("backend-speedup gate: only the thread backend is "
                      "available; nothing to compare")
            elif speedup < bar:
                print(f"backend-speedup gate FAILED: best non-thread "
                      f"backend is {speedup:.1f}x thread (< {bar:g}x)")
                return 1
            else:
                print(f"backend-speedup gate: {speedup:.1f}x thread "
                      f"(>= {bar:g}x)")
    else:
        out = args.out or "BENCH_padico.json"
        results = collect(args.quick, log=print)
        write_bench_json(out, results, meta={
            "suite": "padico-repro",
            "mode": "quick" if args.quick else "full",
            "clock": "virtual",
        })
    if args.gate_wan_crossings:
        violations = _check_wan_crossings(results)
        if violations:
            for v in violations:
                print(f"wan-crossings gate FAILED: {v}")
            return 1
        print("wan-crossings gate: aware bcast crossed the WAN exactly "
              "sites - 1 times at every measured grid size")
    print(f"wrote {len(results)} series to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
