"""Library micro-benchmarks (real wall-time, not virtual).

Unlike the paper-reproduction benches — whose scientific output is
virtual-clock readings — these measure the *library's own* hot paths
with pytest-benchmark's normal repeated-measurement machinery: the
simulation kernel's event throughput, context-switch rate, the max-min
allocator, and CDR marshalling."""

import numpy as np
import pytest

from repro.corba.cdr import CdrInputStream, CdrOutputStream, decode_value, encode_value
from repro.corba.idl.types import PrimitiveType, SequenceType
from repro.net import FlowNetwork, Topology, build_cluster
from repro.net.flows import Flow, maxmin_rates
from repro.sim import Mailbox, SimKernel


def test_perf_kernel_event_throughput(benchmark):
    """Schedule+fire 10k pure callbacks."""
    def run():
        k = SimKernel()
        hits = []
        for i in range(10_000):
            k.schedule(i * 1e-6, hits.append, i)
        k.run()
        assert len(hits) == 10_000

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_perf_context_switches(benchmark):
    """Two simulated processes ping-pong 2000 messages (4000 switches)."""
    def run():
        with SimKernel() as k:
            ping = Mailbox(k)
            pong = Mailbox(k)

            def a(p):
                for i in range(2000):
                    ping.put(p, i)
                    pong.get(p)

            def b(p):
                for _ in range(2000):
                    ping.get(p)
                    pong.put(p, "ack")

            k.spawn(a)
            k.spawn(b)
            k.run()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_perf_maxmin_allocator(benchmark):
    """Re-solve a 64-flow / 32-link allocation."""
    topo = Topology()
    build_cluster(topo, "a", 16)
    fabric = topo.fabrics["a-san"]
    links = list(fabric.links())
    rng = np.random.default_rng(0)
    flows = []
    for i in range(64):
        picks = rng.choice(len(links), size=3, replace=False)
        flows.append(Flow([links[j] for j in picks], 1e6, None, None, 0.0))

    def run():
        rates = maxmin_rates(flows)
        assert len(rates) == 64

    benchmark(run)


def test_perf_cdr_zero_copy_encode(benchmark):
    """Marshal an 8 MB double sequence, zero-copy discipline."""
    t = SequenceType(PrimitiveType("double"))
    arr = np.zeros(1_000_000)

    def run():
        out = CdrOutputStream(zero_copy=True)
        encode_value(out, t, arr)
        assert out.copied_bytes < 100
        return out.getvalue()

    benchmark(run)


def test_perf_cdr_roundtrip_structs(benchmark):
    """Encode+decode 1000 small mixed values (header-path cost)."""
    from repro.corba.idl.types import StringType, StructType

    point = StructType("P", "P", [("x", PrimitiveType("double")),
                                  ("y", PrimitiveType("double")),
                                  ("tag", StringType())])
    values = [point.make(x=float(i), y=-float(i), tag=f"p{i}")
              for i in range(1000)]

    def run():
        out = CdrOutputStream()
        for v in values:
            encode_value(out, point, v)
        inp = CdrInputStream(out.getvalue())
        back = [decode_value(inp, point) for _ in range(1000)]
        assert back[-1].tag == "p999"

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_perf_full_stack_invocation_rate(benchmark):
    """1000 remote CORBA invocations through the whole stack."""
    from repro.corba import OMNIORB4, Orb, compile_idl
    from repro.padicotm import PadicoRuntime

    def run():
        topo = Topology()
        build_cluster(topo, "a", 2)
        rt = PadicoRuntime(topo)
        server = rt.create_process("a0", "server")
        client = rt.create_process("a1", "client")
        idl_src = "interface Echo { long bump(in long x); };"
        s_orb = Orb(server, OMNIORB4, compile_idl(idl_src))
        s_orb.start()
        c_orb = Orb(client, OMNIORB4, compile_idl(idl_src))

        class Echo(s_orb.servant_base("Echo")):
            def bump(self, x):
                return x + 1

        url = s_orb.object_to_string(s_orb.poa.activate_object(Echo()))

        def main(proc):
            stub = c_orb.string_to_object(url)
            v = 0
            for _ in range(1000):
                v = stub.bump(v)
            assert v == 1000

        client.spawn(main)
        rt.run()
        rt.shutdown()

    benchmark.pedantic(run, rounds=3, iterations=1)
