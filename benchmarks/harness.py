"""Shared measurement harness for the paper-reproduction benchmarks.

Every function builds a fresh simulated grid, drives the relevant
middleware, and returns quantities read off the **virtual clock**
(bandwidth in MB/s with MB = 1e6 bytes, latency in µs — the paper's
units).  Series-shaped measurements come back as
:class:`repro.obs.BenchResult` — mapping-style access (``curve[size]``,
``curve.values()``) plus ``to_json()`` for the ``BENCH_padico.json``
roll-up — while single scalars stay plain floats.  pytest-benchmark
wraps these functions to additionally record the real wall-time cost of
running each simulation."""

from __future__ import annotations

import math

import numpy as np

from repro.obs import BenchResult

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.corba import MICO, OMNIORB4, Orb, compile_idl
from repro.corba.profiles import OrbProfile
from repro.mpi import World, create_world, spmd
from repro.net import MYRINET_2000, Topology, build_cluster
from repro.padicotm import PadicoRuntime

BENCH_IDL = """
module Bench {
    typedef sequence<octet> Blob;
    typedef sequence<long> IntVector;
    interface Sink {
        void push(in Blob data);
        void absorb(in IntVector values);
    };
    component Endpoint {
        provides Sink input;
    };
    home EndpointHome manages Endpoint {};
};
"""

PARALLELISM_XML = """
<parallelism component="Bench::Endpoint">
  <port name="input">
    <operation name="absorb">
      <argument name="values" distribution="block"/>
      <result policy="none"/>
    </operation>
  </port>
</parallelism>
"""

#: Figure 7's x axis: 32 B .. 8 MB
FIG7_SIZES = (32, 1024, 32 * 1024, 1024 * 1024, 8 * 1024 * 1024)


class _SinkImpl(ComponentImpl):
    """Bench endpoint: absorbs a distributed vector then barriers —
    exactly the paper's Figure-8 workload ('the invoked operation only
    contains a MPI_Barrier')."""

    def absorb(self, values):
        self.mpi.Barrier()

    def push(self, data):
        pass


# ---------------------------------------------------------------------------
# Figure 7: CORBA / MPI bandwidth and latency over PadicoTM
# ---------------------------------------------------------------------------

def corba_transfer_times(profile: OrbProfile, sizes=FIG7_SIZES,
                         lan_only: bool = False) -> BenchResult:
    """One-way transfer time (s) of ``sizes``-byte payloads via CORBA.

    Measured as the round-trip of a void ``push(Blob)`` minus the
    round-trip of an empty push, halved — i.e. the marginal one-way data
    time, matching how ORB bandwidth benchmarks report numbers."""
    topo = Topology()
    build_cluster(topo, "n", 2, san=None if lan_only else MYRINET_2000)
    rt = PadicoRuntime(topo)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")
    s_orb = Orb(server, profile, compile_idl(BENCH_IDL))
    s_orb.start()
    c_orb = Orb(client, profile, compile_idl(BENCH_IDL))

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    times: dict[int, float] = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")  # connection warm-up
        t0 = rt.kernel.now
        stub.push(b"")
        empty_rtt = rt.kernel.now - t0
        for size in sizes:
            payload = bytes(size)
            t0 = rt.kernel.now
            stub.push(payload)
            rtt = rt.kernel.now - t0
            times[size] = rtt - empty_rtt / 2

    client.spawn(main)
    rt.run()
    rt.shutdown()
    suffix = ".lan" if lan_only else ""
    return BenchResult(
        name=f"corba.transfer_time.{profile.key}{suffix}",
        unit="s",
        points=tuple((size, times[size]) for size in sizes),
        meta={"profile": profile.key,
              "fabric": "ethernet-100" if lan_only else "myrinet-2000"})


def corba_bandwidth_curve(profile: OrbProfile, sizes=FIG7_SIZES,
                          lan_only: bool = False) -> BenchResult:
    """Figure-7 series: message size → MB/s."""
    times = corba_transfer_times(profile, sizes, lan_only)
    suffix = ".lan" if lan_only else ""
    return BenchResult(
        name=f"corba.bandwidth.{profile.key}{suffix}",
        unit="MB/s",
        points=tuple((size, size / t / 1e6) for size, t in times.items()),
        meta=dict(times.meta))


def corba_one_way_latency_us(profile: OrbProfile) -> float:
    """§4.4 latency: half the round-trip of an empty invocation."""
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")
    s_orb = Orb(server, profile, compile_idl(BENCH_IDL))
    s_orb.start()
    c_orb = Orb(client, profile, compile_idl(BENCH_IDL))

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")
        t0 = rt.kernel.now
        stub.push(b"")
        out["rtt"] = rt.kernel.now - t0

    client.spawn(main)
    rt.run()
    rt.shutdown()
    return out["rtt"] / 2 * 1e6


def mpi_bandwidth_curve(sizes=FIG7_SIZES) -> BenchResult:
    """Figure-7 MPI series over PadicoTM/Myrinet."""
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    procs = [rt.create_process(f"n{i}", f"rank{i}") for i in range(2)]
    world = create_world(rt, "bench", procs)
    curve: dict[int, float] = {}

    def main(proc, comm):
        if comm.rank == 0:
            for size in sizes:
                data = np.zeros(size, dtype="u1")
                comm.Send(data[:1], dest=1, tag=0)  # warm-up
                t0 = comm.Wtime()
                comm.Send(data, dest=1, tag=1)
                curve[size] = size / (comm.Wtime() - t0) / 1e6
        else:
            for size in sizes:
                buf = np.empty(size, dtype="u1")
                comm.Recv(buf[:1], source=0, tag=0)
                comm.Recv(buf, source=0, tag=1)

    spmd(world, main)
    rt.run()
    rt.shutdown()
    return BenchResult(
        name="mpi.bandwidth.mpich-madeleine",
        unit="MB/s",
        points=tuple((size, curve[size]) for size in sizes),
        meta={"profile": "mpich-madeleine", "fabric": "myrinet-2000"})


def mpi_one_way_latency_us() -> float:
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    procs = [rt.create_process(f"n{i}", f"rank{i}") for i in range(2)]
    world = create_world(rt, "bench", procs)
    out = {}

    def main(proc, comm):
        buf = np.zeros(1, dtype="u1")
        if comm.rank == 0:
            comm.Send(buf, dest=1)
            comm.Recv(buf, source=1)
            t0 = comm.Wtime()
            comm.Send(buf, dest=1)
            comm.Recv(buf, source=1)
            out["rtt"] = comm.Wtime() - t0
        else:
            comm.Recv(buf, source=0)
            comm.Send(buf, dest=0)
            comm.Recv(buf, source=0)
            comm.Send(buf, dest=0)

    spmd(world, main)
    rt.run()
    rt.shutdown()
    # subtract the 1-byte payload's fluid time (negligible) — report RTT/2
    return out["rtt"] / 2 * 1e6


def concurrent_sharing_mbps(size: int = 24_000_000) -> BenchResult:
    """§4.4 concurrency: CORBA and MPI bulk streams at the same time."""
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    p0 = rt.create_process("n0", "p0")
    p1 = rt.create_process("n1", "p1")
    s_orb = Orb(p1, OMNIORB4, compile_idl(BENCH_IDL))
    s_orb.start()
    c_orb = Orb(p0, OMNIORB4, compile_idl(BENCH_IDL))

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    world = create_world(rt, "bench", [p0, p1])
    results: dict[str, float] = {}
    gate = 0.001

    def corba_main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")
        proc.sleep(gate - rt.kernel.now)
        t0 = rt.kernel.now
        stub.push(bytes(size))
        results["corba"] = size / (rt.kernel.now - t0) / 1e6

    def mpi_main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            proc.sleep(gate - rt.kernel.now)
            t0 = rt.kernel.now
            comm.Send(np.zeros(size, dtype="u1"), dest=1)
            results["mpi"] = size / (rt.kernel.now - t0) / 1e6
        else:
            buf = np.empty(size, dtype="u1")
            comm.Recv(buf, source=0)

    p0.spawn(corba_main)
    spmd(world, mpi_main)
    rt.run()
    rt.shutdown()
    return BenchResult(
        name="concurrent.sharing",
        unit="MB/s",
        points=(("corba", results["corba"]), ("mpi", results["mpi"])),
        meta={"payload_bytes": size, "fabric": "myrinet-2000"})


# ---------------------------------------------------------------------------
# Figure 8: GridCCM n→n over Myrinet (and the Fast-Ethernet variant)
# ---------------------------------------------------------------------------

def gridccm_n_to_n(n: int, profile: OrbProfile = MICO,
                   ints_per_rank: int = 2_000_000,
                   procs_per_host: int = 2,
                   lan_only: bool = False) -> BenchResult:
    """One Figure-8 row: two n-node parallel components exchange a
    vector of integers; the server op runs MPI_Barrier.

    Returns ``latency_us`` (half RTT of a 1-int-per-rank invocation)
    and ``aggregate_mbps``.  ``procs_per_host=2`` models the paper's
    dual-Pentium III nodes sharing one Myrinet NIC."""
    hosts_each = math.ceil(n / procs_per_host)
    topo = Topology()
    build_cluster(topo, "h", 2 * hosts_each,
                  san=None if lan_only else MYRINET_2000)
    rt = PadicoRuntime(topo)
    server_procs = [rt.create_process(f"h{i // procs_per_host}", f"s{i}")
                    for i in range(n)]
    comp = ParallelComponent.create(rt, "bench", server_procs, BENCH_IDL,
                                    PARALLELISM_XML, _SinkImpl,
                                    profile=profile)
    url = comp.proxy_url("input")
    client_procs = [
        rt.create_process(f"h{hosts_each + i // procs_per_host}", f"c{i}")
        for i in range(n)]
    world = create_world(rt, "clients", client_procs)
    out: dict[str, float] = {}

    def main(proc, comm):
        idl = compile_idl(BENCH_IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(PARALLELISM_XML)).compile()
        orb = Orb(client_procs[comm.rank], profile, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)

        small = np.zeros(1, dtype="i4")
        pc.absorb(small)  # warm-up: connections + plans
        comm.barrier()
        t0 = comm.Wtime()
        pc.absorb(small)
        comm.barrier()
        if comm.rank == 0:
            # RTT of the collective call incl. the client-side barrier
            out["latency_us"] = (comm.Wtime() - t0) / 2 * 1e6

        data = np.zeros(ints_per_rank, dtype="i4")
        comm.barrier()
        t0 = comm.Wtime()
        pc.absorb(data)
        comm.barrier()
        if comm.rank == 0:
            elapsed = comm.Wtime() - t0
            out["aggregate_mbps"] = \
                n * ints_per_rank * 4 / elapsed / 1e6

    spmd(world, main)
    rt.run()
    rt.shutdown()
    return BenchResult(
        name=f"gridccm.n_to_n.{n}",
        unit="mixed",
        points=(("latency_us", out["latency_us"]),
                ("aggregate_mbps", out["aggregate_mbps"])),
        meta={"nodes": n, "profile": profile.key,
              "procs_per_host": procs_per_host,
              "ints_per_rank": ints_per_rank,
              "fabric": "ethernet-100" if lan_only else "myrinet-2000",
              "units": {"latency_us": "us", "aggregate_mbps": "MB/s"}})


# ---------------------------------------------------------------------------
# ablations
# ---------------------------------------------------------------------------

def proxy_vs_direct(n: int = 4,
                    ints_total: int = 4_000_000) -> BenchResult:
    """Master-bottleneck ablation: the same total payload shipped to an
    n-node component once through n direct parallel clients and once
    through the sequential proxy (the master-slave shape the paper
    rejects in §4.1)."""
    direct = gridccm_n_to_n(n, profile=OMNIORB4,
                            ints_per_rank=ints_total // n,
                            procs_per_host=1)["aggregate_mbps"]

    topo = Topology()
    build_cluster(topo, "h", n + 1)
    rt = PadicoRuntime(topo)
    server_procs = [rt.create_process(f"h{i}", f"s{i}") for i in range(n)]
    comp = ParallelComponent.create(rt, "bench", server_procs, BENCH_IDL,
                                    PARALLELISM_XML, _SinkImpl,
                                    profile=OMNIORB4)
    url = comp.proxy_url("input")
    cli = rt.create_process(f"h{n}", "seq-client")
    idl = compile_idl(BENCH_IDL)
    # register the generated proxy interface so the stub is typed
    GridCcmCompiler(idl,
                    ParallelismDescriptor.parse(PARALLELISM_XML)).compile()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}

    def main(proc):
        stub = orb.string_to_object(url)  # sequential: via the proxy
        data = np.zeros(ints_total, dtype="i4")
        stub.absorb(data[:1])
        t0 = rt.kernel.now
        stub.absorb(data)
        out["proxy"] = ints_total * 4 / (rt.kernel.now - t0) / 1e6

    cli.spawn(main)
    rt.run()
    rt.shutdown()
    return BenchResult(
        name=f"ablation.proxy_vs_direct.{n}",
        unit="MB/s",
        points=(("direct_mbps", direct), ("proxy_mbps", out["proxy"])),
        meta={"nodes": n, "ints_total": ints_total})
