"""Ablation benches for the design choices DESIGN.md calls out.

A1 — marshalling strategy: the Figure-7 gap is *caused* by copying
     marshallers; give omniORB a copying CDR and it collapses to the
     Mico régime.
A2 — proxies vs node-to-node: routing a parallel invocation through a
     single master (the §4.1 anti-pattern) forfeits the aggregate
     bandwidth that all-nodes-participate delivers.
A3 — cross-paradigm mapping: letting the distributed-oriented VLink
     ride the parallel-oriented Myrinet driver is worth ~20× over
     confining it to its 'native' socket/Ethernet stack.
A4 — per-link security: encrypting everywhere (coarse CORBA security)
     cripples the SAN; the §6 wan-only policy costs nothing there and
     protects the WAN.
A5 — wire protocol: the §4.4 ESIOP suggestion, quantified — the
     environment-specific protocol pulls omniORB's one-way latency from
     20 µs towards MPI's 11 µs with full CORBA semantics intact.
"""

import pytest

from benchmarks.conftest import record_rows
from benchmarks.harness import (
    BENCH_IDL,
    corba_bandwidth_curve,
    proxy_vs_direct,
)
from repro.corba import OMNIORB4, Orb, compile_idl
from repro.corba.profiles import OrbProfile
from repro.deploy import GridSecurityPolicy, secure_process
from repro.net import Topology, build_cluster, build_two_site_grid
from repro.padicotm import PadicoRuntime, VLink


# ---------------------------------------------------------------------------
# A1 — marshalling strategy
# ---------------------------------------------------------------------------

def test_ablation_marshalling_strategy(benchmark):
    """Same ORB overheads, only the CDR discipline flips."""
    zero_copy = OMNIORB4
    copying = OrbProfile("omniORB-copying", "ablation", zero_copy=False,
                         client_overhead=zero_copy.client_overhead,
                         server_overhead=zero_copy.server_overhead,
                         copy_cost_per_byte=7.0e-9)

    def run():
        return {
            "zero-copy": corba_bandwidth_curve(zero_copy, (8 << 20,)),
            "copying": corba_bandwidth_curve(copying, (8 << 20,)),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    zc = curves["zero-copy"][8 << 20]
    cp = curves["copying"][8 << 20]
    record_rows(benchmark, "A1 — CDR marshalling strategy @ 8 MB",
                ("strategy", "MB/s"),
                [("zero-copy", round(zc, 1)), ("copying", round(cp, 1))])
    assert zc == pytest.approx(240, rel=0.02)
    assert cp == pytest.approx(55, rel=0.05)
    assert zc / cp > 4


# ---------------------------------------------------------------------------
# A2 — master bottleneck vs all-nodes-participate
# ---------------------------------------------------------------------------

def test_ablation_proxy_bottleneck(benchmark):
    out = benchmark.pedantic(proxy_vs_direct, rounds=1, iterations=1)
    record_rows(benchmark, "A2 — 4-node component, same total payload",
                ("path", "aggregate MB/s"),
                [("direct node-to-node", round(out["direct_mbps"], 1)),
                 ("through the proxy", round(out["proxy_mbps"], 1))])
    # the proxy path is capped by one NIC; direct aggregates ~n NICs
    assert out["direct_mbps"] > 2.5 * out["proxy_mbps"]


# ---------------------------------------------------------------------------
# A3 — cross-paradigm mapping
# ---------------------------------------------------------------------------

def test_ablation_cross_paradigm(benchmark):
    """The same CORBA pair with the selector free (→ Myrinet, the
    cross-paradigm mapping) vs pinned to the socket stack on Ethernet
    (the straight mapping a 'unique abstraction' design would force)."""

    def run():
        auto = corba_bandwidth_curve(OMNIORB4, (8 << 20,))[8 << 20]
        lan = corba_bandwidth_curve(OMNIORB4, (8 << 20,),
                                    lan_only=True)[8 << 20]
        return {"auto": auto, "lan": lan}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, "A3 — VLink mapping for one CORBA stream @8MB",
                ("mapping", "MB/s"),
                [("cross-paradigm (Myrinet)", round(out["auto"], 1)),
                 ("straight (Ethernet)", round(out["lan"], 1))])
    assert out["auto"] / out["lan"] > 15


# ---------------------------------------------------------------------------
# A4 — security policy placement
# ---------------------------------------------------------------------------

def _secured_stream(mode: str, cross_site: bool) -> float:
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=2)
    rt = PadicoRuntime(topo)
    src = rt.create_process(a_hosts[0].name, "src")
    dst = rt.create_process(
        (b_hosts if cross_site else a_hosts)[1].name, "dst")
    policy = GridSecurityPolicy(mode)
    secure_process(src, policy)
    secure_process(dst, policy)
    listener = VLink.listen(dst, "sec")
    out = {}
    size = 4_000_000

    def srv(proc):
        ep = listener.accept(proc)
        ep.recv(proc)

    def cli(proc):
        ep = VLink.connect(proc, src, dst.name, "sec")
        t0 = rt.kernel.now
        ep.send(proc, b"x", size)
        out["bw"] = size / (rt.kernel.now - t0) / 1e6

    dst.spawn(srv)
    src.spawn(cli)
    rt.run()
    rt.shutdown()
    return out["bw"]


def _wire_protocol_latency(protocol: str) -> float:
    from tests.corba.conftest import DEMO_IDL, make_adder_servant

    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL), protocol=protocol)
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(DEMO_IDL), protocol=protocol)
    servant = make_adder_servant(s_orb)
    url = s_orb.object_to_string(s_orb.poa.activate_object(servant))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.add(0, 0)
        t0 = rt.kernel.now
        stub.add(1, 1)
        out["lat"] = (rt.kernel.now - t0) / 2 * 1e6

    client.spawn(main)
    rt.run()
    rt.shutdown()
    return out["lat"]


def test_ablation_wire_protocol(benchmark):
    def run():
        return {"giop": _wire_protocol_latency("giop"),
                "esiop": _wire_protocol_latency("esiop")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, "A5 — omniORB one-way latency by wire protocol",
                ("protocol", "latency µs"),
                [("GIOP (general)", round(out["giop"], 1)),
                 ("ESIOP (grid-specific)", round(out["esiop"], 1))])
    assert out["esiop"] < out["giop"] - 2.0
    assert out["esiop"] > 11.0  # the Madeleine wire still costs 11 µs


def test_ablation_security_policy(benchmark):
    def run():
        table = {}
        for mode in ("never", "wan-only", "always"):
            table[mode] = {
                "san": _secured_stream(mode, cross_site=False),
                "wan": _secured_stream(mode, cross_site=True),
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(mode, round(v["san"], 1), round(v["wan"], 2))
            for mode, v in table.items()]
    record_rows(benchmark, "A4 — security policy vs wire (MB/s)",
                ("policy", "SAN stream", "WAN stream"), rows)

    # §6: wan-only rides the SAN at full speed while still costing the
    # same as 'always' on the WAN
    assert table["wan-only"]["san"] == pytest.approx(
        table["never"]["san"], rel=0.02)
    assert table["always"]["san"] < table["never"]["san"] / 8
    assert table["wan-only"]["wan"] == pytest.approx(
        table["always"]["wan"], rel=0.02)
