"""§4.4 latency text: one-way latencies over PadicoTM/Myrinet-2000.

Paper: MPI 11 µs, omniORB 20 µs, ORBacus 54 µs, Mico 62 µs — the gaps
being pure ORB software overhead on an identical wire."""

import pytest

from benchmarks.conftest import record_rows
from benchmarks.harness import corba_one_way_latency_us, mpi_one_way_latency_us
from repro.corba import MICO, OMNIORB3, OMNIORB4, ORBACUS

PAPER_LATENCY_US = {
    "MPICH-madeleine": 11.0,
    "omniORB-3.0.2": 20.0,
    "omniORB-4.0.0": 19.0,   # "slightly slower for latency" than MPI
    "ORBacus-4.0.5": 54.0,
    "Mico-2.3.7": 62.0,
}


def _measure():
    out = {"MPICH-madeleine": mpi_one_way_latency_us()}
    for profile in (OMNIORB3, OMNIORB4, ORBACUS, MICO):
        out[profile.key] = corba_one_way_latency_us(profile)
    return out


def test_fig7_latency(benchmark, paper_tolerance):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [(name, round(measured[name], 1), paper)
            for name, paper in PAPER_LATENCY_US.items()]
    record_rows(benchmark, "§4.4 — one-way latency (µs) over Myrinet",
                ("middleware", "measured", "paper"), rows)

    for name, paper in PAPER_LATENCY_US.items():
        assert measured[name] == pytest.approx(paper, rel=0.10), \
            f"{name}: {measured[name]:.1f} µs vs paper {paper}"
    # ordering: MPI < omniORB < ORBacus < Mico
    assert measured["MPICH-madeleine"] < measured["omniORB-4.0.0"] \
        <= measured["omniORB-3.0.2"] < measured["ORBacus-4.0.5"] \
        < measured["Mico-2.3.7"]
